//! Vendored API-subset shim of [rand](https://crates.io/crates/rand).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random`] for the scalar types the workspace samples — the only
//! surface the `kron-gp` dataset synthesizer uses. The generator is
//! SplitMix64: statistically fine for synthetic test data, deliberately not
//! cryptographic.

#![deny(missing_docs)]

/// A source of random 64-bit words, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from uniform random bits, mirroring
/// `rand::distr::StandardUniform` coverage.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Draws one value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (x, y, z): (f64, f64, f64) = (a.random(), b.random(), c.random());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_and_ints_sample() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: bool = rng.random();
        let _: u64 = rng.random();
        let _: usize = rng.random();
        let f: f32 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}
