//! Ablation: fusion on/off across P — regenerates the Figure 9 commentary
//! ("fusion improves performance by 2.20x for 8^5 to 1.15x for 32^3, and
//! is not applied for P >= 64").

use criterion::{criterion_group, criterion_main, Criterion};
use fastkron_core::FastKron;
use gpu_sim::device::V100;
use kron_core::KronProblem;
use std::hint::black_box;

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_planning");
    group.sample_size(10);
    for &(p, n) in &[(8usize, 5usize), (16, 4), (32, 3), (64, 2)] {
        let problem = KronProblem::uniform(1024, p, n).unwrap();
        let fused = FastKron::plan::<f32>(&problem, &V100).unwrap();
        let unfused = FastKron::plan_unfused::<f32>(&problem, &V100).unwrap();
        let t_f = fused.simulate().unwrap().seconds;
        let t_u = unfused.simulate().unwrap().seconds;
        eprintln!(
            "[fusion ablation] {p}^{n}: fused {:.3} ms vs unfused {:.3} ms -> {:.2}x (launches {} vs {})",
            t_f * 1e3,
            t_u * 1e3,
            t_u / t_f,
            fused.launches(),
            unfused.launches()
        );
        group.bench_function(format!("plan_simulate_P{p}_N{n}"), |b| {
            b.iter(|| {
                let plan = FastKron::plan::<f32>(black_box(&problem), &V100).unwrap();
                black_box(plan.simulate().unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
