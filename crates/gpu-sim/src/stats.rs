//! Kernel statistics and execution reports.

use std::ops::AddAssign;

/// Raw event counts for one kernel launch (or an aggregation of launches).
///
/// `smem_*_transactions` are in hardware transaction units — the quantity
/// `nvprof`'s `shared_load_transactions` / `shared_store_transactions`
/// counters report and the unit of Table 2 in the paper. `gmem_*_sectors`
/// are 32-byte DRAM sectors (the coalescing granularity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Floating-point operations executed (multiply and add counted
    /// separately, i.e. one FMA = 2).
    pub flops: u64,
    /// Shared-memory load transactions, including bank-conflict replays.
    pub smem_load_transactions: u64,
    /// Shared-memory store transactions, including bank-conflict replays.
    pub smem_store_transactions: u64,
    /// Minimum transactions the same loads would need with zero conflicts
    /// (for conflict-rate reporting).
    pub smem_load_ideal: u64,
    /// Minimum transactions the same stores would need with zero conflicts.
    pub smem_store_ideal: u64,
    /// Global-memory load sectors (32 B each).
    pub gmem_load_sectors: u64,
    /// Global-memory store sectors (32 B each).
    pub gmem_store_sectors: u64,
    /// Bytes the kernel actually needed from global memory (for coalescing
    /// efficiency reporting).
    pub gmem_useful_bytes: u64,
    /// `__syncthreads()` executions (per block).
    pub barriers: u64,
}

impl KernelStats {
    /// Total shared-memory transactions (loads + stores).
    pub fn smem_transactions(&self) -> u64 {
        self.smem_load_transactions + self.smem_store_transactions
    }

    /// Total global sectors (loads + stores).
    pub fn gmem_sectors(&self) -> u64 {
        self.gmem_load_sectors + self.gmem_store_sectors
    }

    /// Ratio of actual to conflict-free shared transactions (1.0 = no
    /// conflicts; the paper's direct-caching counterexample gives ≫ 1).
    pub fn bank_conflict_factor(&self) -> f64 {
        let ideal = self.smem_load_ideal + self.smem_store_ideal;
        if ideal == 0 {
            return 1.0;
        }
        self.smem_transactions() as f64 / ideal as f64
    }

    /// Multiplies every counter by `n` — used to extrapolate a
    /// representative thread block's trace to the full grid (all FastKron
    /// blocks execute the same access pattern modulo base offsets).
    pub fn scaled(&self, n: u64) -> KernelStats {
        KernelStats {
            flops: self.flops * n,
            smem_load_transactions: self.smem_load_transactions * n,
            smem_store_transactions: self.smem_store_transactions * n,
            smem_load_ideal: self.smem_load_ideal * n,
            smem_store_ideal: self.smem_store_ideal * n,
            gmem_load_sectors: self.gmem_load_sectors * n,
            gmem_store_sectors: self.gmem_store_sectors * n,
            gmem_useful_bytes: self.gmem_useful_bytes * n,
            barriers: self.barriers * n,
        }
    }
}

impl AddAssign for KernelStats {
    fn add_assign(&mut self, rhs: KernelStats) {
        self.flops += rhs.flops;
        self.smem_load_transactions += rhs.smem_load_transactions;
        self.smem_store_transactions += rhs.smem_store_transactions;
        self.smem_load_ideal += rhs.smem_load_ideal;
        self.smem_store_ideal += rhs.smem_store_ideal;
        self.gmem_load_sectors += rhs.gmem_load_sectors;
        self.gmem_store_sectors += rhs.gmem_store_sectors;
        self.gmem_useful_bytes += rhs.gmem_useful_bytes;
        self.barriers += rhs.barriers;
    }
}

/// Timing of one named step of an engine (e.g. the shuffle algorithm's
/// "matmul" vs "transpose" split in Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct StepTiming {
    /// Step label ("matmul", "transpose", "sliced-multiply", "comm", …).
    pub label: String,
    /// Simulated seconds spent in this step across the whole run.
    pub seconds: f64,
}

/// Complete simulated-execution report for one engine on one problem.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Engine name ("FastKron", "GPyTorch", "COGENT", …).
    pub engine: String,
    /// Total simulated time in seconds.
    pub seconds: f64,
    /// Per-step breakdown; sums to `seconds` (communication may overlap in
    /// distributed engines, in which case the breakdown records exposed
    /// time only).
    pub steps: Vec<StepTiming>,
    /// Aggregated hardware counters.
    pub stats: KernelStats,
    /// Number of kernel launches.
    pub launches: u64,
    /// Bytes sent over inter-GPU links (0 for single-GPU runs).
    pub comm_bytes: u64,
}

/// `Copy` digest of an [`ExecReport`]: the numbers a serving runtime wants
/// to attach to every request without allocating (an `ExecReport` owns a
/// `String` and a `Vec`, so cloning one per request would break a
/// zero-allocation steady state).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecSummary {
    /// Total simulated time in seconds.
    pub seconds: f64,
    /// Bytes sent over inter-GPU links (0 for single-GPU runs).
    pub comm_bytes: u64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Floating-point operations executed.
    pub flops: u64,
}

impl ExecSummary {
    /// Scales the summary by `num / den` — used to apportion a batch-level
    /// simulation to one request's share of the batch rows (FastKron's
    /// work, time, and communication volume are all linear in `M`, so
    /// row-proportional attribution is exact up to launch quantization).
    pub fn prorated(&self, num: usize, den: usize) -> ExecSummary {
        if den == 0 {
            return ExecSummary::default();
        }
        let frac = num as f64 / den as f64;
        ExecSummary {
            seconds: self.seconds * frac,
            comm_bytes: (self.comm_bytes as f64 * frac).round() as u64,
            launches: (self.launches as f64 * frac).ceil() as u64,
            flops: (self.flops as f64 * frac).round() as u64,
        }
    }
}

impl ExecReport {
    /// Creates an empty report for `engine`.
    pub fn new(engine: impl Into<String>) -> Self {
        ExecReport {
            engine: engine.into(),
            ..Default::default()
        }
    }

    /// The allocation-free [`ExecSummary`] digest of this report.
    pub fn summary(&self) -> ExecSummary {
        ExecSummary {
            seconds: self.seconds,
            comm_bytes: self.comm_bytes,
            launches: self.launches,
            flops: self.stats.flops,
        }
    }

    /// Adds `seconds` under the step `label`, merging with an existing step
    /// of the same name.
    pub fn add_step(&mut self, label: &str, seconds: f64) {
        self.seconds += seconds;
        if let Some(s) = self.steps.iter_mut().find(|s| s.label == label) {
            s.seconds += seconds;
        } else {
            self.steps.push(StepTiming {
                label: label.to_string(),
                seconds,
            });
        }
    }

    /// Seconds recorded under `label` (0.0 when absent).
    pub fn step_seconds(&self, label: &str) -> f64 {
        self.steps
            .iter()
            .find(|s| s.label == label)
            .map_or(0.0, |s| s.seconds)
    }

    /// Achieved TFLOPS given the algorithmic FLOP count `flops`
    /// (the paper reports TFLOPS against the iterative-algorithm count,
    /// not the hardware count).
    pub fn tflops(&self, flops: u64) -> f64 {
        if self.seconds == 0.0 {
            return 0.0;
        }
        flops as f64 / self.seconds / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_scale() {
        let mut a = KernelStats {
            flops: 10,
            smem_load_transactions: 4,
            smem_store_transactions: 2,
            smem_load_ideal: 2,
            smem_store_ideal: 2,
            gmem_load_sectors: 8,
            gmem_store_sectors: 1,
            gmem_useful_bytes: 256,
            barriers: 1,
        };
        let b = a;
        a += b;
        assert_eq!(a.flops, 20);
        assert_eq!(a.smem_transactions(), 12);
        assert_eq!(a.gmem_sectors(), 18);
        let s = b.scaled(3);
        assert_eq!(s.flops, 30);
        assert_eq!(s.smem_load_transactions, 12);
        assert_eq!(s.gmem_useful_bytes, 768);
    }

    #[test]
    fn conflict_factor() {
        let s = KernelStats {
            smem_load_transactions: 8,
            smem_store_transactions: 0,
            smem_load_ideal: 2,
            smem_store_ideal: 0,
            ..Default::default()
        };
        assert_eq!(s.bank_conflict_factor(), 4.0);
        assert_eq!(KernelStats::default().bank_conflict_factor(), 1.0);
    }

    #[test]
    fn report_steps_merge() {
        let mut r = ExecReport::new("test");
        r.add_step("matmul", 1.0);
        r.add_step("transpose", 3.0);
        r.add_step("matmul", 0.5);
        assert_eq!(r.seconds, 4.5);
        assert_eq!(r.step_seconds("matmul"), 1.5);
        assert_eq!(r.step_seconds("transpose"), 3.0);
        assert_eq!(r.step_seconds("missing"), 0.0);
        assert_eq!(r.steps.len(), 2);
    }

    #[test]
    fn summary_and_proration() {
        let mut r = ExecReport::new("dist");
        r.add_step("local-multiply", 1.0);
        r.add_step("exchange", 0.5);
        r.comm_bytes = 1000;
        r.launches = 8;
        r.stats.flops = 4000;
        let s = r.summary();
        assert_eq!(s.seconds, 1.5);
        assert_eq!(s.comm_bytes, 1000);
        assert_eq!(s.launches, 8);
        assert_eq!(s.flops, 4000);
        // One request holding 2 of the batch's 8 rows gets a quarter.
        let p = s.prorated(2, 8);
        assert_eq!(p.seconds, 0.375);
        assert_eq!(p.comm_bytes, 250);
        assert_eq!(p.launches, 2);
        assert_eq!(p.flops, 1000);
        // Launch counts round up: even a 1-row request rode every launch.
        assert_eq!(s.prorated(1, 100).launches, 1);
        assert_eq!(s.prorated(1, 0), ExecSummary::default());
    }

    #[test]
    fn tflops_math() {
        let mut r = ExecReport::new("t");
        r.seconds = 2.0;
        assert_eq!(r.tflops(4_000_000_000_000), 2.0);
        let empty = ExecReport::new("e");
        assert_eq!(empty.tflops(100), 0.0);
    }
}
