//! Error-path contract of the distributed serving stack: misconfigured
//! grids, unshardable shapes, and mixed-model batches return the
//! documented `KronError` variants — never a panic, never a hang.

use gpu_sim::device::V100;
use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::{assert_matrices_close, KronError, KronProblem, Matrix};
use kron_dist::DistFastKron;
use kron_runtime::{
    Backend, BreakerPolicy, BreakerState, Clock, FaultPlan, Runtime, RuntimeConfig,
};

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 5 * r * cols + 2 * c) % 17) as f64 - 8.0
    })
}

fn dist_runtime_config(gpus: usize) -> RuntimeConfig {
    RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        backend: Backend::Distributed { gpus, p2p: false },
        ..RuntimeConfig::default()
    }
}

fn dist_runtime(gpus: usize) -> Runtime {
    Runtime::new(dist_runtime_config(gpus))
}

#[test]
fn non_power_of_two_grid_is_a_clean_config_error() {
    // The SUMMA grid rule needs a power of two; 6 GPUs cannot be arranged.
    // The runtime still constructs (the scheduler must exist to reply),
    // but every request fails with the documented InvalidGrid error.
    let runtime = dist_runtime(6);
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let model = runtime.load_model(factors).unwrap();
    for i in 0..3 {
        let err = runtime
            .execute(&model, seq_matrix(4, model.input_cols(), i))
            .unwrap_err();
        match err {
            KronError::InvalidGrid { ref reason } => {
                assert!(reason.contains("power of two"), "{reason}")
            }
            other => panic!("expected InvalidGrid, got {other:?}"),
        }
    }
    // Shutdown still drains cleanly.
    runtime.shutdown();
}

#[test]
fn indivisible_k_errors_directly_and_falls_back_in_the_runtime() {
    // K = 3² = 9 does not divide over GK = 2.
    let problem = KronProblem::uniform(4, 3, 2).unwrap();
    let engine = DistFastKron::new(&V100, 4).unwrap();
    match engine.workspace::<f64>(&problem) {
        Err(KronError::InvalidGrid { ref reason }) => {
            assert!(reason.contains("not divisible by GK"), "{reason}")
        }
        other => panic!("expected InvalidGrid, got {other:?}"),
    }
    assert!(matches!(
        engine.simulate::<f64>(&problem),
        Err(KronError::InvalidGrid { .. })
    ));

    // The runtime's Distributed backend serves the same model through the
    // documented local fallback — correct results, fallback counted.
    let runtime = dist_runtime(4);
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(3, 3, i + 1)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    let x = seq_matrix(4, model.input_cols(), 3);
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let expected = kron_matmul_shuffle(&x, &refs).unwrap();
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "fallback serve");
    assert!(runtime.stats().local_fallbacks >= 1);
    assert_eq!(runtime.stats().sharded_batches, 0);
}

#[test]
fn indivisible_m_errors_directly_but_the_runtime_pads() {
    // Direct engine: M = 3 does not divide over GM = 2.
    let engine = DistFastKron::new(&V100, 4).unwrap();
    let x = seq_matrix(3, 16, 0);
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    match engine.execute(&x, &refs) {
        Err(KronError::InvalidGrid { ref reason }) => {
            assert!(reason.contains("not divisible by GM"), "{reason}")
        }
        other => panic!("expected InvalidGrid, got {other:?}"),
    }

    // The runtime zero-pads the batch to a GM multiple and shards anyway.
    let runtime = dist_runtime(4);
    let model = runtime.load_model(factors.clone()).unwrap();
    let expected = kron_matmul_shuffle(&x, &refs).unwrap();
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "padded serve");
    let stats = runtime.stats();
    assert_eq!(stats.sharded_batches, 1, "stats: {stats:?}");
    assert_eq!(stats.local_fallbacks, 0, "stats: {stats:?}");
}

#[test]
fn mixed_model_linked_batch_is_rejected_atomically() {
    let runtime = dist_runtime(4);
    let fa: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let fb: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(2, 2, i)).collect();
    let a = runtime.load_model(fa).unwrap();
    let b = runtime.load_model(fb).unwrap();

    let err = runtime
        .submit_linked(vec![
            (&a, seq_matrix(2, a.input_cols(), 0)),
            (&a, seq_matrix(1, a.input_cols(), 1)),
            (&b, seq_matrix(2, b.input_cols(), 2)),
        ])
        .unwrap_err();
    assert_eq!(
        err,
        KronError::MixedModelBatch {
            first: a.id(),
            conflicting: b.id(),
        }
    );
    // Rejection is atomic: nothing entered the queue.
    assert_eq!(runtime.stats().submitted, 0);

    // A shape error anywhere also rejects the whole batch.
    let err = runtime
        .submit_linked(vec![
            (&a, seq_matrix(2, a.input_cols(), 0)),
            (&a, seq_matrix(2, a.input_cols() + 1, 1)),
        ])
        .unwrap_err();
    assert!(matches!(err, KronError::ShapeMismatch { .. }));
    assert_eq!(runtime.stats().submitted, 0);
}

#[test]
fn fault_on_single_node_backend_is_inert() {
    // No devices to fault: the flag is simply never consumed.
    let runtime = Runtime::new(RuntimeConfig::default());
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    runtime.inject_device_fault(0).unwrap();
    let x = seq_matrix(4, model.input_cols(), 1);
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let expected = kron_matmul_shuffle(&x, &refs).unwrap();
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "single-node serve with armed fault");
}

/// Every `KronError` variant has a stable, self-describing `Display`
/// message and a `Debug` form naming the variant — exhaustively, so a
/// newly-added variant without a message shows up here as a missing row.
#[test]
fn every_error_variant_round_trips_display_and_debug() {
    let cases: Vec<(KronError, &str, &str)> = vec![
        (
            KronError::ShapeMismatch {
                expected: "M×64".into(),
                found: "M×63".into(),
            },
            "shape mismatch: expected M×64, found M×63",
            "ShapeMismatch",
        ),
        (
            KronError::NoFactors,
            "Kron-Matmul requires at least one factor",
            "NoFactors",
        ),
        (
            KronError::EmptyDimension {
                what: "factor 2 has 0 rows".into(),
            },
            "empty dimension: factor 2 has 0 rows",
            "EmptyDimension",
        ),
        (
            KronError::InvalidTileConfig {
                reason: "TP must divide P".into(),
            },
            "invalid tile configuration: TP must divide P",
            "InvalidTileConfig",
        ),
        (
            KronError::ResourceExhausted {
                what: "shared memory over by 4096 bytes".into(),
            },
            "resource exhausted: shared memory over by 4096 bytes",
            "ResourceExhausted",
        ),
        (
            KronError::InvalidGrid {
                reason: "6 GPUs is not a power of two".into(),
            },
            "invalid GPU grid: 6 GPUs is not a power of two",
            "InvalidGrid",
        ),
        (
            KronError::DeviceFailure {
                gpu: 3,
                reason: "injected device fault".into(),
            },
            "simulated device 3 failed: injected device fault",
            "DeviceFailure",
        ),
        (
            KronError::MixedModelBatch {
                first: 1,
                conflicting: 7,
            },
            "linked batch mixes models 1 and 7; a batch stacks rows against one factor set",
            "MixedModelBatch",
        ),
        (
            KronError::DeadlineExceeded {
                deadline_us: 500,
                now_us: 750,
            },
            "deadline exceeded: due at 500us, scheduled at 750us",
            "DeadlineExceeded",
        ),
        (
            KronError::DeviceTimeout {
                gpu: 2,
                waited_us: 2_000_000,
            },
            "simulated device 2 timed out: no completion after 2000000us (watchdog)",
            "DeviceTimeout",
        ),
        (
            KronError::Shutdown,
            "the serving runtime has shut down",
            "Shutdown",
        ),
        (
            KronError::CacheBudgetExceeded {
                required_bytes: 4096,
                max_bytes: 1024,
            },
            "plan-cache byte budget exceeded: entry needs ~4096 bytes but the whole budget is 1024 bytes",
            "CacheBudgetExceeded",
        ),
    ];
    for (err, display, variant) in &cases {
        assert_eq!(&err.to_string(), display, "{variant} Display drifted");
        let debug = format!("{err:?}");
        assert!(debug.contains(variant), "{variant} not in Debug: {debug}");
        // The std::error::Error impl reports the same message.
        let dynamic: &dyn std::error::Error = err;
        assert_eq!(dynamic.to_string(), *display, "{variant} via dyn Error");
    }
    // Exhaustive: compiling this match is the proof no variant is missing
    // a row above (add the variant here AND a case above when extending).
    for (err, _, _) in &cases {
        match err {
            KronError::ShapeMismatch { .. }
            | KronError::NoFactors
            | KronError::EmptyDimension { .. }
            | KronError::InvalidTileConfig { .. }
            | KronError::ResourceExhausted { .. }
            | KronError::InvalidGrid { .. }
            | KronError::DeviceFailure { .. }
            | KronError::MixedModelBatch { .. }
            | KronError::DeadlineExceeded { .. }
            | KronError::DeviceTimeout { .. }
            | KronError::Shutdown
            | KronError::CacheBudgetExceeded { .. } => {}
        }
    }
    assert_eq!(cases.len(), 12, "new variant? add its row");
}

/// `RuntimeStats::Display` renders an aligned table with one row per
/// counter — exhaustively, so a newly-added counter without a row shows
/// up here as a failing count.
#[test]
fn runtime_stats_display_renders_every_counter_row() {
    let runtime = dist_runtime(4);
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let model = runtime.load_model(factors).unwrap();
    runtime
        .execute(&model, seq_matrix(4, model.input_cols(), 1))
        .unwrap();

    let stats = runtime.stats();
    let table = stats.to_string();
    assert!(table.starts_with("runtime stats\n"), "{table}");
    let rows = [
        "submitted",
        "requests_f32",
        "requests_f64",
        "served",
        "batches",
        "batched_requests",
        "solo_requests",
        "bypassed_requests",
        "error_replies",
        "plan_hits",
        "plan_misses",
        "sharded_batches",
        "local_fallbacks",
        "comm_bytes",
        "evictions",
        "rebuilds",
        "deadline_shed",
        "retries",
        "degraded_batches",
        "recovered_requests",
        "breaker_trips",
        "cached_entries",
        "cached_bytes",
        "current_linger_us",
        "inflight_requests",
        "scheduler_lanes",
        "lane_steals",
    ];
    for name in rows {
        assert!(
            table.contains(&format!("  {name:<20}")),
            "missing row {name} in:\n{table}"
        );
    }
    // One header plus exactly one row per counter plus one row per live
    // scheduler lane — a new counter must add a row (the Display impl
    // destructures exhaustively).
    assert_eq!(
        table.lines().count(),
        1 + rows.len() + stats.lanes().len(),
        "{table}"
    );
    // Spot-check a value landed in its row, right-aligned.
    let served_row = table
        .lines()
        .find(|l| l.trim_start().starts_with("served"))
        .unwrap();
    assert!(
        served_row.ends_with(&format!("{:>12}", stats.served)),
        "{served_row:?}"
    );
}

/// `ServeReceipt::Display` renders the serve metadata — sequence,
/// attempts, grid, shard traffic, and the stage timeline — for both a
/// sharded and a local serve.
#[test]
fn serve_receipt_display_round_trips_sharded_and_local() {
    // Sharded: a 4-GPU grid with real comm traffic on the receipt.
    let runtime = dist_runtime(4);
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let model = runtime.load_model(factors).unwrap();
    let t = runtime
        .submit(&model, seq_matrix(4, model.input_cols(), 2))
        .unwrap();
    let (_, receipt) = t.wait_with_receipt().unwrap();
    let text = receipt.to_string();
    assert!(text.starts_with("serve receipt\n"), "{text}");
    for needle in ["seq", "attempts", "grid", "2x2", "shard", " B", "timings"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    assert!(
        text.contains(&format!(
            "queue {}us | linger {}us | plan {}us | exec {}us | scatter {}us | retry {}us | total {}us",
            receipt.timings.queue_us,
            receipt.timings.linger_us,
            receipt.timings.plan_us,
            receipt.timings.exec_us,
            receipt.timings.scatter_us,
            receipt.timings.retry_us,
            receipt.timings.total_us(),
        )),
        "timeline row must render every stage:\n{text}"
    );

    // Local: no grid, no shard summary.
    let runtime = Runtime::new(RuntimeConfig::default());
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let model = runtime.load_model(factors).unwrap();
    let t = runtime
        .submit(&model, seq_matrix(4, model.input_cols(), 3))
        .unwrap();
    let (_, receipt) = t.wait_with_receipt().unwrap();
    let text = receipt.to_string();
    assert!(text.contains("local"), "local serve has no grid:\n{text}");
    assert!(
        text.lines()
            .any(|l| l.trim_start().starts_with("shard") && l.trim_end().ends_with('-')),
        "local serve has no shard row value:\n{text}"
    );
}

/// Full breaker lifecycle through the public runtime API, deterministic
/// on a manual clock: repeated faults on one device trip its breaker,
/// traffic degrades around the quarantine (clients keep seeing Ok), the
/// cooldown relaxes the breaker to half-open, and a clean full-width
/// batch closes it.
#[test]
fn breaker_trips_quarantines_and_recovers_on_manual_clock() {
    let clock = Clock::manual();
    let handle = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        clock,
        breaker: BreakerPolicy {
            trip_after: 2,
            cooldown_us: 1_000,
        },
        ..dist_runtime_config(4)
    });
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let model = runtime.load_model(factors.clone()).unwrap();

    // Device 1 fails the first two sharded executes: attempt 0 and the
    // same-width retry both fault, tripping the breaker (trip_after: 2);
    // the degraded third attempt routes around the quarantine and
    // succeeds — the client never sees the fault.
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch_repeat(1, 0, 2))
        .unwrap();
    let x = seq_matrix(4, model.input_cols(), 9);
    let expected = kron_matmul_shuffle(&x, &refs).unwrap();
    let t = runtime.submit(&model, x.clone()).unwrap();
    let (y, receipt) = t.wait_with_receipt().unwrap();
    assert_matrices_close(&y, &expected, "recovered through quarantine");
    assert_eq!(receipt.attempts, 3, "two faults then a degraded success");
    assert_eq!(runtime.pending_fault_events(), 0, "plan fully consumed");

    let health = runtime.device_health();
    assert_eq!(health.len(), 4);
    assert_eq!(health[1].state, BreakerState::Open);
    assert_eq!(health[1].trips, 1);
    assert_eq!(health[1].consecutive_failures, 2);
    let stats = runtime.stats();
    assert_eq!(stats.breaker_trips, 1, "stats: {stats:?}");
    assert!(stats.retries >= 2, "stats: {stats:?}");
    assert_eq!(stats.recovered_requests, 1, "stats: {stats:?}");

    // While quarantined, serving continues degraded — Ok on the first
    // attempt, no retry, breaker still open (a degraded success proves
    // nothing about the sick device).
    let y = runtime.execute(&model, x.clone()).unwrap();
    assert_matrices_close(&y, &expected, "degraded serve under quarantine");
    assert_eq!(runtime.device_health()[1].state, BreakerState::Open);

    // Cooldown elapses on the manual clock: half-open, full grid offered.
    handle.advance_us(1_000);
    assert_eq!(runtime.device_health()[1].state, BreakerState::HalfOpen);

    // The probing batch succeeds at full width and closes the breaker.
    let t = runtime.submit(&model, x).unwrap();
    let (y, receipt) = t.wait_with_receipt().unwrap();
    assert_matrices_close(&y, &expected, "half-open probe");
    assert_eq!(receipt.attempts, 1);
    assert_eq!(receipt.grid, Some((2, 2)), "probe ran the full 4-GPU grid");
    let health = runtime.device_health();
    assert_eq!(health[1].state, BreakerState::Closed);
    assert_eq!(health[1].consecutive_failures, 0);
    assert_eq!(health[1].trips, 1, "trip count is cumulative");
}
