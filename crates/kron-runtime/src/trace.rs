//! Per-request stage timelines and the flight recorder: the causal half
//! of the runtime's observability surface.
//!
//! [`StageTimings`] answers *where did my microseconds go* for one
//! request — queue wait, linger window, plan resolution, execute,
//! scatter, and retry backoff, all stamped on the runtime's injectable
//! [`crate::clock::Clock`] so tests can script exact traces. The
//! [`FlightRecorder`] answers *what happened around my request*: a
//! fixed-capacity lock-free ring of recent [`ServeEvent`]s (admissions,
//! sheds, batch formation, executes, faults, retries, breaker
//! transitions, evictions) drained via [`crate::Runtime::drain_events`].
//! Recording an event is a handful of atomic stores into preallocated
//! slots — no lock, no allocation — so the steady-state zero-alloc
//! invariant proved in `serve_alloc.rs` holds with the recorder armed.

use crate::fault::FaultKind;
use crate::health::BreakerState;
use kron_core::DType;
// The seqlock's atomics and cell come through the `crossbeam::sync`
// facade so the publication protocol can be model-checked under
// `--cfg kron_loom`; normal builds get the `std` types back unchanged.
use crossbeam::sync::atomic::{fence, AtomicU64, Ordering};
use crossbeam::sync::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;

/// Per-stage latency breakdown of one served request, carried on the
/// [`crate::ServeReceipt`] returned by
/// [`crate::Ticket::wait_with_receipt`]. All values are microseconds on
/// the runtime's clock; stages a request never entered are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Channel wait: enqueue (client send) → scheduler pickup.
    pub queue_us: u64,
    /// Batching wait: scheduler pickup → linger window close.
    pub linger_us: u64,
    /// Plan-cache resolution (hit verify or miss build) on the final
    /// attempt.
    pub plan_us: u64,
    /// Kernel execution on the final attempt.
    pub exec_us: u64,
    /// Result scatter: execute end → reply fill.
    pub scatter_us: u64,
    /// Retry cost: serve start → final attempt start (backoff plus the
    /// failed attempts themselves). Zero when attempt 1 succeeds.
    pub retry_us: u64,
}

impl StageTimings {
    /// Sum of all stage components (saturating).
    pub fn total_us(&self) -> u64 {
        self.queue_us
            .saturating_add(self.linger_us)
            .saturating_add(self.plan_us)
            .saturating_add(self.exec_us)
            .saturating_add(self.scatter_us)
            .saturating_add(self.retry_us)
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue {}us | linger {}us | plan {}us | exec {}us | scatter {}us | retry {}us | total {}us",
            self.queue_us,
            self.linger_us,
            self.plan_us,
            self.exec_us,
            self.scatter_us,
            self.retry_us,
            self.total_us()
        )
    }
}

/// Why a cached plan left the cache (see [`ServeEventKind::Eviction`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// Evicted because a device fault poisoned the entry.
    Failed,
    /// Swept by the idle watchdog.
    Idle,
    /// Displaced to make room under the cache byte budget.
    Capacity,
}

/// What happened, without the timestamp (see [`ServeEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEventKind {
    /// A request passed the admission gate into the scheduler channel.
    Admit {
        /// Element dtype of the request.
        dtype: DType,
        /// Model id the request targets.
        model: u64,
        /// Rows (batch m) the request carries.
        rows: u32,
        /// Admission priority.
        priority: u8,
    },
    /// A request was shed with a deadline error before executing.
    Shed {
        /// The request's absolute deadline (µs on the runtime clock).
        deadline_us: u64,
        /// Clock time when the shed decision was made.
        now_us: u64,
    },
    /// The scheduler closed a linger window and formed a batch.
    BatchFormed {
        /// Model id the batch serves.
        model: u64,
        /// Requests coalesced into the batch.
        requests: u32,
        /// Total rows across those requests.
        rows: u32,
    },
    /// One execute attempt finished.
    Execute {
        /// Rows in the executed batch.
        rows: u32,
        /// Whether the plan ran sharded across devices.
        sharded: bool,
        /// Whether the attempt succeeded.
        ok: bool,
        /// Execute wall time (µs on the runtime clock).
        exec_us: u64,
    },
    /// A device fault surfaced from an execute.
    Fault {
        /// Device the fault was attributed to.
        gpu: u32,
        /// Whether the fault was a watchdog timeout (vs a failure).
        timeout: bool,
    },
    /// The chaos plane injected a scripted fault into a plan.
    FaultInjected {
        /// Device armed to fail.
        gpu: u32,
        /// Scripted fault kind.
        kind: FaultKind,
    },
    /// The scheduler scheduled another attempt after a failure.
    Retry {
        /// Attempt number about to run (2 = first retry).
        attempt: u32,
        /// Device limit the retry will build against.
        limit_gpus: u32,
    },
    /// A retry narrowed the device grid below the configured width.
    Degrade {
        /// Configured device count.
        from_gpus: u32,
        /// Width the batch actually ran at.
        to_gpus: u32,
    },
    /// A device breaker changed state.
    Breaker {
        /// Device whose breaker moved.
        gpu: u32,
        /// State it moved to.
        to: BreakerState,
    },
    /// A cached plan was evicted.
    Eviction {
        /// Dtype of the evicted plan.
        dtype: DType,
        /// Row capacity of the evicted plan.
        capacity: u32,
        /// Why it was evicted.
        reason: EvictReason,
    },
    /// A request was served inline on the submitting thread via the
    /// low-latency bypass lane (idle queue + warm plan).
    Bypass {
        /// Element dtype of the request.
        dtype: DType,
        /// Model id the request targets.
        model: u64,
        /// Rows (batch m) the request carries.
        rows: u32,
        /// Kernel wall time (µs on the runtime clock).
        exec_us: u64,
    },
    /// An idle scheduler lane stole queued requests from a backlogged
    /// sibling lane's ring (sharded layout only).
    Steal {
        /// Lane the requests were queued on.
        from: u32,
        /// Lane that stole and served them.
        to: u32,
        /// Requests moved.
        requests: u32,
    },
}

/// One timestamped entry in the flight recorder, drained via
/// [`crate::Runtime::drain_events`]. Events are returned in causal
/// (record) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeEvent {
    /// Clock time the event was recorded (µs on the runtime clock).
    pub at_us: u64,
    /// What happened.
    pub kind: ServeEventKind,
}

impl fmt::Display for ServeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10}us] ", self.at_us)?;
        match self.kind {
            ServeEventKind::Admit {
                dtype,
                model,
                rows,
                priority,
            } => write!(
                f,
                "admit        model={model} dtype={} rows={rows} prio={priority}",
                dtype.rust_name()
            ),
            ServeEventKind::Shed {
                deadline_us,
                now_us,
            } => write!(f, "shed         deadline={deadline_us}us now={now_us}us"),
            ServeEventKind::BatchFormed {
                model,
                requests,
                rows,
            } => write!(
                f,
                "batch-formed model={model} requests={requests} rows={rows}"
            ),
            ServeEventKind::Execute {
                rows,
                sharded,
                ok,
                exec_us,
            } => write!(
                f,
                "execute      rows={rows} sharded={sharded} ok={ok} exec={exec_us}us"
            ),
            ServeEventKind::Fault { gpu, timeout } => {
                write!(f, "fault        gpu={gpu} timeout={timeout}")
            }
            ServeEventKind::FaultInjected { gpu, kind } => {
                write!(f, "fault-inject gpu={gpu} kind={kind:?}")
            }
            ServeEventKind::Retry {
                attempt,
                limit_gpus,
            } => {
                write!(f, "retry        attempt={attempt} limit_gpus={limit_gpus}")
            }
            ServeEventKind::Degrade { from_gpus, to_gpus } => {
                write!(f, "degrade      {from_gpus} -> {to_gpus} gpus")
            }
            ServeEventKind::Breaker { gpu, to } => {
                write!(f, "breaker      gpu={gpu} -> {to:?}")
            }
            ServeEventKind::Eviction {
                dtype,
                capacity,
                reason,
            } => write!(
                f,
                "eviction     dtype={} capacity={capacity} reason={reason:?}",
                dtype.rust_name()
            ),
            ServeEventKind::Bypass {
                dtype,
                model,
                rows,
                exec_us,
            } => write!(
                f,
                "bypass       model={model} dtype={} rows={rows} exec={exec_us}us",
                dtype.rust_name()
            ),
            ServeEventKind::Steal { from, to, requests } => {
                write!(
                    f,
                    "steal        lane {from} -> lane {to} requests={requests}"
                )
            }
        }
    }
}

/// Slots in the flight recorder ring. Power of two so the ticket → slot
/// map is a mask.
pub(crate) const EVENT_CAPACITY: usize = 1024;

/// One seqlock-protected slot: `seq` is odd (`2t+1`) while ticket `t`'s
/// write is in flight and even (`2(t+1)`) once it is published, so a
/// drain can detect and discard slots it raced with.
struct EventSlot {
    seq: AtomicU64,
    data: UnsafeCell<MaybeUninit<ServeEvent>>,
}

/// Fixed-capacity lock-free ring of recent [`ServeEvent`]s. Writers
/// claim a monotonically increasing ticket and overwrite the slot at
/// `ticket % capacity`; drains read every published slot since the last
/// drain (bounded by capacity) in ticket order, skipping slots a
/// concurrent writer is mid-overwrite on. Recording never allocates and
/// never blocks.
pub(crate) struct FlightRecorder {
    head: AtomicU64,
    drained: AtomicU64,
    slots: Box<[EventSlot]>,
}

// SAFETY: slot data is only read through the seqlock protocol below —
// a drain accepts a slot's bytes only when `seq` reads the same even
// publication value before and after the copy, which proves no writer
// touched the slot during the read.
unsafe impl Sync for FlightRecorder {}

impl FlightRecorder {
    pub(crate) fn new() -> Self {
        FlightRecorder::with_capacity(EVENT_CAPACITY)
    }

    /// A recorder with `capacity` slots (must be a power of two, so the
    /// ticket → slot map stays a mask). The runtime always uses
    /// [`EVENT_CAPACITY`]; the model-check suites shrink the ring to 2–4
    /// slots so lap/overwrite races fit inside the exploration budget.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "flight recorder capacity must be a power of two"
        );
        let slots = (0..capacity)
            .map(|_| EventSlot {
                seq: AtomicU64::new(0),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRecorder {
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            slots,
        }
    }

    /// Records `event`, overwriting the oldest slot when the ring is
    /// full. Lock-free and allocation-free.
    pub(crate) fn record(&self, event: ServeEvent) {
        // relaxed: the ticket claim only needs atomicity — publication
        // ordering is carried entirely by the slot's seq protocol.
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t as usize) & (self.slots.len() - 1)];
        // relaxed: the odd (write-in-flight) mark is ordered before the
        // data write by the Release fence below.
        slot.seq.store(2 * t + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: the slot is exclusively ours between the odd seq store
        // and the even publication below as far as readers are concerned
        // (they reject odd or mismatched seq). A lapped concurrent writer
        // could race the bytes, but readers double-check seq and discard.
        unsafe {
            (*self.data_ptr(slot)).write(event);
        }
        slot.seq.store(2 * (t + 1), Ordering::Release);
    }

    fn data_ptr(&self, slot: &EventSlot) -> *mut MaybeUninit<ServeEvent> {
        slot.data.get()
    }

    /// Drains every event recorded since the last drain (bounded by ring
    /// capacity — older events are overwritten and lost) in record
    /// order. Cold path: allocates the result vector.
    pub(crate) fn drain(&self) -> Vec<ServeEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = self
            .drained
            .load(Ordering::Acquire)
            .max(head.saturating_sub(self.slots.len() as u64));
        let mut out = Vec::with_capacity((head - start) as usize);
        for t in start..head {
            let slot = &self.slots[(t as usize) & (self.slots.len() - 1)];
            let want = 2 * (t + 1);
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            // SAFETY: seq read `want` (even, matching ticket t), so the
            // slot was fully published for t. The volatile copy plus the
            // seq re-check below detects any writer that lapped us
            // mid-copy; only unraced bytes are kept.
            let ev = unsafe { std::ptr::read_volatile(self.data_ptr(slot)) };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            // SAFETY: verified stable publication above.
            out.push(unsafe { ev.assume_init() });
        }
        self.drained.store(head, Ordering::Release);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64) -> ServeEvent {
        ServeEvent {
            at_us,
            kind: ServeEventKind::Retry {
                attempt: 1,
                limit_gpus: 4,
            },
        }
    }

    #[test]
    fn drain_returns_events_in_record_order() {
        let r = FlightRecorder::new();
        for t in 0..10 {
            r.record(ev(t));
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 10);
        assert!(drained.windows(2).all(|w| w[0].at_us < w[1].at_us));
        assert!(r.drain().is_empty(), "second drain sees nothing new");
    }

    #[test]
    fn ring_overwrites_oldest_when_lapped() {
        let r = FlightRecorder::new();
        let total = EVENT_CAPACITY as u64 + 100;
        for t in 0..total {
            r.record(ev(t));
        }
        let drained = r.drain();
        assert_eq!(drained.len(), EVENT_CAPACITY);
        assert_eq!(drained.first().unwrap().at_us, 100);
        assert_eq!(drained.last().unwrap().at_us, total - 1);
    }

    #[test]
    fn drain_resumes_from_cursor() {
        let r = FlightRecorder::new();
        r.record(ev(0));
        assert_eq!(r.drain().len(), 1);
        r.record(ev(1));
        r.record(ev(2));
        let second = r.drain();
        assert_eq!(second.len(), 2);
        assert_eq!(second[0].at_us, 1);
    }

    #[test]
    fn timings_total_and_display() {
        let t = StageTimings {
            queue_us: 1,
            linger_us: 2,
            plan_us: 3,
            exec_us: 4,
            scatter_us: 5,
            retry_us: 6,
        };
        assert_eq!(t.total_us(), 21);
        let s = t.to_string();
        assert!(s.contains("queue 1us") && s.contains("total 21us"), "{s}");
    }
}
