//! §6.1: autotuning statistics — configurations generated/scored per
//! problem shape and the tuner's own wall-clock cost (the paper compiles
//! up to 10,000 CUDA kernels in under 2 minutes; our analytic scorer
//! evaluates comparable candidate counts in milliseconds).

use bench::figure9_cases;
use fastkron_core::FastKron;
use gpu_sim::device::V100;
use kron_core::KronProblem;

fn main() {
    println!("Autotuning report (§6.1 analog)");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>8}",
        "size", "generated", "scored", "tuner-time", "launches"
    );
    let mut total = 0.0;
    for (p, n) in figure9_cases() {
        let problem = KronProblem::uniform(1024, p, n).expect("valid case");
        let plan = FastKron::plan::<f32>(&problem, &V100).unwrap();
        total += plan.tune_report.tuning_seconds;
        println!(
            "{:>5}^{:<2} {:>12} {:>10} {:>10.0}ms {:>8}",
            p,
            n,
            plan.tune_report.generated,
            plan.tune_report.scored,
            plan.tune_report.tuning_seconds * 1e3,
            plan.launches(),
        );
    }
    println!("\nTotal tuning time over all shapes: {total:.2} s (paper budget: <2 min/shape)");
}
