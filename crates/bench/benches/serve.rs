//! Serving bench: batched runtime serving vs the unbatched per-request
//! paths on small-M shapes (the Table 3/4 sizes that motivate the
//! `kron-runtime` batcher), emitting `BENCH_serve.json` at the repo root.
//!
//! Four serving strategies over the same request stream:
//!
//! * **planned** — the unbatched per-request path through the library's
//!   planned API: `FastKron::plan` + `execute` for every request, i.e.
//!   what a server built on the pre-runtime public API does (planning and
//!   workspace allocation per request).
//! * **direct** — `kron_matmul_fused` per request: no autotuning, but a
//!   throwaway workspace and result allocation per request.
//! * **batched** — the `kron-runtime` runtime under burst load: plan
//!   cached after the first request, same-model requests coalesced into
//!   one large-M fused execute per batch window.
//! * **bypass** — the same runtime at queue depth 1: sequential
//!   submit→wait, where the inline bypass lane executes each request on
//!   the submitting thread against the warm cached plan (no channel hop,
//!   no linger window).
//!
//! The headline `speedup` compares batched against the planned
//! per-request path (the runtime's plan cache plus the batcher);
//! `speedup_vs_direct` isolates what batching and buffer reuse add over
//! a plan-free but allocating per-request loop.
//!
//! Each case also records `batched_tails`: the timed window's p50/p95/p99
//! as the *runtime itself* measured them, read back from the per-model
//! latency histograms behind `Runtime::metrics_snapshot` — the numbers a
//! production scrape would see, cross-checkable against the client-side
//! `batched` percentiles.

use fastkron_core::exec::kron_matmul_fused;
use fastkron_core::FastKron;
use gpu_sim::device::V100;
use kron_core::{KronProblem, Matrix};
use kron_runtime::{HistogramSnapshot, RetryPolicy, Runtime, RuntimeConfig};
use std::time::Instant;

/// Requests per case for the direct and batched paths.
const REQUESTS: usize = 1024;

/// Requests per case for the planned path (it re-tunes per request, which
/// is exactly why it is slow; fewer samples keep the bench's wall clock
/// sane).
const PLANNED_REQUESTS: usize = 32;

/// Small-M serving shapes: `(m, p, n)` with M ≤ 16, Table 3/4 style.
const CASES: &[(usize, usize, usize)] = &[
    (1, 8, 2),
    (2, 8, 2),
    (4, 8, 2),
    (16, 8, 2),
    (4, 16, 2),
    (16, 16, 2),
    (2, 4, 4),
    (8, 32, 2),
];

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 3 * r * cols + c) % 13) as f32 - 6.0
    })
}

/// Latency distribution + throughput for one strategy on one case.
struct PathResult {
    rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[f64], pct: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * pct).round() as usize;
    sorted[idx]
}

fn summarize(mut latencies_s: Vec<f64>, wall_s: f64) -> PathResult {
    let n = latencies_s.len();
    latencies_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PathResult {
        rps: n as f64 / wall_s,
        p50_us: percentile(&latencies_s, 0.50) * 1e6,
        p95_us: percentile(&latencies_s, 0.95) * 1e6,
        p99_us: percentile(&latencies_s, 0.99) * 1e6,
    }
}

/// The timed batched window's end-to-end latency histogram, read back
/// from the runtime's own per-model registry (not client-side clocks):
/// the same zero-alloc log2 buckets `Runtime::metrics_snapshot` exports
/// to Prometheus. Diffed before/after the window because cases sharing a
/// factor-shape family (e.g. every `8^2` M-sweep case) share one registry
/// entry.
fn model_latency(runtime: &Runtime, model: &kron_runtime::Model<f32>) -> HistogramSnapshot {
    runtime
        .model_stats()
        .into_iter()
        .find(|e| e.shape_key == model.shape_key())
        .map(|e| e.latency)
        .unwrap_or_default()
}

/// Per-request planning + execution: the pre-runtime planned API loop.
fn run_planned(problem: &KronProblem, xs: &[Matrix<f32>], refs: &[&Matrix<f32>]) -> PathResult {
    let mut lat = Vec::with_capacity(xs.len());
    let t0 = Instant::now();
    for x in xs {
        let t = Instant::now();
        let plan = FastKron::plan::<f32>(problem, &V100).expect("plan");
        let y = plan.execute(x, refs).expect("execute");
        std::hint::black_box(&y);
        lat.push(t.elapsed().as_secs_f64());
    }
    summarize(lat, t0.elapsed().as_secs_f64())
}

/// Per-request fused execution with a throwaway workspace.
fn run_direct(xs: &[Matrix<f32>], refs: &[&Matrix<f32>]) -> PathResult {
    let mut lat = Vec::with_capacity(xs.len());
    let t0 = Instant::now();
    for x in xs {
        let t = Instant::now();
        let y = kron_matmul_fused(x, refs).expect("fused");
        std::hint::black_box(&y);
        lat.push(t.elapsed().as_secs_f64());
    }
    summarize(lat, t0.elapsed().as_secs_f64())
}

/// Pipelined runtime serving: submit every request, then drain tickets.
fn run_batched(
    runtime: &Runtime,
    model: &kron_runtime::Model<f32>,
    xs: &[Matrix<f32>],
) -> (PathResult, u64) {
    let batches_before = runtime.stats().batches;
    let t0 = Instant::now();
    let mut submitted = Vec::with_capacity(xs.len());
    let mut tickets = Vec::with_capacity(xs.len());
    for x in xs {
        submitted.push(Instant::now());
        tickets.push(runtime.submit(model, x.clone()).expect("submit"));
    }
    let mut lat = Vec::with_capacity(xs.len());
    for (t, s) in tickets.into_iter().zip(submitted) {
        let y = t.wait().expect("wait");
        std::hint::black_box(&y);
        lat.push(s.elapsed().as_secs_f64());
    }
    let wall = t0.elapsed().as_secs_f64();
    let batches = runtime.stats().batches - batches_before;
    (summarize(lat, wall), batches)
}

/// Sequential (queue-depth-1) runtime serving: submit one request and
/// wait for its reply before submitting the next — the latency-sensitive
/// pattern the inline bypass lane exists for. With the queue empty and
/// the plan warm, every request executes inline on this thread.
fn run_bypass(
    runtime: &Runtime,
    model: &kron_runtime::Model<f32>,
    xs: &[Matrix<f32>],
) -> (PathResult, u64) {
    let bypassed_before = runtime.stats().bypassed_requests;
    let mut lat = Vec::with_capacity(xs.len());
    let t0 = Instant::now();
    for x in xs {
        let t = Instant::now();
        let ticket = runtime.submit(model, x.clone()).expect("submit");
        let y = ticket.wait().expect("wait");
        std::hint::black_box(&y);
        lat.push(t.elapsed().as_secs_f64());
    }
    let wall = t0.elapsed().as_secs_f64();
    let bypassed = runtime.stats().bypassed_requests - bypassed_before;
    (summarize(lat, wall), bypassed)
}

/// Submitter threads for the multi-producer burst gate.
const MP_THREADS: usize = 4;
/// Pipelined bursts per submitter thread.
const MP_ROUNDS: usize = 16;
/// Requests per burst (submitted before any ticket is waited).
const MP_BURST: usize = 32;

struct MultiProducerResult {
    lanes: u64,
    rps: f64,
    steals: u64,
    lanes_used: usize,
}

/// Multi-producer burst serving: [`MP_THREADS`] submitter threads, each
/// owning two hash-distinct models, pipelining [`MP_BURST`]-request
/// bursts against one shared runtime. Run once with a single scheduler
/// lane (the pre-sharding admission topology) and once sharded, the two
/// throughputs price what lane sharding buys concurrent producers.
fn run_multi_producer(scheduler_lanes: usize) -> MultiProducerResult {
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 256,
        batch_max_m: 32,
        max_queue: 2048,
        batch_linger_us: 300,
        scheduler_lanes,
        // Scheduler-path only: with producers keeping every lane busy the
        // bypass door would stay shut anyway, and closing it keeps the
        // single-lane and sharded runs on the identical code path.
        inline_bypass: false,
        ..RuntimeConfig::default()
    });
    // Two models per submitter thread, shapes chosen hash-distinct so
    // the sharded run spreads them across lanes.
    let chains: [(usize, usize); MP_THREADS * 2] = [
        (8, 2),
        (4, 4),
        (16, 2),
        (2, 6),
        (4, 3),
        (8, 3),
        (2, 4),
        (32, 2),
    ];
    let models: Vec<kron_runtime::Model<f32>> = chains
        .iter()
        .enumerate()
        .map(|(i, &(p, n))| {
            let factors: Vec<Matrix<f32>> =
                (0..n).map(|j| seq_matrix(p, p, i + 3 * j + 1)).collect();
            runtime.load_model(factors).expect("load model")
        })
        .collect();
    // Warm every plan through the scheduler before timing.
    for model in &models {
        let x = seq_matrix(4, model.input_cols(), 7);
        runtime
            .submit(model, x)
            .expect("warm")
            .wait()
            .expect("warm wait");
    }

    let total = MP_THREADS * MP_ROUNDS * MP_BURST;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..MP_THREADS {
            let own = &models[2 * t..2 * t + 2];
            let runtime = &runtime;
            scope.spawn(move || {
                let xs: Vec<Matrix<f32>> = own
                    .iter()
                    .map(|m| seq_matrix(4, m.input_cols(), 11 + t))
                    .collect();
                for _ in 0..MP_ROUNDS {
                    let mut tickets = Vec::with_capacity(MP_BURST);
                    for i in 0..MP_BURST {
                        let which = i % own.len();
                        tickets.push(
                            runtime
                                .submit(&own[which], xs[which].clone())
                                .expect("submit"),
                        );
                    }
                    for ticket in tickets {
                        let y = ticket.wait().expect("wait");
                        std::hint::black_box(&y);
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let stats = runtime.stats();
    assert_eq!(
        stats.served,
        (total + models.len()) as u64,
        "every request must serve: {stats:?}"
    );
    MultiProducerResult {
        lanes: stats.scheduler_lanes,
        rps: total as f64 / wall,
        steals: stats.lane_steals,
        lanes_used: stats.lanes().iter().filter(|l| l.served > 0).count(),
    }
}

struct CaseResult {
    m: usize,
    p: usize,
    n: usize,
    planned: PathResult,
    direct: PathResult,
    batched: PathResult,
    /// The batched path again, on a twin runtime with retry disabled —
    /// the fault-free-overhead control (self-healing must be free when
    /// nothing fails).
    noretry: PathResult,
    /// Queue-depth-1 sequential serving through the runtime: the inline
    /// bypass lane.
    bypass: PathResult,
    /// How many of the timed queue-depth-1 requests actually took the
    /// inline lane (`bypassed_requests` delta over the timed window).
    bypassed: u64,
    batches: u64,
    /// Runtime-reported tail histogram for the timed batched window.
    tails: HistogramSnapshot,
    /// Runtime-reported tail histogram for the timed queue-depth-1
    /// window. Unlike the burst window — where a request served late in
    /// a cycle waits out earlier batch executes in no timeline stage —
    /// the bypass timeline is complete (plan + exec is the whole serve),
    /// so these tails are directly comparable to the client-side clocks.
    bypass_tails: HistogramSnapshot,
}

fn run_case(runtime: &Runtime, noretry_rt: &Runtime, m: usize, p: usize, n: usize) -> CaseResult {
    let problem = KronProblem::uniform(m, p, n).expect("valid case");
    let k = problem.input_cols();
    let factors: Vec<Matrix<f32>> = (0..n).map(|i| seq_matrix(p, p, i + 2)).collect();
    let refs: Vec<&Matrix<f32>> = factors.iter().collect();
    let model = runtime.load_model(factors.clone()).expect("load model");

    let xs: Vec<Matrix<f32>> = (0..REQUESTS).map(|i| seq_matrix(m, k, i + 1)).collect();

    // Correctness cross-check before timing anything.
    let oracle = kron_core::shuffle::kron_matmul_shuffle(&xs[0], &refs).expect("oracle");
    let served = runtime.execute(&model, xs[0].clone()).expect("serve");
    kron_core::assert_matrices_close(&served, &oracle, &format!("case M={m} {p}^{n}"));

    // Warmup each path (plan cache, allocator, branch predictors).
    let _ = run_direct(&xs[..64.min(xs.len())], &refs);
    let (_, _) = run_batched(runtime, &model, &xs[..64.min(xs.len())]);
    let _ = run_planned(&problem, &xs[..4], &refs);

    // Fault-free-overhead control: the identical request stream through a
    // twin runtime whose retry machinery is disabled.
    let noretry_model = noretry_rt.load_model(factors.clone()).expect("load model");
    let (_, _) = run_batched(noretry_rt, &noretry_model, &xs[..64.min(xs.len())]);

    let planned = run_planned(&problem, &xs[..PLANNED_REQUESTS], &refs);
    let direct = run_direct(&xs, &refs);
    let before = model_latency(runtime, &model);
    let (batched, batches) = run_batched(runtime, &model, &xs);
    let tails = model_latency(runtime, &model).since(&before);
    let (noretry, _) = run_batched(noretry_rt, &noretry_model, &xs);
    // Queue depth 1 over the same warm runtime: every wait has drained
    // the queue before the next submit, so the inline lane carries the
    // whole stream.
    let (_, _) = run_bypass(runtime, &model, &xs[..64.min(xs.len())]);
    let bypass_before = model_latency(runtime, &model);
    let (bypass, bypassed) = run_bypass(runtime, &model, &xs);
    let bypass_tails = model_latency(runtime, &model).since(&bypass_before);

    CaseResult {
        m,
        p,
        n,
        planned,
        direct,
        batched,
        noretry,
        bypass,
        bypassed,
        batches,
        tails,
        bypass_tails,
    }
}

fn path_json(r: &PathResult) -> String {
    format!(
        "{{\"rps\": {:.1}, \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}}}",
        r.rps, r.p50_us, r.p95_us, r.p99_us
    )
}

/// Tail object for the runtime-reported histogram: percentiles
/// interpolated within the log2 buckets, in whole microseconds.
fn tails_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
        h.count,
        h.percentile(0.50),
        h.percentile(0.95),
        h.percentile(0.99)
    )
}

fn multi_producer_json(single: &MultiProducerResult, sharded: &MultiProducerResult) -> String {
    let lane_json = |r: &MultiProducerResult| {
        format!(
            "{{\"scheduler_lanes\": {}, \"rps\": {:.1}, \"steals\": {}, \"lanes_used\": {}}}",
            r.lanes, r.rps, r.steals, r.lanes_used
        )
    };
    format!(
        concat!(
            "{{\"threads\": {}, \"rounds\": {}, \"burst\": {},\n",
            "     \"single\": {},\n",
            "     \"sharded\": {},\n",
            "     \"speedup\": {:.3}}}"
        ),
        MP_THREADS,
        MP_ROUNDS,
        MP_BURST,
        lane_json(single),
        lane_json(sharded),
        sharded.rps / single.rps,
    )
}

fn emit_json(results: &[CaseResult], threads: usize, multi_producer: &str) -> String {
    let cases: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"m\": {}, \"p\": {}, \"n\": {},\n",
                    "     \"unbatched_planned\": {},\n",
                    "     \"unbatched_direct\": {},\n",
                    "     \"batched\": {},\n",
                    "     \"batched_noretry\": {},\n",
                    "     \"batched_bypass\": {},\n",
                    "     \"batched_tails\": {},\n",
                    "     \"bypass_tails\": {},\n",
                    "     \"batches\": {}, \"bypassed\": {},\n",
                    "     \"speedup\": {:.3}, \"speedup_vs_direct\": {:.3}, ",
                    "\"bypass_p50_vs_direct\": {:.3}}}"
                ),
                r.m,
                r.p,
                r.n,
                path_json(&r.planned),
                path_json(&r.direct),
                path_json(&r.batched),
                path_json(&r.noretry),
                path_json(&r.bypass),
                tails_json(&r.tails),
                tails_json(&r.bypass_tails),
                r.batches,
                r.bypassed,
                r.batched.rps / r.planned.rps,
                r.batched.rps / r.direct.rps,
                r.bypass.p50_us / r.direct.p50_us,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"description\": \"batched runtime serving vs unbatched per-request paths, small-M shapes\",\n",
            "  \"dtype\": \"f32\",\n",
            "  \"requests\": {},\n",
            "  \"planned_requests\": {},\n",
            "  \"threads\": {},\n",
            "  \"paths\": [\"unbatched_planned\", \"unbatched_direct\", \"batched\", ",
            "\"batched_noretry\", \"batched_bypass\"],\n",
            "  \"multi_producer\": {},\n",
            "  \"cases\": [\n{}\n  ]\n",
            "}}\n"
        ),
        REQUESTS,
        PLANNED_REQUESTS,
        threads,
        multi_producer,
        cases.join(",\n")
    )
}

fn main() {
    let config = RuntimeConfig {
        max_batch_rows: 256,
        batch_max_m: 32,
        max_queue: 2048,
        // Linger briefly so bursts coalesce even when the submitting
        // thread and the scheduler contend for the same core.
        batch_linger_us: 300,
        ..RuntimeConfig::default()
    };
    // Default config: retry/breaker/chaos machinery compiled in and armed
    // (but never firing — this bench is the fault-free path).
    let runtime = Runtime::new(config.clone());
    // Control: identical twin with the retry machinery disabled, to price
    // what self-healing costs a healthy server.
    let noretry_rt = Runtime::new(RuntimeConfig {
        retry: RetryPolicy {
            max_attempts: 0,
            backoff_us: 0,
            degrade: false,
        },
        ..config
    });
    let threads = rayon::ThreadPool::global().threads();

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8}",
        "case", "planned/s", "direct/s", "batched/s", "bypass/s", "speedup", "byp_p50", "batches"
    );
    let mut results = Vec::new();
    for &(m, p, n) in CASES {
        let r = run_case(&runtime, &noretry_rt, m, p, n);
        println!(
            "{:>10} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>8.2}x {:>8.2}x {:>8}",
            format!("M={m} {p}^{n}"),
            r.planned.rps,
            r.direct.rps,
            r.batched.rps,
            r.bypass.rps,
            r.batched.rps / r.planned.rps,
            r.bypass.p50_us / r.direct.p50_us,
            r.batches,
        );
        results.push(r);
    }

    // Multi-producer burst gate: the same 4-thread pipelined workload
    // against a single-lane runtime (the pre-sharding admission
    // topology) and a sharded one.
    let mp_single = run_multi_producer(1);
    let mp_sharded = run_multi_producer(4);
    println!(
        "multi-producer ({MP_THREADS} threads): single-lane {:.0}/s | {} lanes {:.0}/s \
         ({:.2}x, {} lanes used, {} steals)",
        mp_single.rps,
        mp_sharded.lanes,
        mp_sharded.rps,
        mp_sharded.rps / mp_single.rps,
        mp_sharded.lanes_used,
        mp_sharded.steals,
    );

    let json = emit_json(
        &results,
        threads,
        &multi_producer_json(&mp_single, &mp_sharded),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("\nwrote {path}");

    let stats = runtime.stats();
    println!(
        "runtime totals: served={} batches={} batched_requests={} plan hits/misses={}/{}",
        stats.served, stats.batches, stats.batched_requests, stats.plan_hits, stats.plan_misses
    );

    // Acceptance gates. (1) Throughput: batched ≥ 2× the unbatched
    // per-request (planned) path on at least 3 small-M shapes. (2) The
    // batcher actually engaged on every case — planned-path speedup alone
    // would stay green even if the scheduler degenerated into lockstep
    // one-request cycles, so a coalescing regression must fail the smoke
    // job too. (`speedup_vs_direct` stays informational: it depends on
    // host width — below 1 on single-core containers where the pool's
    // parallel win is dormant, above it on wide hosts.)
    let wins = results
        .iter()
        .filter(|r| r.m <= 16 && r.batched.rps >= 2.0 * r.planned.rps)
        .count();
    let unbatched_cases: Vec<String> = results
        .iter()
        .filter(|r| r.batches == 0)
        .map(|r| format!("M={} {}^{}", r.m, r.p, r.n))
        .collect();
    let mut failed = false;
    if wins >= 3 {
        println!(
            "batched ≥ 2x unbatched on {wins}/{} small-M shapes",
            results.len()
        );
    } else {
        println!(
            "FAIL: batched ≥ 2x unbatched on only {wins}/{} shapes",
            results.len()
        );
        failed = true;
    }
    if unbatched_cases.is_empty() {
        println!("cross-request batching engaged on every case");
    } else {
        println!("FAIL: no batches formed on: {}", unbatched_cases.join(", "));
        failed = true;
    }
    // (2b) Tail integrity: the runtime's own histograms attributed every
    // timed request of every case to its model entry — `batched_tails`
    // is a real measurement, not a stale or cross-wired one.
    let tail_gaps: Vec<String> = results
        .iter()
        .filter(|r| r.tails.count != REQUESTS as u64)
        .map(|r| {
            format!(
                "M={} {}^{} counted {}/{REQUESTS}",
                r.m, r.p, r.n, r.tails.count
            )
        })
        .collect();
    if tail_gaps.is_empty() {
        println!("runtime histograms attributed all {REQUESTS} timed requests per case");
    } else {
        println!("FAIL: histogram attribution gaps: {}", tail_gaps.join(", "));
        failed = true;
    }
    // (2c) Tail fidelity, pinned on the queue-depth-1 window: with
    // percentile interpolation inside the log2 buckets, the runtime-side
    // p50/p95 must land within one bucket of the client-side measurement
    // of the same window. (Before the interpolation fix, every readout
    // snapped to its bucket's upper bound — up to 2x the true value —
    // and nothing pinned the agreement.) The bypass window is the one
    // whose timeline is complete: under burst, a request served late in
    // a cycle waits out earlier batch executes in no timeline stage, so
    // runtime-side burst tails legitimately read below the client's.
    // One bucket of slack covers the client clock starting before
    // submit-side bookkeeping; the 4µs absolute floor covers sub-bucket
    // clock granularity on the fastest shapes; 6/8 covers host jitter.
    let log2_bucket = |us: f64| -> i64 {
        let v = us.round().max(0.0) as u64;
        if v == 0 {
            0
        } else {
            (u64::BITS - v.leading_zeros()) as i64
        }
    };
    let close = |runtime_us: u64, client_us: f64| {
        (log2_bucket(runtime_us as f64) - log2_bucket(client_us)).abs() <= 1
            || (runtime_us as f64 - client_us).abs() <= 4.0
    };
    let tails_faithful = results
        .iter()
        .filter(|r| {
            close(r.bypass_tails.percentile(0.50), r.bypass.p50_us)
                && close(r.bypass_tails.percentile(0.95), r.bypass.p95_us)
        })
        .count();
    if tails_faithful >= 6 {
        println!(
            "runtime-side p50/p95 within one log2 bucket of client-side on {tails_faithful}/{} queue-depth-1 cases",
            results.len()
        );
    } else {
        for r in &results {
            println!(
                "  M={} {}^{}: client p50={:.1}us p95={:.1}us | runtime p50={}us p95={}us",
                r.m,
                r.p,
                r.n,
                r.bypass.p50_us,
                r.bypass.p95_us,
                r.bypass_tails.percentile(0.50),
                r.bypass_tails.percentile(0.95),
            );
        }
        println!(
            "FAIL: runtime-side tails disagree with client-side on {}/{} cases",
            results.len() - tails_faithful,
            results.len()
        );
        failed = true;
    }
    // (3) Fault-free overhead: with no fault firing, the retry-enabled
    // runtime's p50 must be indistinguishable from the retry-disabled
    // twin's — the self-healing machinery may not tax the healthy path.
    // The bound is generous (1.5x + 20µs) because single-digit-µs p50s
    // on shared CI hosts jitter by more than the machinery could ever
    // cost; a real regression (a lock or allocation on the hot path)
    // blows through it anyway.
    let overhead_ok = results
        .iter()
        .filter(|r| r.batched.p50_us <= 1.5 * r.noretry.p50_us + 20.0)
        .count();
    if overhead_ok >= 6 {
        println!(
            "retry-enabled p50 within noise of retry-disabled on {overhead_ok}/{} cases",
            results.len()
        );
    } else {
        for r in &results {
            println!(
                "  M={} {}^{}: p50 retry={:.2}us noretry={:.2}us",
                r.m, r.p, r.n, r.batched.p50_us, r.noretry.p50_us
            );
        }
        println!(
            "FAIL: fault-free retry overhead visible on {}/{} cases",
            results.len() - overhead_ok,
            results.len()
        );
        failed = true;
    }
    // (4) Queue-depth-1 latency: the inline bypass lane must hold
    // sequential submit→wait within ~2x of the raw fused call — the
    // batching tax (linger window + channel round-trip + scheduler wake)
    // is gone from the direct path. The +25µs grace absorbs OS jitter on
    // shared hosts where direct p50s are single-digit µs. Every timed
    // request must also have actually taken the inline lane: a silent
    // fallback to the scheduler would only pass by luck.
    let bypass_ok = results
        .iter()
        .filter(|r| {
            r.bypassed == REQUESTS as u64 && r.bypass.p50_us <= 2.0 * r.direct.p50_us + 25.0
        })
        .count();
    if bypass_ok >= 6 {
        println!(
            "queue-depth-1 p50 within 2x of unbatched_direct on {bypass_ok}/{} cases",
            results.len()
        );
    } else {
        for r in &results {
            println!(
                "  M={} {}^{}: p50 bypass={:.2}us direct={:.2}us bypassed={}/{REQUESTS}",
                r.m, r.p, r.n, r.bypass.p50_us, r.direct.p50_us, r.bypassed
            );
        }
        println!(
            "FAIL: queue-depth-1 latency tax visible on {}/{} cases",
            results.len() - bypass_ok,
            results.len()
        );
        failed = true;
    }
    // (5) Multi-producer scaling: with 4 submitter threads pipelining
    // bursts, the sharded runtime must actually use its lanes (hash
    // placement spread the eight models over ≥ 2 lanes — deterministic,
    // host-independent) and must beat the single-lane topology's
    // throughput on hosts wide enough for lanes to run in parallel. On
    // single-core hosts the lanes time-slice one core, so the ratio gate
    // degrades to a regression bound: sharding may not cost more than
    // half the single-lane throughput even when its parallelism is
    // dormant.
    if mp_sharded.lanes_used >= 2 {
        println!(
            "sharded run spread load across {} lanes",
            mp_sharded.lanes_used
        );
    } else {
        println!(
            "FAIL: sharded run served everything on {} lane(s)",
            mp_sharded.lanes_used
        );
        failed = true;
    }
    let mp_ratio = mp_sharded.rps / mp_single.rps;
    let (mp_floor, mp_label) = if threads >= 2 {
        (1.05, "multi-core scaling")
    } else {
        (0.5, "single-core regression bound")
    };
    if mp_ratio >= mp_floor {
        println!(
            "multi-producer sharded/single throughput {mp_ratio:.2}x ≥ {mp_floor}x ({mp_label})"
        );
    } else {
        println!(
            "FAIL: multi-producer sharded/single throughput {mp_ratio:.2}x < {mp_floor}x ({mp_label})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
