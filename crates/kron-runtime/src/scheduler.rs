//! The scheduler thread: drains the request channel, groups batchable
//! same-model requests, and executes batches/solos through the plan cache.
//!
//! All scratch state (`pending`, the grouping table, the factor-reference
//! slice) is owned and reused across cycles, so a warmed scheduler serves
//! requests without allocating — the other half of the crate's
//! zero-allocation steady-state contract (the first half being the plan
//! cache's reused workspaces and batch buffers).

use crate::cache::PlanCache;
use crate::runtime::{Msg, Reply, Request, RuntimeConfig, StatsInner, NO_FAULT};
use crossbeam::channel::Receiver;
use kron_core::{Element, KronError, Matrix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub(crate) struct Scheduler<T: Element> {
    rx: Receiver<Msg<T>>,
    cfg: RuntimeConfig,
    cache: PlanCache<T>,
    stats: Arc<StatsInner>,
    /// One-shot device-fault flag shared with the runtime handle
    /// (`NO_FAULT` when disarmed); consumed by the next sharded execute.
    fault: Arc<AtomicUsize>,
    /// Requests drained this cycle; `None` marks served slots. Cleared
    /// (capacity kept) at the end of every cycle.
    pending: Vec<Option<Request<T>>>,
    /// Grouping table: `(model id, pending indices)` per batchable model.
    /// Entries beyond `groups_used` are retired but keep their Vec
    /// capacity for reuse.
    groups: Vec<(u64, Vec<usize>)>,
    groups_used: usize,
    /// Reused backing store for the `&[&Matrix<T>]` factor slice.
    refs_scratch: Vec<*const Matrix<T>>,
}

// SAFETY: `refs_scratch` only holds pointers transiently within one serve
// call; the scheduler is moved to its thread once and never shared.
unsafe impl<T: Element> Send for Scheduler<T> {}

/// Builds a `&[&Matrix<T>]` over `factors` in the reused scratch buffer —
/// no allocation once the scratch has grown to the largest factor count
/// seen.
fn refs_of<'a, T: Element>(
    scratch: &'a mut Vec<*const Matrix<T>>,
    factors: &'a [Matrix<T>],
) -> &'a [&'a Matrix<T>] {
    scratch.clear();
    scratch.extend(factors.iter().map(|f| f as *const Matrix<T>));
    // SAFETY: `&Matrix<T>` and `*const Matrix<T>` have identical layout,
    // every pointer is derived from a live reference in `factors`, and the
    // returned slice's lifetime ties it to both borrows.
    unsafe { std::slice::from_raw_parts(scratch.as_ptr().cast::<&Matrix<T>>(), scratch.len()) }
}

/// The staged-batch execution core shared by the chunk and staged-solo
/// paths: arm a pending device fault (consumed only if the entry has
/// devices to fault), run the staged rows, and account sharded executes.
/// Returns the result, the `rows`-prorated summary (successful sharded
/// runs only), and whether the entry must be evicted (device failure —
/// rebuild the engine rather than trust a possibly inconsistent fabric).
fn run_staged_batch<T: Element>(
    entry: &mut crate::cache::CachedPlan<T>,
    fault: &AtomicUsize,
    stats: &StatsInner,
    refs: &[&Matrix<T>],
    rows: usize,
) -> (kron_core::Result<()>, Option<gpu_sim::ExecSummary>, bool) {
    let gpu = fault.load(Ordering::SeqCst);
    if gpu != NO_FAULT && entry.arm_fault(gpu) {
        fault.store(NO_FAULT, Ordering::SeqCst);
    }
    let result = entry.run_batch(refs, rows);
    let mut summary = None;
    if result.is_ok() && entry.is_sharded() {
        stats.sharded_batches.fetch_add(1, Ordering::Relaxed);
        summary = entry.shard_summary(rows);
        if let Some(s) = summary {
            stats.comm_bytes.fetch_add(s.comm_bytes, Ordering::Relaxed);
        }
    }
    let evict = matches!(result, Err(KronError::DeviceFailure { .. }));
    (result, summary, evict)
}

impl<T: Element> Scheduler<T> {
    pub(crate) fn new(
        rx: Receiver<Msg<T>>,
        cfg: RuntimeConfig,
        stats: Arc<StatsInner>,
        fault: Arc<AtomicUsize>,
    ) -> Self {
        let cache = PlanCache::new(cfg.device.clone(), &cfg.backend);
        Scheduler {
            rx,
            cfg,
            cache,
            stats,
            fault,
            pending: Vec::new(),
            groups: Vec::new(),
            groups_used: 0,
            refs_scratch: Vec::new(),
        }
    }

    pub(crate) fn run(mut self) {
        // recv errors (every sender gone) also end the loop.
        while let Ok(msg) = self.rx.recv() {
            let mut shutting = false;
            match msg {
                Msg::Shutdown => shutting = true,
                Msg::Request(r) => {
                    self.pending.push(Some(r));
                    // Batch window: drain whatever is queued right now, up
                    // to the configured cycle size; optionally linger to
                    // let concurrent clients top the window up.
                    let deadline = (self.cfg.batch_linger_us > 0).then(|| {
                        std::time::Instant::now()
                            + std::time::Duration::from_micros(self.cfg.batch_linger_us)
                    });
                    while self.pending.len() < self.cfg.max_queue {
                        match self.rx.try_recv() {
                            Ok(Msg::Request(r)) => self.pending.push(Some(r)),
                            Ok(Msg::Shutdown) => {
                                shutting = true;
                                break;
                            }
                            Err(_) => {
                                // Queue momentarily empty: park until the
                                // linger deadline for a late arrival (no
                                // spinning — producers get the CPU).
                                let Some(d) = deadline else { break };
                                let now = std::time::Instant::now();
                                if now >= d {
                                    break;
                                }
                                match self.rx.recv_timeout(d - now) {
                                    Ok(Msg::Request(r)) => self.pending.push(Some(r)),
                                    Ok(Msg::Shutdown) => {
                                        shutting = true;
                                        break;
                                    }
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    self.serve_pending();
                }
            }
            if shutting {
                // The gate guarantees Shutdown is the channel's final
                // message, but drain defensively before exiting.
                loop {
                    match self.rx.try_recv() {
                        Ok(Msg::Request(r)) => self.pending.push(Some(r)),
                        Ok(Msg::Shutdown) => {}
                        Err(_) => break,
                    }
                }
                self.serve_pending();
                break;
            }
        }
    }

    /// Serves everything drained this cycle: batchable requests grouped by
    /// model and chunked to `max_batch_rows`, the rest solo.
    fn serve_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Group batchable requests by model identity.
        for g in &mut self.groups {
            g.1.clear();
        }
        self.groups_used = 0;
        for i in 0..self.pending.len() {
            let r = self.pending[i].as_ref().expect("fresh this cycle");
            if r.x.rows() > self.cfg.batch_max_m {
                continue;
            }
            let id = r.model.id;
            match self.groups[..self.groups_used]
                .iter()
                .position(|(gid, _)| *gid == id)
            {
                Some(s) => self.groups[s].1.push(i),
                None => {
                    if self.groups_used < self.groups.len() {
                        self.groups[self.groups_used].0 = id;
                        self.groups[self.groups_used].1.push(i);
                    } else {
                        self.groups.push((id, vec![i]));
                    }
                    self.groups_used += 1;
                }
            }
        }

        // Serve each group in row-budgeted chunks.
        for g in 0..self.groups_used {
            // Move the index list out so `serve_chunk(&mut self)` can run;
            // restored below to keep its capacity for the next cycle.
            let idxs = std::mem::take(&mut self.groups[g].1);
            let mut start = 0;
            while start < idxs.len() {
                let mut rows = 0;
                let mut end = start;
                while end < idxs.len() {
                    let m = self.pending[idxs[end]].as_ref().expect("unserved").x.rows();
                    if end > start && rows + m > self.cfg.max_batch_rows {
                        break;
                    }
                    rows += m;
                    end += 1;
                    if rows >= self.cfg.max_batch_rows {
                        break;
                    }
                }
                self.serve_chunk(&idxs[start..end], rows);
                start = end;
            }
            self.groups[g].1 = idxs;
        }

        // Everything left (large-M, or models with batching disabled).
        for i in 0..self.pending.len() {
            if let Some(r) = self.pending[i].take() {
                self.serve_solo(r);
            }
        }
        self.pending.clear();
    }

    /// Serves a same-model chunk whose rows sum to `total_rows ≤
    /// max_batch_rows`: gather rows into the cached batch input, one fused
    /// (or sharded) execute, scatter back. A chunk of one skips the
    /// grouping bookkeeping via the solo path.
    fn serve_chunk(&mut self, idxs: &[usize], total_rows: usize) {
        debug_assert!(!idxs.is_empty());
        if idxs.len() == 1 {
            let r = self.pending[idxs[0]].take().expect("unserved");
            self.serve_solo(r);
            return;
        }
        let model = Arc::clone(&self.pending[idxs[0]].as_ref().expect("unserved").model);
        let capacity = self.cfg.max_batch_rows;
        let entry = match self.cache.get_or_create(&model, capacity, &self.stats) {
            Ok(e) => e,
            Err(err) => {
                for &i in idxs {
                    let r = self.pending[i].take().expect("unserved");
                    self.stats.served.fetch_add(1, Ordering::Relaxed);
                    r.slot.fill(Reply {
                        result: Err(err.clone()),
                        x: r.x,
                        y: r.y,
                        summary: None,
                    });
                }
                return;
            }
        };

        // Gather request rows into the staged batch input.
        let k = model.input_cols();
        let l = model.output_cols();
        {
            let (bx, _) = entry.batch_buffers();
            let mut off = 0;
            for &i in idxs {
                let r = self.pending[i].as_ref().expect("unserved");
                let m = r.x.rows();
                bx.as_mut_slice()[off * k..(off + m) * k].copy_from_slice(r.x.as_slice());
                off += m;
            }
            debug_assert_eq!(off, total_rows);
        }

        let refs = refs_of(&mut self.refs_scratch, model.factors());
        let (result, _, evict) =
            run_staged_batch(entry, &self.fault, &self.stats, refs, total_rows);

        // Scatter results back and reply with each request's prorated
        // share of the simulated sharded execution.
        let mut off = 0;
        for &i in idxs {
            let mut r = self.pending[i].take().expect("unserved");
            let m = r.x.rows();
            let mut summary = None;
            if result.is_ok() {
                r.y.as_mut_slice()
                    .copy_from_slice(&entry.batch_y().as_slice()[off * l..(off + m) * l]);
                summary = entry.shard_summary(m);
            }
            off += m;
            self.stats.served.fetch_add(1, Ordering::Relaxed);
            self.stats.batched_requests.fetch_add(1, Ordering::Relaxed);
            r.slot.fill(Reply {
                result: result.clone(),
                x: r.x,
                y: r.y,
                summary,
            });
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        if evict {
            self.cache.evict(model.shape_key, capacity);
        }
    }

    /// Serves one request on its own. On a local entry it executes
    /// directly from/to the request's buffers (no staging copies); on a
    /// sharded entry it stages through the batch buffers so the row count
    /// can zero-pad to a `GM` multiple. Small requests reuse the
    /// batch-capacity entry; large ones get power-of-two-capacity entries
    /// so nearby sizes share workspaces.
    fn serve_solo(&mut self, mut r: Request<T>) {
        let m = r.x.rows();
        let capacity = if m <= self.cfg.max_batch_rows {
            self.cfg.max_batch_rows
        } else {
            m.next_power_of_two()
        };
        let mut summary = None;
        let mut evict = false;
        let result = match self.cache.get_or_create(&r.model, capacity, &self.stats) {
            Ok(entry) => {
                let refs = refs_of(&mut self.refs_scratch, r.model.factors());
                if entry.is_sharded() {
                    let k = r.model.input_cols();
                    let l = r.model.output_cols();
                    {
                        let (bx, _) = entry.batch_buffers();
                        bx.as_mut_slice()[..m * k].copy_from_slice(r.x.as_slice());
                    }
                    let (result, s, ev) =
                        run_staged_batch(entry, &self.fault, &self.stats, refs, m);
                    if result.is_ok() {
                        r.y.as_mut_slice()
                            .copy_from_slice(&entry.batch_y().as_slice()[..m * l]);
                        summary = s;
                    }
                    evict = ev;
                    result
                } else {
                    entry.run_rows(&r.x, refs, &mut r.y, m)
                }
            }
            Err(err) => Err(err),
        };
        if evict {
            self.cache.evict(r.model.shape_key, capacity);
        }
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        self.stats.solo_requests.fetch_add(1, Ordering::Relaxed);
        r.slot.fill(Reply {
            result,
            x: r.x,
            y: r.y,
            summary,
        });
    }
}
