//! Time virtualization for the serving runtime.
//!
//! Every time-dependent runtime decision — deadline admission checks,
//! priority aging (queue age raises effective priority; see
//! [`crate::aged_priority`]), idle-timeout cache eviction, and the
//! batch-linger window — reads a [`Clock`] instead of
//! `std::time::Instant` directly. In production the clock is
//! [`Clock::real`] (monotonic microseconds since the clock was created);
//! in tests it is [`Clock::manual`], a counter that only moves when the
//! test calls [`ManualClock::advance_us`]. That makes scheduler behavior
//! that would otherwise race wall time — "this request's deadline already
//! passed", "this request has aged past that one's priority", "this cache
//! entry has been idle too long", "the linger window is still open" —
//! fully deterministic: the test decides when time passes, then observes
//! the exact consequence.
//!
//! The timeline is a plain `u64` of microseconds starting at zero.
//! Deadlines ([`crate::SubmitOptions::deadline_us`]) are absolute points
//! on this timeline; [`crate::Runtime::now_us`] reads the runtime's
//! current position so clients can form `now + budget` deadlines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A microsecond clock: real (monotonic) or manually advanced (tests).
///
/// Cheap to clone; manual clones share the same underlying counter, so a
/// test can keep one handle and advance the runtime's copy.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Monotonic wall time, measured from the moment the clock was
    /// created (`Instant`-backed, so it never goes backwards).
    Real(Instant),
    /// A shared counter that only moves when the owner advances it.
    Manual(Arc<ManualClock>),
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

impl Clock {
    /// A real monotonic clock starting at zero now.
    pub fn real() -> Self {
        Clock::Real(Instant::now())
    }

    /// A manually-advanced clock starting at zero. Keep a
    /// [`Self::manual_handle`] to advance it after handing the clock to a
    /// [`crate::RuntimeConfig`].
    pub fn manual() -> Self {
        Clock::Manual(Arc::new(ManualClock::default()))
    }

    /// The shared counter behind a manual clock (`None` for a real one).
    pub fn manual_handle(&self) -> Option<Arc<ManualClock>> {
        match self {
            Clock::Real(_) => None,
            Clock::Manual(m) => Some(Arc::clone(m)),
        }
    }

    /// Microseconds since the clock's origin.
    pub fn now_us(&self) -> u64 {
        match self {
            Clock::Real(epoch) => epoch.elapsed().as_micros() as u64,
            Clock::Manual(m) => m.now_us(),
        }
    }

    /// Whether time only moves when a test advances it (the scheduler's
    /// linger park polls instead of sleeping for the full window then).
    pub(crate) fn is_manual(&self) -> bool {
        matches!(self, Clock::Manual(_))
    }
}

/// The shared counter behind [`Clock::Manual`]. All reads and advances are
/// sequentially consistent, so an `advance_us` is visible to the scheduler
/// thread's very next `now_us` read.
#[derive(Debug, Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.us.load(Ordering::SeqCst)
    }

    /// Moves virtual time forward by `delta` microseconds.
    pub fn advance_us(&self, delta: u64) {
        self.us.fetch_add(delta, Ordering::SeqCst);
    }

    /// Jumps virtual time to an absolute position. Panics if that would
    /// move time backwards (the runtime assumes monotonicity, like
    /// `Instant`).
    pub fn set_us(&self, at: u64) {
        let prev = self.us.swap(at, Ordering::SeqCst);
        assert!(prev <= at, "manual clock moved backwards: {prev} -> {at}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let clock = Clock::manual();
        let handle = clock.manual_handle().unwrap();
        assert_eq!(clock.now_us(), 0);
        assert_eq!(clock.now_us(), 0);
        handle.advance_us(250);
        assert_eq!(clock.now_us(), 250);
        handle.set_us(1_000);
        assert_eq!(clock.now_us(), 1_000);
        // Clones share the counter.
        let other = clock.clone();
        handle.advance_us(1);
        assert_eq!(other.now_us(), 1_001);
        assert!(clock.is_manual());
    }

    #[test]
    fn real_clock_is_monotonic_and_has_no_handle() {
        let clock = Clock::real();
        assert!(clock.manual_handle().is_none());
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
        assert!(!clock.is_manual());
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_time_travel() {
        let clock = Clock::manual();
        let handle = clock.manual_handle().unwrap();
        handle.set_us(10);
        handle.set_us(5);
    }
}
