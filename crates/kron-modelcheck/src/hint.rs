//! Spin-loop hint: under the model a spin is a voluntary yield, so
//! busy-wait loops deprioritize instead of monopolizing the schedule.

/// Model counterpart of `std::hint::spin_loop`.
pub fn spin_loop() {
    crate::thread::yield_now();
}
