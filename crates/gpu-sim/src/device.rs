//! Device descriptions for the simulated GPUs.

use kron_core::DType;

/// Static description of one GPU model.
///
/// All bandwidth figures are bytes/second; all capacities bytes unless noted.
/// The V100 preset matches the paper's evaluation hardware (DGX-2, Tesla
/// V100-SXM3 32 GB, NVLink 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Threads per warp (and shared-memory banks — they coincide on every
    /// recent NVIDIA part).
    pub warp_size: usize,
    /// Number of shared-memory banks.
    pub shared_banks: usize,
    /// Width of one shared-memory bank word in bytes.
    pub bank_width_bytes: usize,
    /// Usable shared memory per SM.
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory one thread block may allocate.
    pub shared_mem_per_block: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Maximum registers one thread may use.
    pub max_registers_per_thread: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak single-precision throughput, FLOP/s.
    pub peak_flops_f32: f64,
    /// Peak double-precision throughput, FLOP/s.
    pub peak_flops_f64: f64,
    /// DRAM (HBM2) bandwidth, bytes/s.
    pub dram_bw: f64,
    /// Size of one DRAM access sector in bytes (coalescing granularity).
    pub dram_sector_bytes: usize,
    /// Total device memory.
    pub global_mem_bytes: usize,
    /// L2 cache size.
    pub l2_bytes: usize,
    /// Fixed host-side cost of one kernel launch, seconds.
    pub kernel_launch_overhead: f64,
    /// Aggregate NVLink egress bandwidth per GPU, bytes/s (6 links ×
    /// 25 GB/s on NVLink 2).
    pub nvlink_bw: f64,
    /// Per-message NVLink/NCCL latency, seconds.
    pub nvlink_latency: f64,
    /// Fraction of the resident-warp limit needed to reach peak issue rate;
    /// below this, throughput degrades linearly (latency hiding runs out).
    pub full_throughput_occupancy: f64,
}

impl DeviceSpec {
    /// Peak FLOP/s for the given element type.
    pub fn peak_flops(&self, dtype: DType) -> f64 {
        match dtype {
            DType::F32 => self.peak_flops_f32,
            DType::F64 => self.peak_flops_f64,
        }
    }

    /// Aggregate shared-memory throughput in bytes/s: every SM can service
    /// one conflict-free warp transaction (`banks × bank_width` bytes) per
    /// clock.
    pub fn shared_mem_bw(&self) -> f64 {
        self.sm_count as f64
            * (self.shared_banks * self.bank_width_bytes) as f64
            * self.clock_ghz
            * 1e9
    }

    /// Bytes moved by one conflict-free shared-memory transaction.
    pub fn shared_transaction_bytes(&self) -> usize {
        self.shared_banks * self.bank_width_bytes
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }
}

/// NVIDIA Tesla V100-SXM3 32 GB — the paper's GPU.
///
/// 15.7 TFLOPS f32 / 7.8 TFLOPS f64 and 900 GB/s HBM2 are the figures the
/// paper quotes in §6 ("Each Tesla V100 GPU contains 32 GB of global memory,
/// and provides 15.7 TFLOPS for float and 7.8 TFLOPS for double").
pub const V100: DeviceSpec = DeviceSpec {
    name: "Tesla V100-SXM3-32GB",
    sm_count: 80,
    warp_size: 32,
    shared_banks: 32,
    bank_width_bytes: 4,
    shared_mem_per_sm: 96 * 1024,
    shared_mem_per_block: 96 * 1024,
    registers_per_sm: 65536,
    max_registers_per_thread: 255,
    max_threads_per_sm: 2048,
    max_threads_per_block: 1024,
    max_blocks_per_sm: 32,
    clock_ghz: 1.53,
    peak_flops_f32: 15.7e12,
    peak_flops_f64: 7.8e12,
    dram_bw: 900e9,
    dram_sector_bytes: 32,
    global_mem_bytes: 32 * 1024 * 1024 * 1024,
    l2_bytes: 6 * 1024 * 1024,
    kernel_launch_overhead: 5e-6,
    nvlink_bw: 150e9,
    nvlink_latency: 5e-6,
    full_throughput_occupancy: 0.25,
};

/// NVIDIA A100-SXM4 40 GB — provided so users can explore a second target;
/// not used by the paper's experiments.
pub const A100: DeviceSpec = DeviceSpec {
    name: "A100-SXM4-40GB",
    sm_count: 108,
    warp_size: 32,
    shared_banks: 32,
    bank_width_bytes: 4,
    shared_mem_per_sm: 164 * 1024,
    shared_mem_per_block: 164 * 1024,
    registers_per_sm: 65536,
    max_registers_per_thread: 255,
    max_threads_per_sm: 2048,
    max_threads_per_block: 1024,
    max_blocks_per_sm: 32,
    clock_ghz: 1.41,
    peak_flops_f32: 19.5e12,
    peak_flops_f64: 9.7e12,
    dram_bw: 1555e9,
    dram_sector_bytes: 32,
    global_mem_bytes: 40 * 1024 * 1024 * 1024,
    l2_bytes: 40 * 1024 * 1024,
    kernel_launch_overhead: 5e-6,
    nvlink_bw: 300e9,
    nvlink_latency: 5e-6,
    full_throughput_occupancy: 0.25,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_figures() {
        assert_eq!(V100.peak_flops(DType::F32), 15.7e12);
        assert_eq!(V100.peak_flops(DType::F64), 7.8e12);
        assert_eq!(V100.sm_count, 80);
        assert_eq!(V100.warp_size, 32);
        assert_eq!(V100.global_mem_bytes, 32 << 30);
    }

    #[test]
    fn shared_bandwidth_scale() {
        // 80 SMs × 128 B/clock × 1.53 GHz ≈ 15.7 TB/s — an order of
        // magnitude above DRAM, as on real hardware.
        let bw = V100.shared_mem_bw();
        assert!(bw > 10.0 * V100.dram_bw, "shared bw {bw:e}");
        assert_eq!(V100.shared_transaction_bytes(), 128);
    }

    #[test]
    fn warp_limits() {
        assert_eq!(V100.max_warps_per_sm(), 64);
        assert_eq!(A100.max_warps_per_sm(), 64);
    }
}
