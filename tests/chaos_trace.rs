//! Chaos serve-trace suite: seed-derived mixed-dtype serving traces with
//! scripted device faults interleaved (see `kron_testkit::ChaosServePlan`)
//! must still satisfy the bit-exact serving contract on both backends —
//! transient faults are retried away (evict, rebuild, degrade) without
//! the client ever seeing an error or a changed bit.
//!
//! This is the self-healing analog of `tests/serve_trace.rs`: same
//! trace generator, same per-request planned-execution oracle, plus a
//! deterministic fault script firing mid-trace. The drill also asserts
//! the recovery was *accounted* (fired panics show up as retries and
//! recovered requests in the stats ledger) and that device faults stay
//! inert on the single-node backend.

use kron_testkit::{check_chaos_serve_plan, ChaosServePlan};
use proptest::prelude::*;

/// Seeds swept deterministically. Each drill is 48–80 mixed-dtype
/// requests over 4–8 models with 2–4 scripted faults (repeat 1–2).
const SEEDS: u64 = 4;

#[test]
fn chaos_traces_recover_transparently() {
    for seed in 0..SEEDS {
        check_chaos_serve_plan(&ChaosServePlan::deterministic(seed)).unwrap();
    }
}

/// A pinned larger drill, kept stable as a regression anchor — and the
/// place the acceptance bar is nailed down: this seed's script is known
/// to fire on the 4-GPU backend, so recovery must be visible (retries
/// and recovered requests both nonzero), not just survivable.
#[test]
fn pinned_chaos_trace_regression() {
    let outcome = check_chaos_serve_plan(&ChaosServePlan::deterministic(0xC0FFEE)).unwrap();
    assert!(outcome.fired >= 1, "outcome: {outcome:?}");
    assert!(outcome.retries >= 1, "outcome: {outcome:?}");
    assert!(outcome.recovered_requests >= 1, "outcome: {outcome:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Randomized seeds on top of the deterministic sweep: any seed's
    // drill must recover transparently (every request Ok and bit-exact
    // through both backends, fired panics accounted as retries).
    #[test]
    fn any_seed_chaos_trace_recovers(seed in 0u64..1_000_000) {
        if let Err(msg) = check_chaos_serve_plan(&ChaosServePlan::deterministic(seed)) {
            prop_assert!(false, "{}", msg);
        }
    }
}
