//! # fastkron-core
//!
//! The paper's contribution: Kron-Matmul by *sliced multiplication*
//! (Algorithm 1), a tiled kernel with shift caching (§4.1), fusion of
//! consecutive sliced multiplications in shared memory (§4.2), and an
//! autotuner over tile sizes (§4.3).
//!
//! Four execution layers are provided:
//!
//! * [`exec`] — **the production path**: fused sliced-multiply execution
//!   with zero intermediate allocations and no transpose pass. A
//!   [`exec::Workspace`] holds two ping-pong buffers sized once from
//!   [`kron_core::KronProblem::max_intermediate_elems`]; each factor step
//!   runs a register-blocked microkernel (packed slice panels, `RK×RQ`
//!   `mul_add` accumulator tile) whose epilogue scatters results directly
//!   to output column `q·K/P + slice` ([`exec::fused_output_col`]) — the
//!   memory shuffle the shuffle algorithm pays for never happens. Row
//!   tiles run in parallel, each threading its *entire* factor chain
//!   through its own disjoint slice of the workspace.
//! * [`algorithm`] — the straightforward per-step functional reference for
//!   a single sliced multiply ([`algorithm::sliced_multiply`]); the full
//!   chain ([`algorithm::kron_matmul_fastkron`]) now runs on the fused
//!   [`exec`] path.
//! * [`kernel`] / [`fused`] — thread-block-accurate emulation of the CUDA
//!   kernels, usable both functionally (tests) and in address-only trace
//!   mode (performance counters). The kernel epilogue and [`exec`] share
//!   one output-column map, so the layers cannot drift apart.
//! * [`engine`] — the public planned API: [`FastKron::plan`] autotunes tile
//!   sizes for a problem on a device, [`KronPlan::execute`] computes (on
//!   the fused path), and [`KronPlan::simulate`] produces a simulated-time
//!   [`gpu_sim::ExecReport`].

#![deny(missing_docs)]

pub mod algorithm;
pub mod engine;
pub mod exec;
pub mod fused;
pub mod kernel;
pub mod tile;
pub mod tuner;

pub use engine::{FastKron, KronPlan, PlanStage};
pub use exec::{kron_matmul_fused, sliced_multiply_rows_into, PackPanel, Workspace};
pub use tile::{Caching, TileConfig};
pub use tuner::{AutoTuner, Constraints, TuneOutcome, TuneReport};
