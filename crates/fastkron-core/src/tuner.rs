//! Autotuning of tile-size parameters (§4.3).
//!
//! For a Kron-Matmul shape, the tuner enumerates the paper's candidate
//! sets — `TK` over multiples of `P`, `TP`/`TQ` over factors of `P`/`Q`,
//! even `TM`, and register tiles `RP | TP`, `RQ | TQ`, `RK | TK/P` — prunes
//! them by shared-memory and register capacity, and scores each survivor
//! with the cost model. Where the paper compiles ~10 000 CUDA kernels in
//! parallel and times them (<2 min), we score each candidate analytically
//! in microseconds: FLOPs and DRAM sectors have closed forms, and
//! bank-conflict factors are measured exactly by synthesizing one
//! representative warp instruction per access pattern and replaying it
//! through the [`Tracer`].

use crate::kernel::shared_col;
use crate::tile::{max_fused, Caching, TileConfig};
use gpu_sim::cost::CostModel;
use gpu_sim::device::DeviceSpec;
use gpu_sim::trace::{Dir, Tracer};
use gpu_sim::KernelStats;
use kron_core::{DType, KronError, Result};

/// Statistics of one tuning run (the §6.1 "autotuning time" quantities).
#[derive(Debug, Clone, Default)]
pub struct TuneReport {
    /// Candidates enumerated before resource pruning.
    pub generated: usize,
    /// Candidates that fit the device and were scored.
    pub scored: usize,
    /// Wall-clock seconds the tuner itself took (host time, not simulated).
    pub tuning_seconds: f64,
}

/// Result of tuning one iteration shape.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winning configuration.
    pub config: TileConfig,
    /// Fused multiplication depth the winner supports (1 = unfused).
    pub nfused: usize,
    /// Estimated simulated seconds per launch of the winner.
    pub est_seconds: f64,
    /// Enumeration statistics.
    pub report: TuneReport,
}

/// External constraints on the tuning search, used to model rival systems'
/// fixed design choices.
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// Shared-memory addressing scheme every candidate must use.
    pub caching: Caching,
    /// Fixed `TP` (e.g. `Some(P)` = stage the whole factor like COGENT).
    pub tp: Option<usize>,
    /// Fixed `RK` (e.g. `Some(1)` = one slice per thread like COGENT).
    pub rk: Option<usize>,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            caching: Caching::Shift,
            tp: None,
            rk: None,
        }
    }
}

/// Tile-size autotuner for a device.
#[derive(Debug, Clone)]
pub struct AutoTuner {
    cost: CostModel,
    /// Upper bound on `TK` candidates examined per shape (guards problem
    /// shapes whose `K/P` has very many divisors).
    pub max_tk_candidates: usize,
}

/// Returns the divisors of `n` in ascending order.
fn divisors(n: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

impl AutoTuner {
    /// Builds a tuner for `device`.
    pub fn new(device: &DeviceSpec) -> Self {
        AutoTuner {
            cost: CostModel::new(device),
            max_tk_candidates: 24,
        }
    }

    /// The cost model used for scoring.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Tunes the unfused sliced-multiply kernel for one iteration shape.
    ///
    /// # Errors
    /// [`KronError::InvalidTileConfig`] if no candidate fits the device.
    pub fn tune(
        &self,
        m: usize,
        k: usize,
        p: usize,
        q: usize,
        dtype: DType,
    ) -> Result<TuneOutcome> {
        self.search(m, k, p, q, dtype, false, 1, Constraints::default())
    }

    /// Tunes the unfused kernel under external [`Constraints`] — used by
    /// the baseline models to reproduce rival systems' caching strategies
    /// (e.g. COGENT's direct caching with a whole slice per thread).
    ///
    /// # Errors
    /// [`KronError::InvalidTileConfig`] if no candidate satisfies the
    /// constraints on the device.
    pub fn tune_constrained(
        &self,
        m: usize,
        k: usize,
        p: usize,
        q: usize,
        dtype: DType,
        constraints: Constraints,
    ) -> Result<TuneOutcome> {
        self.search(m, k, p, q, dtype, false, 1, constraints)
    }

    /// Tunes the fused kernel (`TP = P`, `TQ = Q`) chaining up to
    /// `remaining` square factors. Returns the best config and its fusion
    /// depth.
    ///
    /// # Errors
    /// [`KronError::InvalidTileConfig`] if fusion is impossible for the
    /// shape (e.g. no `TK ≥ P²` fits in shared memory).
    pub fn tune_fused(
        &self,
        m: usize,
        k: usize,
        p: usize,
        remaining: usize,
        dtype: DType,
    ) -> Result<TuneOutcome> {
        self.search(m, k, p, p, dtype, true, remaining, Constraints::default())
    }

    fn tk_candidates(&self, k: usize, p: usize, fused: bool) -> Vec<usize> {
        let s = k / p;
        let mut out: Vec<usize> = divisors(s)
            .into_iter()
            .map(|d| d * p)
            .filter(|&tk| !fused || tk >= p * p || tk == k)
            .collect();
        if out.len() > self.max_tk_candidates {
            // Keep a spread: prefer the largest candidates (higher reuse)
            // plus a few small ones.
            let keep_small = self.max_tk_candidates / 4;
            let keep_large = self.max_tk_candidates - keep_small;
            let small: Vec<usize> = out.iter().copied().take(keep_small).collect();
            let large: Vec<usize> = out.iter().copied().skip(out.len() - keep_large).collect();
            out = small;
            out.extend(large);
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        m: usize,
        k: usize,
        p: usize,
        q: usize,
        dtype: DType,
        fused: bool,
        remaining: usize,
        constraints: Constraints,
    ) -> Result<TuneOutcome> {
        let start = std::time::Instant::now();
        let device = self.cost.device().clone();
        let mut report = TuneReport::default();
        let mut best: Option<(f64, TileConfig, usize)> = None;

        let tm_candidates: Vec<usize> = [1usize, 2, 4, 8, 16]
            .into_iter()
            .filter(|&tm| tm <= m)
            .collect();
        let tp_candidates: Vec<usize> = match (fused, constraints.tp) {
            (true, _) => vec![p],
            (false, Some(tp)) if p.is_multiple_of(tp) => vec![tp],
            (false, Some(_)) => vec![],
            (false, None) => divisors(p),
        };
        let tq_candidates: Vec<usize> = if fused { vec![q] } else { divisors(q) };
        let caching = constraints.caching;

        for &tk in &self.tk_candidates(k, p, fused) {
            let slices = tk / p;
            for &tp in &tp_candidates {
                for &tq in &tq_candidates {
                    for &tm in &tm_candidates {
                        let rk_candidates: Vec<usize> = match constraints.rk {
                            Some(rk) if slices.is_multiple_of(rk) => vec![rk],
                            Some(_) => vec![],
                            None => divisors(slices).into_iter().filter(|&r| r <= 8).collect(),
                        };
                        for rk in rk_candidates {
                            for rq in divisors(tq).into_iter().filter(|&r| r <= 8) {
                                for rp in divisors(tp).into_iter().filter(|&r| r <= 8) {
                                    report.generated += 1;
                                    let cfg = TileConfig {
                                        tm,
                                        tk,
                                        tq,
                                        tp,
                                        rk,
                                        rq,
                                        rp,
                                        caching,
                                    };
                                    if cfg.validate(m, k, p, q).is_err() {
                                        continue;
                                    }
                                    let threads = cfg.threads(p);
                                    if threads == 0 || threads > device.max_threads_per_block {
                                        continue;
                                    }
                                    let launch = if fused {
                                        cfg.launch_fused(m, k, p, dtype)
                                    } else {
                                        cfg.launch(m, k, p, q, dtype)
                                    };
                                    if self.cost.occupancy(&launch).is_err() {
                                        continue;
                                    }
                                    // Fusion depth is itself a tuning knob:
                                    // deeper fusion saves DRAM round trips
                                    // but shortens the contiguous output
                                    // runs (scattered stores) — cf. paper
                                    // Figure 6 choosing Nfused = 2 of a
                                    // possible 3.
                                    let nf_max = if fused {
                                        max_fused(tk, p, remaining)
                                    } else {
                                        1
                                    };
                                    for nf in 1..=nf_max {
                                        report.scored += 1;
                                        let stats =
                                            estimate_stats(&cfg, &device, m, k, p, q, dtype, nf);
                                        let Ok(t) = self.cost.kernel_time(&launch, &stats, dtype)
                                        else {
                                            continue;
                                        };
                                        // Compare per-factor cost so deeper
                                        // fusion is rewarded proportionally.
                                        let per_factor = t.total_s / nf as f64;
                                        if best.is_none_or(|(b, _, _)| per_factor < b) {
                                            best = Some((per_factor, cfg, nf));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        report.tuning_seconds = start.elapsed().as_secs_f64();
        let (per_factor, config, nfused) = best.ok_or_else(|| KronError::InvalidTileConfig {
            reason: format!(
                "no tile configuration fits {} for shape M={m}, K={k}, F={p}×{q}{}",
                device.name,
                if fused { " (fused)" } else { "" }
            ),
        })?;
        Ok(TuneOutcome {
            config,
            nfused,
            est_seconds: per_factor * nfused as f64,
            report,
        })
    }
}

/// Closed-form launch statistics for a candidate configuration.
///
/// FLOPs and global-memory traffic have exact expressions; shared-memory
/// transaction counts multiply exact instruction counts by bank-conflict
/// factors measured from one synthesized warp instruction per access
/// pattern. `nfused > 1` describes the fused kernel.
#[allow(clippy::too_many_arguments)]
pub fn estimate_stats(
    cfg: &TileConfig,
    device: &DeviceSpec,
    m: usize,
    k: usize,
    p: usize,
    q: usize,
    dtype: DType,
    nfused: usize,
) -> KernelStats {
    let e = dtype.bytes();
    let words = e.div_ceil(device.bank_width_bytes) as u64;
    let slices = cfg.tk / p;
    let sg = slices / cfg.rk;
    let bdim = cfg.threads(p);
    let warps = bdim.div_ceil(32) as u64;
    let (gx, gy, gz) = cfg.grid(m, k, q);
    let blocks = if nfused > 1 { gx * gy } else { gx * gy * gz } as u64;

    // --- Synthesized conflict factors (transactions per instruction). ---
    let mut scratch = Tracer::new(device);
    let lanes = bdim.min(32);
    // GToS store pattern: lane l stages element l of the staging tile.
    let gtos: Vec<usize> = (0..lanes.min(slices * cfg.tp))
        .map(|l| shared_col(cfg.caching, l / cfg.tp, l % cfg.tp, cfg.tp, cfg.rk) * e)
        .collect();
    let cf_gtos = scratch.shared_access(Dir::Store, &gtos, e).max(1) as f64 / words as f64;
    // SToR X-load pattern: lane l reads element 0 of its first slice.
    let stor_x: Vec<usize> = (0..lanes)
        .map(|l| shared_col(cfg.caching, (l % sg) * cfg.rk, 0, cfg.tp, cfg.rk) * e)
        .collect();
    let cf_stor_x = scratch.shared_access(Dir::Load, &stor_x, e).max(1) as f64 / words as f64;
    // SToR F-load pattern: lane l reads column yq of factor row 0
    // (broadcast across the slice-group dimension).
    let stor_f: Vec<usize> = (0..lanes).map(|l| ((l / sg) * cfg.rq) * e).collect();
    let cf_stor_f = scratch.shared_access(Dir::Load, &stor_f, e).max(1) as f64 / words as f64;

    // --- Instruction counts. ---
    let tiles = (p / cfg.tp) as u64;
    let steps = (cfg.tp / cfg.rp) as u64;
    let multiplies = nfused as u64;

    let gtos_instr =
        multiplies * blocks * tiles * (cfg.tm as u64) * (slices * cfg.tp).div_ceil(32) as u64;
    let f_stage_instr = multiplies * blocks * tiles * (cfg.tp * cfg.tq).div_ceil(32) as u64;
    let stor_x_instr =
        multiplies * blocks * tiles * steps * warps * (cfg.tm * cfg.rk * cfg.rp) as u64;
    let stor_f_instr = multiplies * blocks * tiles * steps * warps * (cfg.rp * cfg.rq) as u64;

    let smem_store = ((gtos_instr + f_stage_instr) as f64 * cf_gtos * words as f64) as u64;
    let smem_load =
        ((stor_x_instr as f64 * cf_stor_x + stor_f_instr as f64 * cf_stor_f) * words as f64) as u64;
    // The fused kernel additionally writes each intermediate back to shared
    // memory once per multiply and re-reads it in the epilogue.
    let fused_extra = if nfused > 1 {
        multiplies * blocks * (cfg.tm * cfg.tk) as u64 * words / 32
    } else {
        0
    };

    // --- Global traffic. ---
    // X is loaded once per block (per q-slab for the unfused kernel); the
    // slice-interior segments are `TP·e` bytes, so short tiles waste sector
    // bytes unless whole slices are contiguous (P·e ≥ sector).
    let seg_bytes = cfg.tp * e;
    let load_waste = if p * e >= device.dram_sector_bytes && seg_bytes < device.dram_sector_bytes {
        device.dram_sector_bytes as f64 / seg_bytes as f64
    } else {
        1.0
    };
    let x_bytes = (blocks * (cfg.tm * cfg.tk) as u64) as f64 * e as f64;
    let f_bytes = (multiplies * blocks * (p * cfg.tq) as u64 * e as u64) as f64;
    // Output: one store per element per group (the fused kernel's whole
    // point is `multiplies` multiplications per single store pass).
    let out_cols = if nfused > 1 { cfg.tk } else { slices * cfg.tq };
    let store_bytes = (blocks * (cfg.tm * out_cols) as u64) as f64 * e as f64;

    // Fused stores scatter into contiguous runs of TK/P^Nfused elements;
    // runs shorter than a sector waste store bandwidth proportionally.
    let store_waste = if nfused > 1 {
        let run_bytes = (cfg.tk / p.pow(nfused as u32)).max(1) * e;
        (device.dram_sector_bytes as f64 / run_bytes as f64).max(1.0)
    } else {
        1.0
    };

    let sector = device.dram_sector_bytes as f64;
    KernelStats {
        flops: 2
            * multiplies
            * blocks
            * (cfg.tm * cfg.tk * if nfused > 1 { q } else { cfg.tq }) as u64,
        smem_load_transactions: smem_load + fused_extra,
        smem_store_transactions: smem_store + fused_extra,
        smem_load_ideal: (stor_x_instr + stor_f_instr) * words + fused_extra,
        smem_store_ideal: (gtos_instr + f_stage_instr) * words + fused_extra,
        gmem_load_sectors: ((x_bytes * load_waste + f_bytes) / sector) as u64,
        gmem_store_sectors: (store_bytes * store_waste / sector) as u64,
        gmem_useful_bytes: (x_bytes + f_bytes + store_bytes) as u64,
        barriers: multiplies * tiles * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SlicedMultiplyKernel;
    use gpu_sim::device::V100;
    use kron_core::Matrix;

    #[test]
    fn divisors_basic() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(64), vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(divisors(17), vec![1, 17]);
    }

    #[test]
    fn tune_returns_valid_config() {
        let tuner = AutoTuner::new(&V100);
        for &(m, p, n) in &[(1024usize, 8usize, 5usize), (16, 64, 3), (20, 9, 3)] {
            let k = p.pow(n as u32);
            let out = tuner.tune(m, k, p, p, DType::F32).unwrap();
            out.config
                .validate(m, k, p, p)
                .unwrap_or_else(|e| panic!("tuned cfg invalid for M={m} {p}^{n}: {e}"));
            assert!(out.report.scored > 10, "scored {}", out.report.scored);
            assert!(out.est_seconds > 0.0);
        }
    }

    #[test]
    fn tune_beats_minimal_config() {
        let tuner = AutoTuner::new(&V100);
        let (m, p, n) = (1024usize, 16usize, 4u32);
        let k = p.pow(n);
        let tuned = tuner.tune(m, k, p, p, DType::F32).unwrap();
        let minimal = TileConfig::minimal(m, k, p, p);
        let launch = minimal.launch(m, k, p, p, DType::F32);
        let stats = estimate_stats(&minimal, &V100, m, k, p, p, DType::F32, 1);
        let t_min = tuner
            .cost
            .kernel_time(&launch, &stats, DType::F32)
            .unwrap()
            .total_s;
        assert!(
            tuned.est_seconds < t_min,
            "tuned {} vs minimal {t_min}",
            tuned.est_seconds
        );
    }

    #[test]
    fn fused_tuning_uses_depth_for_small_p() {
        let tuner = AutoTuner::new(&V100);
        let k = 8usize.pow(5);
        let out = tuner.tune_fused(1024, k, 8, 5, DType::F32).unwrap();
        assert!(
            out.nfused >= 2,
            "expected fusion depth ≥ 2, got {}",
            out.nfused
        );
        assert_eq!(out.config.tp, 8);
        assert_eq!(out.config.tq, 8);
    }

    #[test]
    fn tuner_respects_shared_memory_for_large_p() {
        // P = 128 f64: a full factor tile is 128·128·8 = 128 KiB > 96 KiB,
        // so TP must be a proper divisor — the tuner must still succeed.
        let tuner = AutoTuner::new(&V100);
        let k = 128usize.pow(2);
        let out = tuner.tune(16, k, 128, 128, DType::F64).unwrap();
        let launch = out.config.launch(16, k, 128, 128, DType::F64);
        assert!(launch.shared_mem_per_block <= V100.shared_mem_per_block);
    }

    #[test]
    fn estimate_matches_trace_for_flops_and_stores() {
        // The closed-form estimator and the traced kernel must agree
        // exactly on FLOPs and global stores, and within a small factor on
        // shared transactions (the estimator uses one representative
        // instruction per pattern).
        let m = 2;
        let k = 512;
        let f = Matrix::<f32>::from_fn(8, 8, |_, _| 1.0);
        let cfg = TileConfig {
            tm: 1,
            tk: 512,
            tq: 2,
            tp: 4,
            rk: 2,
            rq: 2,
            rp: 2,
            caching: Caching::Shift,
        };
        let est = estimate_stats(&cfg, &V100, m, k, 8, 8, DType::F32, 1);
        let kern = SlicedMultiplyKernel::new(cfg, m, k, &f).unwrap();
        let mut tracer = Tracer::new(&V100);
        let per_block = kern.trace_block(&mut tracer);
        let (gx, gy, gz) = cfg.grid(m, k, 8);
        let traced = per_block.scaled((gx * gy * gz) as u64);
        assert_eq!(est.flops, traced.flops, "flops");
        assert_eq!(est.gmem_store_sectors, traced.gmem_store_sectors, "stores");
        let ratio = est.smem_load_transactions as f64 / traced.smem_load_transactions as f64;
        assert!((0.3..=3.0).contains(&ratio), "smem load ratio {ratio}");
    }

    #[test]
    fn shift_scores_better_than_direct_for_small_tp() {
        // With TP = 4 the direct layout serializes; the estimator must see
        // it through the synthesized patterns.
        // rk·tp = 32 words: the direct layout sends every lane to one
        // bank (32-way conflicts); shift bounds it at ⌈32/TP⌉ = 4.
        let base = TileConfig {
            tm: 1,
            tk: 2048,
            tq: 8,
            tp: 8,
            rk: 4,
            rq: 2,
            rp: 2,
            caching: Caching::Shift,
        };
        let direct = TileConfig {
            caching: Caching::Direct,
            ..base
        };
        let s = estimate_stats(&base, &V100, 1024, 4096, 8, 8, DType::F32, 1);
        let d = estimate_stats(&direct, &V100, 1024, 4096, 8, 8, DType::F32, 1);
        assert!(
            d.smem_load_transactions > 2 * s.smem_load_transactions,
            "direct {} vs shift {}",
            d.smem_load_transactions,
            s.smem_load_transactions
        );
    }

    #[test]
    fn no_fit_is_an_error() {
        // A degenerate device with 1 byte of shared memory cannot host any
        // candidate.
        let mut tiny = V100.clone();
        tiny.shared_mem_per_block = 1;
        tiny.shared_mem_per_sm = 1;
        let tuner = AutoTuner::new(&tiny);
        assert!(tuner.tune(4, 64, 8, 8, DType::F32).is_err());
    }

    #[test]
    fn tuning_is_fast() {
        // §6.1 analog: tuning one shape must take far less than the
        // paper's 2-minute budget — we require under 2 s.
        let tuner = AutoTuner::new(&V100);
        let out = tuner
            .tune(1024, 16usize.pow(5), 16, 16, DType::F32)
            .unwrap();
        assert!(
            out.report.tuning_seconds < 2.0,
            "{}",
            out.report.tuning_seconds
        );
    }
}
