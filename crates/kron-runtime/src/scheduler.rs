//! The scheduler service threads: each lane drains its own lock-free
//! request ring under an adaptive linger window, sheds requests whose
//! deadline already passed, orders the remainder by aged priority and
//! deadline **across both dtypes**, and executes batches/solos through
//! the shared bounded plan cache.
//!
//! ## Sharded lanes, erased queues, typed halves
//!
//! The runtime spawns one [`Scheduler`] thread per configured lane
//! ([`crate::RuntimeConfig::scheduler_lanes`]); requests hash to a lane
//! by plan identity ([`crate::cache::lane_of`]), so one model's traffic
//! — including its whole batch window — always lands on one lane, and a
//! hot model cannot starve its siblings. Idle lanes **steal** queued
//! work from the deepest sibling ring (half the visible depth) before
//! parking, which keeps every lane busy under a skewed model mix; with
//! `scheduler_lanes == 1` (the default) the loop degenerates to the
//! classic single-scheduler blocking drain with one global service
//! order.
//!
//! Within a lane, [`ErasedRequest`]s coming off the ring are unwrapped
//! into two fully-typed [`TypedLane`]s (`f32`, `f64`), each owning its
//! own gather/scatter scratch — so batch staging, the fused execute, and
//! result scatter never see an erased value, and the enum round-trip is
//! a move, not an allocation. What *is* shared is the admission
//! pipeline: one deadline check, one priority order per window, one
//! serve-sequence counter, one plan cache — each lane interleaves `f32`
//! and `f64` work strictly by its window order, not dtype by dtype.
//!
//! ## Service order within a window
//!
//! Model groups (and then solos) drain ordered by, in turn:
//!
//! 1. **Aged priority**, descending — [`aged_priority`]: the static
//!    [`crate::SubmitOptions::priority`] plus one step per
//!    [`crate::RuntimeConfig::priority_aging_us`] of queue age, so a
//!    starving low-priority group eventually outranks fresh high-priority
//!    traffic (strict ordering cannot starve).
//! 2. **Tightest deadline first** — a group's earliest member deadline;
//!    deadline-less work sorts last within its priority level. Deadlines
//!    thus shape the *order* of service, not only the shedding of
//!    already-expired requests.
//! 3. **Arrival order** — the global (cross-dtype) arrival number breaks
//!    remaining ties deterministically.
//!
//! All scratch state (the lanes' `pending`/grouping/ref-slice buffers and
//! the global ordering buffers) is owned and reused across cycles, so a
//! warmed scheduler serves requests without allocating — the other half
//! of the crate's zero-allocation steady-state contract (the first half
//! being the plan cache's reused workspaces and batch buffers). The
//! in-cycle sorts are `sort_unstable` (in-place) for the same reason.
//!
//! Every time-dependent decision — the linger window, deadline admission,
//! priority aging, the cache's idle sweep — reads the runtime's
//! [`Clock`], so a manual clock makes the whole scheduling pipeline
//! deterministic for tests.

use crate::cache::{CachedPlan, PlanCache};
use crate::clock::Clock;
use crate::fault::{FaultKind, FaultPlane};
use crate::health::DeviceHealth;
use crate::metrics::{MetricsHub, Outcome};
use crate::runtime::sealed::ErasedDtype;
use crate::runtime::{
    ErasedRequest, LaneHandle, Msg, Reply, Request, RetryPolicy, RuntimeConfig, StatsInner,
};
use crate::trace::{ServeEventKind, StageTimings};
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use crossbeam::sync::atomic::{AtomicBool, Ordering};
use kron_core::{DType, Element, KronError, Matrix};
use std::cmp::Reverse;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often a lingering scheduler re-reads a **manual** clock while
/// parked on the request channel. Virtual time only moves when the test
/// advances it, so the park polls at this real-time interval instead of
/// sleeping out the window; the interval affects only wall-clock test
/// latency, never which requests share a window.
const MANUAL_POLL: Duration = Duration::from_micros(200);

/// How long an idle lane on the sharded layout (`scheduler_lanes > 1`)
/// parks on its own ring between steal checks. Short enough that a
/// backlogged sibling is relieved promptly; long enough that an idle
/// fleet of lanes costs a handful of wakeups per millisecond, not a
/// spin. Local traffic wakes the lane immediately regardless (the park
/// is a real condvar wait).
const STEAL_POLL: Duration = Duration::from_micros(500);

/// Saturation depth for the adaptive linger, in x16 fixed point: once the
/// smoothed per-cycle queue depth reaches 9 requests (1 + 8), the linger
/// sits at its cap.
const LINGER_SAT_X16: u64 = 8 * 16;

/// The load-adaptive linger window: how long the scheduler should hold a
/// batch window open, given the cap (`batch_linger_us`) and the smoothed
/// per-cycle queue depth in x16 fixed point (`16` = one request per
/// cycle).
///
/// A depth of one request per cycle means traffic is sequential —
/// lingering cannot coalesce anything, so the window collapses to zero
/// and solo latency stays minimal. As the smoothed depth grows past one,
/// the window opens proportionally, reaching the full cap at a depth of
/// nine (`1 + 8`) — by then the queue is deep enough that trading linger
/// latency for batch occupancy always pays. Monotone in the depth, never
/// exceeds the cap, and `cap == 0` disables lingering entirely.
pub fn adaptive_linger_us(cap_us: u64, ewma_depth_x16: u64) -> u64 {
    let above_one = ewma_depth_x16.saturating_sub(16);
    if above_one == 0 {
        return 0;
    }
    cap_us * above_one.min(LINGER_SAT_X16) / LINGER_SAT_X16
}

/// The effective service priority of a request that has waited
/// `queued_us` on the queue: its static priority plus one step per
/// `step_us` of age (`step_us == 0` disables aging). Uncapped and
/// strictly monotone in the age, so **any** request eventually outranks
/// **any** static priority — the anti-starvation guarantee. Requests that
/// entered the queue together age together, so aging never reorders a
/// burst; it only lifts long-waiting stragglers.
///
/// A pure function of clock arithmetic — the deterministic admission
/// tests pin service order by advancing a manual clock between submits.
pub fn aged_priority(priority: u8, queued_us: u64, step_us: u64) -> u64 {
    let boost = queued_us.checked_div(step_us).unwrap_or(0);
    priority as u64 + boost
}

/// One schedulable unit in the global (cross-dtype) service order: a
/// model group or a solo request, identified by `(dtype, idx)` into the
/// owning lane.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    /// Aged priority (higher first).
    prio: u64,
    /// Earliest member deadline (`u64::MAX` when none) — tighter first.
    deadline: u64,
    /// Global arrival number of the earliest member — FIFO tie-break.
    arrival: u64,
    /// Which lane owns the work.
    dtype: DType,
    /// Group index (group phase) or pending index (solo phase) in that
    /// lane.
    idx: usize,
}

/// Sort key: aged priority descending, then tightest deadline, then
/// arrival.
fn work_key(w: &WorkItem) -> (Reverse<u64>, u64, u64) {
    (Reverse(w.prio), w.deadline, w.arrival)
}

/// One batchable model group within a lane's window.
struct Group {
    /// Model id the group batches against.
    model: u64,
    /// Max aged priority across members.
    prio: u64,
    /// Min deadline across members (`u64::MAX` when none carry one).
    deadline: u64,
    /// Global arrival number of the first member.
    arrival: u64,
    /// Pending indices of the members, in arrival order.
    idxs: Vec<usize>,
}

/// The device a device-fault error blames, or `None` for every other
/// error. Exactly the errors that evict the entry and feed the breaker:
/// a device that panicked mid-batch or stalled past the watchdog.
fn faulted_device(err: &KronError) -> Option<usize> {
    match err {
        KronError::DeviceFailure { gpu, .. } | KronError::DeviceTimeout { gpu, .. } => Some(*gpu),
        _ => None,
    }
}

/// Consumes the next due scripted device fault (if any) and arms it on
/// the entry about to execute: a `Panic` arms the engine's one-shot
/// device panic, a `Stall` arms a device stall the engine's watchdog
/// bounds into [`KronError::DeviceTimeout`]. Local entries never consult
/// the plane — they have no devices, so device events stay pending (and
/// the sharded-batch counter does not advance), exactly as on a
/// single-node runtime. Also used by the `pin_model` pre-warm, which
/// executes outside the scheduler.
pub(crate) fn arm_scripted_fault<T: Element>(
    entry: &mut CachedPlan<T>,
    plane: &FaultPlane,
    now_us: u64,
) {
    if !entry.is_sharded() {
        return;
    }
    let gpus = entry.grid().map_or(0, |g| g.gpus());
    if let Some((gpu, kind)) = plane.next_device_fault(now_us, gpus) {
        match kind {
            FaultKind::Panic => {
                entry.arm_fault(gpu);
            }
            FaultKind::Stall { stall_us } => {
                entry.arm_stall(gpu, stall_us);
            }
            FaultKind::SchedulerPanic => unreachable!("filtered by next_device_fault"),
        }
    }
}

/// The device limit the `attempt`-th execute of a batch may span: the
/// first try and first retry run at the configured width (a transient
/// fault usually clears on a fresh engine), later retries halve toward
/// the single-device fallback when degradation is enabled — and the
/// breaker's `allowed` quarantine limit caps every rung.
fn attempt_limit(retry: &RetryPolicy, configured: usize, attempt: u32, allowed: usize) -> usize {
    let ladder = if retry.degrade && attempt >= 2 {
        configured.checked_shr(attempt - 1).unwrap_or(0).max(1)
    } else {
        configured
    };
    ladder.min(allowed).max(1)
}

/// Sleeps until `at_us` on the runtime's clock — the retry backoff. A
/// real clock sleeps out the remaining wall time; a manual clock polls
/// (virtual time only moves when the test advances it).
fn wait_until(clock: &Clock, at_us: u64) {
    loop {
        let now = clock.now_us();
        if now >= at_us {
            return;
        }
        if clock.is_manual() {
            std::thread::sleep(MANUAL_POLL);
        } else {
            std::thread::sleep(Duration::from_micros(at_us - now));
        }
    }
}

/// Everything one execute (and its retries) needs from the scheduler,
/// projected out of its fields so a `&mut` lane can serve while the
/// context borrows the shared state. The runtime handle constructs one
/// too (fields are crate-visible) when it serves a request inline on
/// the bypass lane via [`try_bypass`].
pub(crate) struct ServeCtx<'a> {
    pub(crate) cache: &'a Mutex<PlanCache>,
    pub(crate) stats: &'a StatsInner,
    pub(crate) plane: &'a FaultPlane,
    pub(crate) health: &'a DeviceHealth,
    pub(crate) clock: &'a Clock,
    /// Metrics hub: stage histograms, registries, and the flight
    /// recorder. Every reply flows through [`ServeCtx::finish`], which
    /// records into it.
    pub(crate) hub: &'a MetricsHub,
    pub(crate) retry: RetryPolicy,
    pub(crate) max_batch_rows: usize,
    /// Devices the configured backend spans (1 for single-node) — the top
    /// rung of the degradation ladder and the "not degraded" reference.
    pub(crate) configured_gpus: usize,
    /// Clock time when this cycle's linger window closed — the boundary
    /// between a request's linger stage and its execution stages.
    pub(crate) window_close_us: u64,
    /// The scheduler lane this context serves on behalf of — every reply
    /// bumps that lane's counters in lockstep with the globals, so
    /// `served == batched + solo + bypassed + error_replies` holds per
    /// lane as well as globally.
    pub(crate) lane: usize,
}

/// Which lifetime counter an `Ok` reply lands in: the batched lane
/// ([`crate::RuntimeStats::batched_requests`]), the solo lane
/// ([`crate::RuntimeStats::solo_requests`]), or the inline bypass lane
/// ([`crate::RuntimeStats::bypassed_requests`]). Error replies count in
/// none of them — they increment `error_replies`, so the four always
/// decompose `served` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplyClass {
    Batched,
    Solo,
    Bypass,
}

impl ServeCtx<'_> {
    /// The single exit point for every request the runtime answers (the
    /// scheduler's lanes and the inline bypass lane alike): completes
    /// the timeline (queue and linger legs from the request's own
    /// stamps), classifies the outcome, bumps exactly one of
    /// `batched_requests`/`solo_requests`/`bypassed_requests`/
    /// `error_replies`, records the stage histograms and the per-model
    /// registry, and fills the reply slot. Centralizing this is what
    /// pins the `served == batched + solo + bypassed + error_replies`
    /// invariant.
    #[allow(clippy::too_many_arguments)]
    fn finish<T: Element>(
        &self,
        mut timings: StageTimings,
        r: Request<T>,
        result: kron_core::Result<()>,
        summary: Option<gpu_sim::ExecSummary>,
        attempts: u32,
        grid: Option<(usize, usize)>,
        class: ReplyClass,
    ) {
        let shape_key = r.model.shape_key;
        let m = r.x.rows();
        let capacity = if m <= self.max_batch_rows {
            self.max_batch_rows
        } else {
            m.next_power_of_two()
        };
        timings.queue_us = r.drained_us.saturating_sub(r.enqueued_us);
        timings.linger_us = self.window_close_us.saturating_sub(r.drained_us);
        let lane_stats = self.stats.lane(self.lane);
        let outcome = match &result {
            Ok(()) => {
                match class {
                    ReplyClass::Batched => {
                        lane_stats.batched_requests.fetch_add(1, Ordering::Relaxed);
                        self.stats.batched_requests.fetch_add(1, Ordering::Relaxed)
                    }
                    ReplyClass::Solo => {
                        lane_stats.solo_requests.fetch_add(1, Ordering::Relaxed);
                        self.stats.solo_requests.fetch_add(1, Ordering::Relaxed)
                    }
                    ReplyClass::Bypass => {
                        lane_stats.bypassed_requests.fetch_add(1, Ordering::Relaxed);
                        self.stats.bypassed_requests.fetch_add(1, Ordering::Relaxed)
                    }
                };
                if attempts > 1 {
                    self.stats
                        .recovered_requests
                        .fetch_add(1, Ordering::Relaxed);
                }
                match class {
                    ReplyClass::Bypass => Outcome::Bypass,
                    ReplyClass::Batched | ReplyClass::Solo => Outcome::Ok,
                }
            }
            Err(KronError::DeadlineExceeded {
                deadline_us,
                now_us,
            }) => {
                self.stats.deadline_shed.fetch_add(1, Ordering::Relaxed);
                lane_stats.error_replies.fetch_add(1, Ordering::Relaxed);
                self.stats.error_replies.fetch_add(1, Ordering::Relaxed);
                self.hub.event(
                    self.clock.now_us(),
                    ServeEventKind::Shed {
                        deadline_us: *deadline_us,
                        now_us: *now_us,
                    },
                );
                Outcome::Shed
            }
            Err(_) => {
                lane_stats.error_replies.fetch_add(1, Ordering::Relaxed);
                self.stats.error_replies.fetch_add(1, Ordering::Relaxed);
                Outcome::Error
            }
        };
        lane_stats.served.fetch_add(1, Ordering::Relaxed);
        let seq = self.stats.served.fetch_add(1, Ordering::Relaxed);
        self.hub.record_timings(&timings, outcome);
        self.hub
            .record_model_serve(T::DTYPE, shape_key, capacity, outcome, timings.total_us());
        r.slot.fill(Reply {
            result,
            x: r.x,
            y: r.y,
            seq,
            summary,
            attempts,
            grid,
            timings,
        });
    }
}

/// The staged-batch execution core shared by the chunk and staged-solo
/// paths: arm the next due scripted fault (consumed only if the entry has
/// devices to fault), run the staged rows, account sharded executes, and
/// feed the device-health ledger (successes close healthy breakers,
/// device faults count toward trips) and the device metric registry.
/// Returns the result, the `rows`-prorated summary (successful sharded
/// runs only), whether the entry must be evicted (device fault — rebuild
/// the engine rather than trust a possibly inconsistent fabric), and the
/// execute wall time on the runtime clock.
fn execute_once<T: Element>(
    entry: &mut CachedPlan<T>,
    ctx: &ServeCtx,
    refs: &[&Matrix<T>],
    rows: usize,
) -> (
    kron_core::Result<()>,
    Option<gpu_sim::ExecSummary>,
    bool,
    u64,
) {
    arm_scripted_fault(entry, ctx.plane, ctx.clock.now_us());
    let exec_start = ctx.clock.now_us();
    let result = entry.run_batch(refs, rows);
    let exec_us = ctx.clock.now_us().saturating_sub(exec_start);
    let sharded = entry.is_sharded();
    ctx.hub.event(
        ctx.clock.now_us(),
        ServeEventKind::Execute {
            rows: rows as u32,
            sharded,
            ok: result.is_ok(),
            exec_us,
        },
    );
    let mut summary = None;
    match &result {
        Ok(()) => {
            if sharded {
                ctx.stats.sharded_batches.fetch_add(1, Ordering::Relaxed);
                summary = entry.shard_summary(rows);
                if let Some(s) = summary {
                    ctx.stats
                        .comm_bytes
                        .fetch_add(s.comm_bytes, Ordering::Relaxed);
                }
                let gpus = entry.grid().map_or(0, |g| g.gpus());
                for gpu in 0..gpus {
                    ctx.hub.record_device_execute(gpu, exec_us);
                }
                if ctx.health.is_suspect() {
                    ctx.health.record_success(gpus, ctx.clock.now_us());
                }
            }
        }
        Err(err) => {
            if let Some(gpu) = faulted_device(err) {
                let timeout = matches!(err, KronError::DeviceTimeout { .. });
                ctx.hub.record_device_fault(gpu, timeout);
                ctx.hub.event(
                    ctx.clock.now_us(),
                    ServeEventKind::Fault {
                        gpu: gpu as u32,
                        timeout,
                    },
                );
                if ctx.health.record_failure(gpu, ctx.clock.now_us()) {
                    ctx.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    let evict = result.as_ref().err().and_then(faulted_device).is_some();
    (result, summary, evict, exec_us)
}

/// Builds a `&[&Matrix<T>]` over `factors` in the reused scratch buffer —
/// no allocation once the scratch has grown to the largest factor count
/// seen.
fn refs_of<'a, T: Element>(
    scratch: &'a mut Vec<*const Matrix<T>>,
    factors: &'a [Matrix<T>],
) -> &'a [&'a Matrix<T>] {
    scratch.clear();
    scratch.extend(factors.iter().map(|f| f as *const Matrix<T>));
    // SAFETY: `&Matrix<T>` and `*const Matrix<T>` have identical layout,
    // every pointer is derived from a live reference in `factors`, and the
    // returned slice's lifetime ties it to both borrows.
    unsafe { std::slice::from_raw_parts(scratch.as_ptr().cast::<&Matrix<T>>(), scratch.len()) }
}

/// The inline bypass lane: serves one request on the submitting thread,
/// skipping the channel hop, the linger window, and the scheduler wake.
/// The caller ([`crate::Runtime::submit_with`] / `Session::call_with`
/// via their `Shared`) has already established eligibility — bypass
/// enabled, no outstanding unclaimed results, admission gate open — and
/// built `ctx` with `window_close_us` stamped *now*.
///
/// Completes the request inline in two cases, returning `None` (the
/// reply slot is filled, admission counters bumped):
///
/// - an already-expired deadline is shed with
///   [`KronError::DeadlineExceeded`] **before** any plan lookup —
///   exactly as the scheduler sheds cold, so neither lane counts a
///   plan-cache lookup for a shed request;
/// - the plan cache holds a warm **local** entry at full device width
///   ([`PlanCache::get_warm`]), which executes directly from/to the
///   request's buffers exactly as the scheduler's local solo path.
///
/// Otherwise (cold plan, degraded/rebuilding entry, or a sharded entry
/// — which must keep its retry ladder, watchdog, and device-health
/// accounting on the scheduler thread) the request is handed back
/// untouched for the channel path. Inline serves fold a depth-1 cycle
/// into the shared EWMA depth signal so the adaptive linger window
/// keeps breathing even when every request bypasses.
pub(crate) fn try_bypass<T: ErasedDtype>(
    ctx: &ServeCtx,
    cfg: &RuntimeConfig,
    mut r: Request<T>,
    refs_scratch: &mut Vec<*const Matrix<T>>,
) -> Option<Request<T>> {
    let now = ctx.window_close_us;
    // A bypassed request never crosses the channel: enqueue, drain, and
    // window close collapse to one instant, so its queue and linger
    // stages are genuinely zero.
    r.enqueued_us = now;
    r.drained_us = now;
    // The caller ([`crate::runtime::Shared::try_bypass`]) already holds
    // the lane's inflight CAS claim, so the slot is admitted with
    // `admit_claimed` — it takes over the claim rather than bumping the
    // lane gauge a second time.
    fn admit<T: ErasedDtype>(ctx: &ServeCtx, r: &Request<T>) {
        ctx.stats.submitted.fetch_add(1, Ordering::Relaxed);
        match T::DTYPE {
            DType::F32 => &ctx.stats.requests_f32,
            DType::F64 => &ctx.stats.requests_f64,
        }
        .fetch_add(1, Ordering::Relaxed);
        r.slot.admit_claimed(ctx.lane);
    }
    if let Some(deadline_us) = r.deadline_us {
        if deadline_us < now {
            admit(ctx, &r);
            ctx.finish(
                StageTimings::default(),
                r,
                Err(KronError::DeadlineExceeded {
                    deadline_us,
                    now_us: now,
                }),
                None,
                0,
                None,
                ReplyClass::Bypass,
            );
            return None;
        }
    }
    let m = r.x.rows();
    let capacity = if m <= ctx.max_batch_rows {
        ctx.max_batch_rows
    } else {
        m.next_power_of_two()
    };
    let plan_start = ctx.clock.now_us();
    let pinned = {
        let mut cache = ctx.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.get_warm(&r.model, capacity, ctx.stats)
    };
    let Some(pinned) = pinned else {
        return Some(r);
    };
    let plan_us = ctx.clock.now_us().saturating_sub(plan_start);
    admit(ctx, &r);
    // Fold a depth-1 cycle into the shared load signal and republish the
    // linger gauge, exactly as a scheduler cycle would.
    let ewma = ctx.stats.ewma_depth_x16.load(Ordering::Relaxed);
    let next = (3 * ewma + 16) / 4;
    ctx.stats.ewma_depth_x16.store(next, Ordering::Relaxed);
    if cfg.adaptive_linger && cfg.batch_linger_us > 0 {
        ctx.stats.current_linger_us.store(
            adaptive_linger_us(cfg.batch_linger_us, next),
            Ordering::Relaxed,
        );
    }
    let (result, exec_us) = {
        let mut guard = pinned.lock();
        let entry = T::plan_mut(&mut guard).expect("dtype verified at cache lookup");
        let refs = refs_of(refs_scratch, r.model.factors());
        let exec_start = ctx.clock.now_us();
        let result = entry.run_rows(&r.x, refs, &mut r.y, m);
        let exec_us = ctx.clock.now_us().saturating_sub(exec_start);
        ctx.hub.event(
            ctx.clock.now_us(),
            ServeEventKind::Execute {
                rows: m as u32,
                sharded: false,
                ok: result.is_ok(),
                exec_us,
            },
        );
        (result, exec_us)
    };
    drop(pinned);
    ctx.hub.event(
        ctx.clock.now_us(),
        ServeEventKind::Bypass {
            dtype: T::DTYPE,
            model: r.model.id,
            rows: m as u32,
            exec_us,
        },
    );
    let timings = StageTimings {
        plan_us,
        exec_us,
        ..StageTimings::default()
    };
    ctx.finish(timings, r, result, None, 1, None, ReplyClass::Bypass);
    None
}

/// One dtype's fully-typed half of the scheduler: the pending window,
/// grouping table, and execution scratch. Everything request-valued in
/// here is `T`-typed — the erasure boundary ends at [`Scheduler::enqueue`].
struct TypedLane<T: ErasedDtype> {
    /// Requests drained this cycle; `None` marks served slots. Cleared
    /// (capacity kept) at the end of every cycle.
    pending: Vec<Option<Request<T>>>,
    /// Global (cross-dtype) arrival number per pending slot; index
    /// -parallel with `pending` and valid after the slot is taken.
    arrivals: Vec<u64>,
    /// Grouping table; entries beyond `groups_used` are retired but keep
    /// their Vec capacity for reuse.
    groups: Vec<Group>,
    groups_used: usize,
    /// Reused backing store for the `&[&Matrix<T>]` factor slice.
    refs_scratch: Vec<*const Matrix<T>>,
    /// Reused live-member list for the retry loop (deadline shedding
    /// between attempts compacts it in place).
    retry_scratch: Vec<usize>,
}

// SAFETY: `refs_scratch` only holds pointers transiently within one serve
// call; the lane lives inside the scheduler, which is moved to its thread
// once and never shared.
unsafe impl<T: ErasedDtype> Send for TypedLane<T> {}

impl<T: ErasedDtype> TypedLane<T> {
    fn new() -> Self {
        TypedLane {
            pending: Vec::new(),
            arrivals: Vec::new(),
            groups: Vec::new(),
            groups_used: 0,
            refs_scratch: Vec::new(),
            retry_scratch: Vec::new(),
        }
    }

    fn push(&mut self, req: Request<T>, arrival: u64) {
        self.pending.push(Some(req));
        self.arrivals.push(arrival);
    }

    fn clear(&mut self) {
        self.pending.clear();
        self.arrivals.clear();
    }

    /// Admission control: shed requests whose deadline already passed —
    /// before any plan lookup, gather, or execute.
    fn shed_expired(&mut self, now: u64, ctx: &ServeCtx) {
        for i in 0..self.pending.len() {
            let expired = self.pending[i]
                .as_ref()
                .expect("fresh this cycle")
                .deadline_us
                .is_some_and(|d| d < now);
            if expired {
                let r = self.pending[i].take().expect("checked above");
                let deadline_us = r.deadline_us.expect("expired implies a deadline");
                ctx.finish(
                    StageTimings::default(),
                    r,
                    Err(KronError::DeadlineExceeded {
                        deadline_us,
                        now_us: now,
                    }),
                    None,
                    0,
                    None,
                    ReplyClass::Batched,
                );
            }
        }
    }

    /// Fails everything still pending with [`KronError::Shutdown`] — the
    /// poison path after a scheduler-thread panic, so no `Ticket::wait`
    /// can hang on a dead scheduler.
    fn fail_all(&mut self, ctx: &ServeCtx) {
        for slot in self.pending.iter_mut() {
            if let Some(r) = slot.take() {
                ctx.finish(
                    StageTimings::default(),
                    r,
                    Err(KronError::Shutdown),
                    None,
                    0,
                    None,
                    ReplyClass::Batched,
                );
            }
        }
        self.clear();
    }

    /// Groups batchable requests by model identity, tracking each group's
    /// strongest aged priority, tightest deadline, and first arrival.
    fn build_groups(&mut self, batch_max_m: usize, now: u64, aging_us: u64) {
        for g in &mut self.groups {
            g.idxs.clear();
        }
        self.groups_used = 0;
        for i in 0..self.pending.len() {
            let Some(r) = self.pending[i].as_ref() else {
                continue; // shed above
            };
            if r.x.rows() > batch_max_m {
                continue;
            }
            let id = r.model.id;
            let prio = aged_priority(r.priority, now.saturating_sub(r.enqueued_us), aging_us);
            let deadline = r.deadline_us.unwrap_or(u64::MAX);
            match self.groups[..self.groups_used]
                .iter()
                .position(|g| g.model == id)
            {
                Some(s) => {
                    let g = &mut self.groups[s];
                    g.prio = g.prio.max(prio);
                    g.deadline = g.deadline.min(deadline);
                    g.idxs.push(i);
                }
                None => {
                    let arrival = self.arrivals[i];
                    if self.groups_used < self.groups.len() {
                        let g = &mut self.groups[self.groups_used];
                        g.model = id;
                        g.prio = prio;
                        g.deadline = deadline;
                        g.arrival = arrival;
                        g.idxs.push(i);
                    } else {
                        self.groups.push(Group {
                            model: id,
                            prio,
                            deadline,
                            arrival,
                            idxs: vec![i],
                        });
                    }
                    self.groups_used += 1;
                }
            }
        }
    }

    /// Appends this lane's groups to the global ordering buffer.
    fn collect_groups(&self, dtype: DType, out: &mut Vec<WorkItem>) {
        for (gi, g) in self.groups[..self.groups_used].iter().enumerate() {
            out.push(WorkItem {
                prio: g.prio,
                deadline: g.deadline,
                arrival: g.arrival,
                dtype,
                idx: gi,
            });
        }
    }

    /// Appends everything still pending (large-M and singleton leftovers)
    /// to the global solo ordering buffer.
    fn collect_solos(&self, now: u64, aging_us: u64, dtype: DType, out: &mut Vec<WorkItem>) {
        for (i, slot) in self.pending.iter().enumerate() {
            if let Some(r) = slot.as_ref() {
                out.push(WorkItem {
                    prio: aged_priority(r.priority, now.saturating_sub(r.enqueued_us), aging_us),
                    deadline: r.deadline_us.unwrap_or(u64::MAX),
                    arrival: self.arrivals[i],
                    dtype,
                    idx: i,
                });
            }
        }
    }

    /// Serves group `gi` in row-budgeted chunks.
    fn serve_group(&mut self, gi: usize, ctx: &ServeCtx) {
        // Move the index list out so `serve_chunk(&mut self)` can run;
        // restored below to keep its capacity for the next cycle.
        let idxs = std::mem::take(&mut self.groups[gi].idxs);
        let max_batch_rows = ctx.max_batch_rows;
        let mut start = 0;
        while start < idxs.len() {
            let mut rows = 0;
            let mut end = start;
            while end < idxs.len() {
                let m = self.pending[idxs[end]].as_ref().expect("unserved").x.rows();
                if end > start && rows + m > max_batch_rows {
                    break;
                }
                rows += m;
                end += 1;
                if rows >= max_batch_rows {
                    break;
                }
            }
            self.serve_chunk(&idxs[start..end], ctx);
            start = end;
        }
        self.groups[gi].idxs = idxs;
    }

    /// Replies a deadline shed to retry survivors: drops every live
    /// member whose deadline has passed (a retry landing past the
    /// deadline is useless work — shed it instead of serving it late),
    /// compacting `live` in place.
    fn shed_expired_retries(
        &mut self,
        live: &mut Vec<usize>,
        attempts: u32,
        ctx: &ServeCtx,
        base: StageTimings,
    ) {
        let now = ctx.clock.now_us();
        let pending = &mut self.pending;
        live.retain(|&i| {
            let expired = pending[i]
                .as_ref()
                .expect("unserved")
                .deadline_us
                .is_some_and(|d| d < now);
            if expired {
                let r = pending[i].take().expect("checked above");
                let deadline_us = r.deadline_us.expect("expired implies a deadline");
                ctx.finish(
                    base,
                    r,
                    Err(KronError::DeadlineExceeded {
                        deadline_us,
                        now_us: now,
                    }),
                    None,
                    attempts,
                    None,
                    ReplyClass::Batched,
                );
            }
            !expired
        });
    }

    /// Serves a same-model chunk whose rows sum to ≤ `max_batch_rows`:
    /// gather rows into the cached batch input, one fused (or sharded)
    /// execute, scatter back. A chunk of one skips the grouping
    /// bookkeeping via the solo path. The cache entry stays pinned for
    /// the whole gather/execute/scatter, so no concurrent sweep can drop
    /// the engine mid-batch.
    ///
    /// On a device fault the chunk is retried per [`RetryPolicy`]: the
    /// broken engine is evicted and the batch re-executes on a rebuilt
    /// grid, degrading toward single-device as attempts mount; members
    /// whose deadline a retry would overshoot are shed between attempts.
    /// The gather repeats per attempt — a degraded entry has its own
    /// staging buffers.
    fn serve_chunk(&mut self, idxs: &[usize], ctx: &ServeCtx) {
        debug_assert!(!idxs.is_empty());
        if idxs.len() == 1 {
            let r = self.pending[idxs[0]].take().expect("unserved");
            self.serve_solo(r, ctx);
            return;
        }
        let model = Arc::clone(&self.pending[idxs[0]].as_ref().expect("unserved").model);
        let capacity = ctx.max_batch_rows;
        let k = model.input_cols();
        let l = model.output_cols();
        let mut live = std::mem::take(&mut self.retry_scratch);
        live.clear();
        live.extend_from_slice(idxs);
        let chunk_rows: usize = live
            .iter()
            .map(|&i| self.pending[i].as_ref().expect("unserved").x.rows())
            .sum();
        let serve_start = ctx.clock.now_us();
        ctx.hub.event(
            serve_start,
            ServeEventKind::BatchFormed {
                model: model.id,
                requests: live.len() as u32,
                rows: chunk_rows as u32,
            },
        );
        // `attempt` counts executes performed; the reply's `attempts`.
        let mut attempt: u32 = 0;
        loop {
            let now = ctx.clock.now_us();
            // Backoff waited out before this attempt (0 on the first).
            let retry_us = now.saturating_sub(serve_start);
            let allowed = ctx.health.allowed_gpus(now, ctx.configured_gpus);
            let limit = attempt_limit(&ctx.retry, ctx.configured_gpus, attempt, allowed);
            let plan_start = ctx.clock.now_us();
            let pinned = {
                let mut cache = ctx.cache.lock().unwrap_or_else(|e| e.into_inner());
                cache.get_or_create(&model, capacity, limit, ctx.stats)
            };
            let plan_us = ctx.clock.now_us().saturating_sub(plan_start);
            let pinned = match pinned {
                Ok(p) => p,
                Err(err) => {
                    // Build errors are deterministic — retrying cannot
                    // help. Terminal for the whole chunk.
                    let timings = StageTimings {
                        plan_us,
                        retry_us,
                        ..StageTimings::default()
                    };
                    for &i in &live {
                        let r = self.pending[i].take().expect("unserved");
                        ctx.finish(
                            timings,
                            r,
                            Err(err.clone()),
                            None,
                            attempt,
                            None,
                            ReplyClass::Batched,
                        );
                    }
                    break;
                }
            };
            let mut guard = pinned.lock();
            let entry = T::plan_mut(&mut guard).expect("dtype verified at cache lookup");

            // Gather request rows into the staged batch input.
            let total_rows = {
                let (bx, _) = entry.batch_buffers();
                let mut off = 0;
                for &i in &live {
                    let r = self.pending[i].as_ref().expect("unserved");
                    let m = r.x.rows();
                    bx.as_mut_slice()[off * k..(off + m) * k].copy_from_slice(r.x.as_slice());
                    off += m;
                }
                off
            };

            let refs = refs_of(&mut self.refs_scratch, model.factors());
            let (result, _, evict, exec_us) = execute_once(entry, ctx, refs, total_rows);
            let exec_end = ctx.clock.now_us();
            attempt += 1;
            match result {
                Ok(()) => {
                    let grid = entry.grid().map(|g| (g.gm, g.gk));
                    // Scatter results back and reply with each request's
                    // prorated share of the simulated sharded execution.
                    let mut off = 0;
                    for &i in &live {
                        let mut r = self.pending[i].take().expect("unserved");
                        let m = r.x.rows();
                        r.y.as_mut_slice()
                            .copy_from_slice(&entry.batch_y().as_slice()[off * l..(off + m) * l]);
                        let summary = entry.shard_summary(m);
                        off += m;
                        let timings = StageTimings {
                            plan_us,
                            exec_us,
                            scatter_us: ctx.clock.now_us().saturating_sub(exec_end),
                            retry_us,
                            ..StageTimings::default()
                        };
                        ctx.finish(
                            timings,
                            r,
                            Ok(()),
                            summary,
                            attempt,
                            grid,
                            ReplyClass::Batched,
                        );
                    }
                    ctx.stats.batches.fetch_add(1, Ordering::Relaxed);
                    if grid.is_some() && limit < ctx.configured_gpus {
                        ctx.stats.degraded_batches.fetch_add(1, Ordering::Relaxed);
                        ctx.hub.event(
                            ctx.clock.now_us(),
                            ServeEventKind::Degrade {
                                from_gpus: ctx.configured_gpus as u32,
                                to_gpus: limit as u32,
                            },
                        );
                    }
                    break;
                }
                Err(err) => {
                    // Release the entry before touching the cache again
                    // (lock order: never hold an entry lock while taking
                    // the cache lock).
                    drop(guard);
                    drop(pinned);
                    if evict {
                        let mut cache = ctx.cache.lock().unwrap_or_else(|e| e.into_inner());
                        cache.evict_failed(T::DTYPE, model.shape_key, capacity, ctx.stats);
                    }
                    let timings = StageTimings {
                        plan_us,
                        exec_us,
                        retry_us,
                        ..StageTimings::default()
                    };
                    if !evict || attempt > ctx.retry.max_attempts {
                        // Not a device fault, or the retry budget is
                        // spent: the error is client-visible.
                        for &i in &live {
                            let r = self.pending[i].take().expect("unserved");
                            ctx.finish(
                                timings,
                                r,
                                Err(err.clone()),
                                None,
                                attempt,
                                None,
                                ReplyClass::Batched,
                            );
                        }
                        ctx.stats.batches.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    ctx.stats.retries.fetch_add(1, Ordering::Relaxed);
                    ctx.hub.event(
                        ctx.clock.now_us(),
                        ServeEventKind::Retry {
                            attempt: attempt + 1,
                            limit_gpus: limit as u32,
                        },
                    );
                    if ctx.retry.backoff_us > 0 {
                        wait_until(ctx.clock, ctx.clock.now_us() + ctx.retry.backoff_us);
                    }
                    self.shed_expired_retries(&mut live, attempt, ctx, timings);
                    if live.is_empty() {
                        break;
                    }
                }
            }
        }
        live.clear();
        self.retry_scratch = live;
    }

    /// Takes pending slot `idx` and serves it solo.
    fn serve_solo_at(&mut self, idx: usize, ctx: &ServeCtx) {
        if let Some(r) = self.pending[idx].take() {
            self.serve_solo(r, ctx);
        }
    }

    /// Serves one request on its own. On a local entry it executes
    /// directly from/to the request's buffers (no staging copies); on a
    /// sharded entry it stages through the batch buffers so the row count
    /// can zero-pad to a `GM` multiple. Small requests reuse the
    /// batch-capacity entry; large ones get power-of-two-capacity entries
    /// so nearby sizes share workspaces. Device faults retry exactly as
    /// in [`Self::serve_chunk`].
    fn serve_solo(&mut self, mut r: Request<T>, ctx: &ServeCtx) {
        let m = r.x.rows();
        let capacity = if m <= ctx.max_batch_rows {
            ctx.max_batch_rows
        } else {
            m.next_power_of_two()
        };
        let serve_start = ctx.clock.now_us();
        let mut attempt: u32 = 0;
        loop {
            let now = ctx.clock.now_us();
            // Backoff waited out before this attempt (0 on the first).
            let retry_us = now.saturating_sub(serve_start);
            let allowed = ctx.health.allowed_gpus(now, ctx.configured_gpus);
            let limit = attempt_limit(&ctx.retry, ctx.configured_gpus, attempt, allowed);
            let plan_start = ctx.clock.now_us();
            let pinned = {
                let mut cache = ctx.cache.lock().unwrap_or_else(|e| e.into_inner());
                cache.get_or_create(&r.model, capacity, limit, ctx.stats)
            };
            let plan_us = ctx.clock.now_us().saturating_sub(plan_start);
            let pinned = match pinned {
                Ok(p) => p,
                Err(err) => {
                    let timings = StageTimings {
                        plan_us,
                        retry_us,
                        ..StageTimings::default()
                    };
                    ctx.finish(timings, r, Err(err), None, attempt, None, ReplyClass::Solo);
                    return;
                }
            };
            let mut summary = None;
            let mut grid = None;
            let (result, evict, exec_us, scatter_us) = {
                let mut guard = pinned.lock();
                let entry = T::plan_mut(&mut guard).expect("dtype verified at cache lookup");
                let refs = refs_of(&mut self.refs_scratch, r.model.factors());
                if entry.is_sharded() {
                    let k = r.model.input_cols();
                    let l = r.model.output_cols();
                    {
                        let (bx, _) = entry.batch_buffers();
                        bx.as_mut_slice()[..m * k].copy_from_slice(r.x.as_slice());
                    }
                    let (result, s, ev, exec_us) = execute_once(entry, ctx, refs, m);
                    let exec_end = ctx.clock.now_us();
                    let mut scatter_us = 0;
                    if result.is_ok() {
                        r.y.as_mut_slice()
                            .copy_from_slice(&entry.batch_y().as_slice()[..m * l]);
                        summary = s;
                        grid = entry.grid().map(|g| (g.gm, g.gk));
                        scatter_us = ctx.clock.now_us().saturating_sub(exec_end);
                    }
                    (result, ev, exec_us, scatter_us)
                } else {
                    let exec_start = ctx.clock.now_us();
                    let result = entry.run_rows(&r.x, refs, &mut r.y, m);
                    let exec_us = ctx.clock.now_us().saturating_sub(exec_start);
                    ctx.hub.event(
                        ctx.clock.now_us(),
                        ServeEventKind::Execute {
                            rows: m as u32,
                            sharded: false,
                            ok: result.is_ok(),
                            exec_us,
                        },
                    );
                    (result, false, exec_us, 0)
                }
            };
            attempt += 1;
            drop(pinned);
            if evict {
                let mut cache = ctx.cache.lock().unwrap_or_else(|e| e.into_inner());
                cache.evict_failed(T::DTYPE, r.model.shape_key, capacity, ctx.stats);
            }
            let timings = StageTimings {
                plan_us,
                exec_us,
                scatter_us,
                retry_us,
                ..StageTimings::default()
            };
            match result {
                Ok(()) => {
                    if grid.is_some() && limit < ctx.configured_gpus {
                        ctx.stats.degraded_batches.fetch_add(1, Ordering::Relaxed);
                        ctx.hub.event(
                            ctx.clock.now_us(),
                            ServeEventKind::Degrade {
                                from_gpus: ctx.configured_gpus as u32,
                                to_gpus: limit as u32,
                            },
                        );
                    }
                    ctx.finish(timings, r, Ok(()), summary, attempt, grid, ReplyClass::Solo);
                    return;
                }
                Err(err) => {
                    if !evict || attempt > ctx.retry.max_attempts {
                        ctx.finish(timings, r, Err(err), None, attempt, None, ReplyClass::Solo);
                        return;
                    }
                    ctx.stats.retries.fetch_add(1, Ordering::Relaxed);
                    ctx.hub.event(
                        ctx.clock.now_us(),
                        ServeEventKind::Retry {
                            attempt: attempt + 1,
                            limit_gpus: limit as u32,
                        },
                    );
                    if ctx.retry.backoff_us > 0 {
                        wait_until(ctx.clock, ctx.clock.now_us() + ctx.retry.backoff_us);
                    }
                    let now = ctx.clock.now_us();
                    if let Some(deadline_us) = r.deadline_us {
                        if deadline_us < now {
                            ctx.finish(
                                timings,
                                r,
                                Err(KronError::DeadlineExceeded {
                                    deadline_us,
                                    now_us: now,
                                }),
                                None,
                                attempt,
                                None,
                                ReplyClass::Solo,
                            );
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// The dtype-erased scheduler for **one lane**: one ring, one window,
/// one service order; two typed halves. The runtime spawns one per
/// configured lane. See the module docs.
pub(crate) struct Scheduler {
    /// This scheduler's lane index into `lanes` — also the index of the
    /// per-lane counters it bumps in [`StatsInner`].
    lane: usize,
    /// Every lane's handle (lock-free ring + striped gate), shared with
    /// the runtime's send path and the sibling schedulers. Work-stealing
    /// pops from sibling rings through this; [`Self::poison`] closes
    /// every gate through it.
    lanes: Arc<[LaneHandle]>,
    /// This lane's own receiver (a clone of `lanes[lane].rx`).
    rx: Receiver<Msg>,
    /// Global poison flag shared with the runtime handle's submit path:
    /// set when any lane panics, so submits fail fast with
    /// [`KronError::Shutdown`] instead of queueing behind a dead lane.
    poisoned: Arc<AtomicBool>,
    cfg: RuntimeConfig,
    /// The plan cache, shared with the runtime handle (client-side pins,
    /// sweeps, and probes). Never locked while an entry lock is held.
    cache: Arc<Mutex<PlanCache>>,
    stats: Arc<StatsInner>,
    clock: Clock,
    /// Scripted chaos plane shared with the runtime handle; consulted
    /// before every sharded execute (one atomic load while disarmed).
    plane: Arc<FaultPlane>,
    /// Device-health ledger shared with the runtime handle: executes
    /// record outcomes, plan builds respect its quarantine limit.
    health: Arc<DeviceHealth>,
    /// Metrics hub shared with the runtime handle: stage histograms,
    /// per-model/per-device registries, and the flight recorder.
    hub: Arc<MetricsHub>,
    /// Per-lane arrival counter — the cross-dtype FIFO tie-break within
    /// this lane's windows.
    next_arrival: u64,
    f32_lane: TypedLane<f32>,
    f64_lane: TypedLane<f64>,
    /// Reused global ordering buffer for model groups.
    group_order: Vec<WorkItem>,
    /// Reused global ordering buffer for solo requests.
    solo_order: Vec<WorkItem>,
}

impl Scheduler {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        lane: usize,
        lanes: Arc<[LaneHandle]>,
        poisoned: Arc<AtomicBool>,
        cfg: RuntimeConfig,
        cache: Arc<Mutex<PlanCache>>,
        stats: Arc<StatsInner>,
        plane: Arc<FaultPlane>,
        health: Arc<DeviceHealth>,
        hub: Arc<MetricsHub>,
    ) -> Self {
        let clock = cfg.clock.clone();
        let rx = lanes[lane].rx.clone();
        Scheduler {
            lane,
            lanes,
            rx,
            poisoned,
            cfg,
            cache,
            stats,
            clock,
            plane,
            health,
            hub,
            next_arrival: 0,
            f32_lane: TypedLane::new(),
            f64_lane: TypedLane::new(),
            group_order: Vec::new(),
            solo_order: Vec::new(),
        }
    }

    /// Unwraps an erased request into its typed lane, assigning the
    /// global arrival number and stamping scheduler pickup — the
    /// queue-stage boundary in the request's [`StageTimings`].
    fn enqueue(&mut self, req: ErasedRequest) {
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        let now = self.clock.now_us();
        match req {
            ErasedRequest::F32(mut r) => {
                r.drained_us = now;
                self.f32_lane.push(r, arrival);
            }
            ErasedRequest::F64(mut r) => {
                r.drained_us = now;
                self.f64_lane.push(r, arrival);
            }
        }
    }

    /// Requests drained into the current window, across both lanes.
    fn pending_len(&self) -> usize {
        self.f32_lane.pending.len() + self.f64_lane.pending.len()
    }

    /// The linger window for the next batch cycle: the configured cap,
    /// scaled by smoothed load when adaptation is on.
    fn effective_linger_us(&self) -> u64 {
        let cap = self.cfg.batch_linger_us;
        if cap == 0 || !self.cfg.adaptive_linger {
            return cap;
        }
        // The depth signal lives in the shared stats so the inline
        // bypass lane's depth-1 serves decay it too (see `try_bypass`).
        adaptive_linger_us(cap, self.stats.ewma_depth_x16.load(Ordering::Relaxed))
    }

    /// The scheduler loop, panic-contained: each iteration runs under
    /// `catch_unwind`, so a panic anywhere in the serve path (injected by
    /// the chaos plane's `SchedulerPanic`, or a real bug) poisons the
    /// runtime — every pending `Ticket::wait` is failed with
    /// [`KronError::Shutdown`] and later submits error — instead of
    /// stranding in-flight callers on a silently dead thread.
    pub(crate) fn run(mut self) {
        loop {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.step())) {
                Ok(true) => {}
                Ok(false) => break,
                Err(_) => {
                    self.poison();
                    break;
                }
            }
        }
    }

    /// Marks the runtime poisoned and fails everything queued or drained
    /// on **this** lane (sibling lanes are healthy and keep serving
    /// their own queues). Closing the striped gates first means no new
    /// request can start entering any ring; waiting for this lane's
    /// senders to drain makes the sweep below complete, not racy. The
    /// wait drains the ring concurrently — a sender spinning on a full
    /// ring needs this thread to consume, so a blocking wait without the
    /// drain would deadlock.
    fn poison(&mut self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for lane in self.lanes.iter() {
            lane.gate.begin_close();
        }
        loop {
            loop {
                match self.rx.try_recv() {
                    Ok(Msg::Request(r)) => self.enqueue(r),
                    Ok(Msg::Shutdown) => {}
                    Err(_) => break,
                }
            }
            if self.lanes[self.lane].gate.senders_drained() {
                break;
            }
            crossbeam::sync::thread::yield_now();
        }
        // Final sweep: the gate is drained, so nothing new can appear
        // behind this.
        loop {
            match self.rx.try_recv() {
                Ok(Msg::Request(r)) => self.enqueue(r),
                Ok(Msg::Shutdown) => {}
                Err(_) => break,
            }
        }
        let ctx = ServeCtx {
            cache: &self.cache,
            stats: &self.stats,
            plane: &self.plane,
            health: &self.health,
            clock: &self.clock,
            hub: &self.hub,
            retry: self.cfg.retry,
            max_batch_rows: self.cfg.max_batch_rows,
            configured_gpus: self.cfg.backend.gpus(),
            window_close_us: self.clock.now_us(),
            lane: self.lane,
        };
        self.f32_lane.fail_all(&ctx);
        self.f64_lane.fail_all(&ctx);
    }

    /// One loop iteration: obtain a message (blocking on the single-lane
    /// layout; try-own / steal / short park on the sharded layout),
    /// drain a batch window, serve it. Returns `false` when the loop
    /// should exit (shutdown, or every sender gone).
    fn step(&mut self) -> bool {
        let msg = if self.lanes.len() == 1 {
            // Single lane (the default): the classic blocking drain — no
            // stealing, no polling, exact legacy service order.
            let Ok(msg) = self.rx.recv() else {
                return false;
            };
            msg
        } else {
            match self.rx.try_recv() {
                Ok(msg) => msg,
                Err(TryRecvError::Disconnected) => return false,
                Err(TryRecvError::Empty) => {
                    // Own ring idle: steal from the deepest sibling
                    // before parking, then park briefly so stealing
                    // keeps happening even without local traffic to
                    // wake this lane.
                    if self.try_steal() {
                        return true;
                    }
                    match self.rx.recv_timeout(STEAL_POLL) {
                        Ok(msg) => msg,
                        Err(RecvTimeoutError::Timeout) => return true,
                        Err(RecvTimeoutError::Disconnected) => return false,
                    }
                }
            }
        };
        {
            let mut shutting = false;
            match msg {
                Msg::Shutdown => shutting = true,
                Msg::Request(r) => {
                    self.enqueue(r);
                    // Batch window: drain whatever is queued right now, up
                    // to the configured cycle size; optionally linger (per
                    // the adaptive policy) to let concurrent clients top
                    // the window up. The window is measured on the
                    // runtime's clock, so a manual clock holds it open
                    // until the test advances time.
                    let linger_us = self.effective_linger_us();
                    self.stats
                        .current_linger_us
                        .store(linger_us, Ordering::Relaxed);
                    let deadline = (linger_us > 0).then(|| self.clock.now_us() + linger_us);
                    while self.pending_len() < self.cfg.max_queue {
                        match self.rx.try_recv() {
                            Ok(Msg::Request(r)) => self.enqueue(r),
                            Ok(Msg::Shutdown) => {
                                shutting = true;
                                break;
                            }
                            Err(_) => {
                                // Queue momentarily empty: park until the
                                // linger deadline for a late arrival (no
                                // spinning — producers get the CPU).
                                let Some(d) = deadline else { break };
                                let now = self.clock.now_us();
                                if now >= d {
                                    break;
                                }
                                let wait = if self.clock.is_manual() {
                                    MANUAL_POLL
                                } else {
                                    Duration::from_micros(d - now)
                                };
                                match self.rx.recv_timeout(wait) {
                                    Ok(Msg::Request(r)) => self.enqueue(r),
                                    Ok(Msg::Shutdown) => {
                                        shutting = true;
                                        break;
                                    }
                                    Err(RecvTimeoutError::Timeout) if self.clock.is_manual() => {
                                        // Re-read the virtual clock; the
                                        // test may have advanced it.
                                        continue;
                                    }
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    self.serve_pending();
                }
            }
            if shutting {
                // The gate guarantees Shutdown is the channel's final
                // message, but drain defensively before exiting.
                loop {
                    match self.rx.try_recv() {
                        Ok(Msg::Request(r)) => self.enqueue(r),
                        Ok(Msg::Shutdown) => {}
                        Err(_) => break,
                    }
                }
                self.serve_pending();
                return false;
            }
        }
        true
    }

    /// Steals up to half of the deepest sibling ring into this lane's
    /// window and serves it. Returns whether anything was stolen.
    ///
    /// Only siblings with **two or more** queued messages are victims: a
    /// lone request is left for its owner, which is already on its way
    /// to drain it — snatching it would just migrate depth-1 traffic
    /// onto lanes with cold batching scratch for no latency win.
    ///
    /// A stolen [`Msg::Shutdown`] is pushed straight back onto the
    /// sibling's ring: the sibling's gate is already closed by the time
    /// Shutdown is sent, so nothing can enqueue behind the re-push and
    /// the per-lane "Shutdown is the last message" guarantee survives
    /// stealing.
    fn try_steal(&mut self) -> bool {
        let mut victim = usize::MAX;
        let mut depth = 1usize;
        for (i, lane) in self.lanes.iter().enumerate() {
            if i == self.lane {
                continue;
            }
            let len = lane.rx.len();
            if len > depth {
                depth = len;
                victim = i;
            }
        }
        if victim == usize::MAX {
            return false;
        }
        let budget = depth / 2;
        let mut stolen = 0u32;
        for _ in 0..budget {
            match self.lanes[victim].rx.try_recv() {
                Ok(Msg::Request(r)) => {
                    self.enqueue(r);
                    stolen += 1;
                }
                Ok(Msg::Shutdown) => {
                    let _ = self.lanes[victim].tx.send(Msg::Shutdown);
                    break;
                }
                Err(_) => break,
            }
        }
        if stolen == 0 {
            return false;
        }
        self.stats
            .lane(self.lane)
            .steals
            .fetch_add(1, Ordering::Relaxed);
        self.hub.event(
            self.clock.now_us(),
            ServeEventKind::Steal {
                from: victim as u32,
                to: self.lane as u32,
                requests: stolen,
            },
        );
        self.serve_pending();
        true
    }

    /// Serves everything drained this cycle: expired deadlines shed
    /// first, then batchable requests grouped by model and served in the
    /// global aged-priority/deadline/arrival order (interleaving dtypes),
    /// chunked to `max_batch_rows`; then the solos, in the same order.
    fn serve_pending(&mut self) {
        let total = self.pending_len();
        if total == 0 {
            return;
        }
        // Scripted scheduler-thread fault: fires here, before any request
        // leaves its pending slot, so the poison path can honestly fail
        // every in-flight caller (none is ever half-served).
        if self.plane.scheduler_panic_due(self.clock.now_us()) {
            panic!("injected scheduler fault (chaos plane)");
        }
        // Load signal for the next cycle's linger window (shared with the
        // bypass lane, which folds in depth-1 cycles the scheduler never
        // sees).
        let ewma = self.stats.ewma_depth_x16.load(Ordering::Relaxed);
        self.stats
            .ewma_depth_x16
            .store((3 * ewma + 16 * total as u64) / 4, Ordering::Relaxed);

        // Cycle-boundary idle sweep (a no-op unless the policy sets
        // `max_idle_us`).
        {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.sweep_idle(&self.stats);
        }

        // The window closes here: everything drained this cycle spent
        // `now - drained_us` lingering, and the serve stages start now.
        let now = self.clock.now_us();
        let ctx = ServeCtx {
            cache: &self.cache,
            stats: &self.stats,
            plane: &self.plane,
            health: &self.health,
            clock: &self.clock,
            hub: &self.hub,
            retry: self.cfg.retry,
            max_batch_rows: self.cfg.max_batch_rows,
            configured_gpus: self.cfg.backend.gpus(),
            window_close_us: now,
            lane: self.lane,
        };
        self.f32_lane.shed_expired(now, &ctx);
        self.f64_lane.shed_expired(now, &ctx);

        let aging = self.cfg.priority_aging_us;
        let batch_max_m = self.cfg.batch_max_m;
        self.f32_lane.build_groups(batch_max_m, now, aging);
        self.f64_lane.build_groups(batch_max_m, now, aging);

        // Global group order: aged priority, then tightest deadline, then
        // arrival — across both dtypes.
        self.group_order.clear();
        self.f32_lane
            .collect_groups(DType::F32, &mut self.group_order);
        self.f64_lane
            .collect_groups(DType::F64, &mut self.group_order);
        self.group_order.sort_unstable_by_key(work_key);
        for i in 0..self.group_order.len() {
            let w = self.group_order[i];
            match w.dtype {
                DType::F32 => self.f32_lane.serve_group(w.idx, &ctx),
                DType::F64 => self.f64_lane.serve_group(w.idx, &ctx),
            }
        }

        // Everything left (large-M, or models with batching disabled), in
        // the same global order.
        self.solo_order.clear();
        self.f32_lane
            .collect_solos(now, aging, DType::F32, &mut self.solo_order);
        self.f64_lane
            .collect_solos(now, aging, DType::F64, &mut self.solo_order);
        self.solo_order.sort_unstable_by_key(work_key);
        for i in 0..self.solo_order.len() {
            let w = self.solo_order[i];
            match w.dtype {
                DType::F32 => self.f32_lane.serve_solo_at(w.idx, &ctx),
                DType::F64 => self.f64_lane.serve_solo_at(w.idx, &ctx),
            }
        }
        self.f32_lane.clear();
        self.f64_lane.clear();
        // Republish this lane's depth gauge now the window has drained.
        self.stats
            .lane(self.lane)
            .depth
            .store(self.rx.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_linger_collapses_at_depth_one_and_saturates() {
        // Sequential traffic (one request per cycle) must not linger.
        assert_eq!(adaptive_linger_us(500, 0), 0);
        assert_eq!(adaptive_linger_us(500, 16), 0);
        // Saturation: at and past nine requests per cycle, the full cap.
        assert_eq!(adaptive_linger_us(500, 16 * 9), 500);
        assert_eq!(adaptive_linger_us(500, 16 * 100), 500);
        // In between: strictly monotone and bounded by the cap.
        let mut last = 0;
        for depth_x16 in (16..=16 * 9).step_by(16) {
            let l = adaptive_linger_us(800, depth_x16);
            assert!(l >= last, "linger must grow with load");
            assert!(l <= 800);
            last = l;
        }
        assert_eq!(last, 800);
        // A zero cap disables lingering at any load.
        assert_eq!(adaptive_linger_us(0, 16 * 100), 0);
    }

    #[test]
    fn aged_priority_is_monotone_and_eventually_dominates() {
        // No age, no boost: static priorities order as given.
        assert_eq!(aged_priority(3, 0, 1_000), 3);
        assert!(aged_priority(7, 0, 1_000) > aged_priority(3, 0, 1_000));
        // One step per `step_us` of queue age.
        assert_eq!(aged_priority(0, 999, 1_000), 0);
        assert_eq!(aged_priority(0, 1_000, 1_000), 1);
        assert_eq!(aged_priority(0, 5_500, 1_000), 5);
        // Anti-starvation: enough age lifts priority 0 over a fresh 255.
        assert!(aged_priority(0, 256_000, 1_000) > aged_priority(255, 0, 1_000));
        // Equal age cancels: a burst submitted together keeps its static
        // order however long it waits.
        for age in [0, 10_000, 10_000_000] {
            assert!(aged_priority(5, age, 1_000) > aged_priority(2, age, 1_000));
        }
        // Monotone in age.
        let mut last = 0;
        for age in (0..20_000).step_by(500) {
            let p = aged_priority(1, age, 1_000);
            assert!(p >= last);
            last = p;
        }
        // Aging disabled: pure static priority at any age.
        assert_eq!(aged_priority(2, u64::MAX, 0), 2);
    }

    #[test]
    fn work_key_orders_priority_then_deadline_then_arrival() {
        let item = |prio, deadline, arrival| WorkItem {
            prio,
            deadline,
            arrival,
            dtype: DType::F32,
            idx: 0,
        };
        // Higher priority first.
        assert!(work_key(&item(5, u64::MAX, 9)) < work_key(&item(4, 0, 0)));
        // Same priority: tighter deadline first; deadline-less last.
        assert!(work_key(&item(5, 100, 9)) < work_key(&item(5, 200, 0)));
        assert!(work_key(&item(5, 200, 9)) < work_key(&item(5, u64::MAX, 0)));
        // Full tie: arrival order.
        assert!(work_key(&item(5, 100, 1)) < work_key(&item(5, 100, 2)));
    }
}
