//! Vendored API-subset shim of [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this workspace vendors
//! the thin slice of rayon's API its crates actually use: `par_chunks`,
//! `par_chunks_mut`, and the `enumerate`/`zip`/`for_each` adaptors on the
//! resulting parallel iterators. Parallelism is real — work is split across
//! `std::thread::scope` threads — but there is no work stealing: chunks are
//! statically partitioned, which matches the uniform per-chunk cost of every
//! call site in the workspace.
//!
//! On a single-hardware-thread host (or when there is at most one chunk)
//! everything degrades to a plain serial loop with no thread spawns.

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A persistent pool of worker threads parked on a shared task channel.
///
/// This is the workspace's replacement for per-call `std::thread::scope`
/// spawns: workers are created once and live for the pool's lifetime, so a
/// hot serving loop pays task handoff (one mutex push + condvar wake) per
/// dispatch instead of thread creation. The task representation is a plain
/// `(fn pointer, context pointer, index)` triple — **no boxing** — so
/// dispatching onto a warmed pool performs zero heap allocations, which the
/// fused exec path's counting-allocator tests rely on.
///
/// [`ThreadPool::broadcast`] is the only execution primitive: run `count`
/// instances of a borrowed closure, one per index, and block until all
/// complete. The caller helps drain the queue while it waits, so nested
/// broadcasts (a pool task that itself broadcasts) cannot deadlock and a
/// zero-worker pool degrades to a serial loop.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

struct PoolShared {
    queue: Mutex<TaskQueue>,
    ready: Condvar,
}

struct TaskQueue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

/// One unit of work: call `run(ctx, index)`. `ctx` points at the caller's
/// closure, which outlives the task because [`ThreadPool::broadcast`] does
/// not return until the latch counts every task complete.
#[derive(Clone, Copy)]
struct Task {
    // SAFETY: callers of `run` must pass a `ctx` that points at the
    // closure type `run` was monomorphized for, still alive (see
    // `run_one` and the latch protocol below).
    run: unsafe fn(*const (), usize),
    ctx: *const (),
    index: usize,
    latch: *const Latch,
}

// SAFETY: the pointers are only dereferenced while the originating
// `broadcast` call is blocked waiting on the latch, which keeps both the
// closure and the latch alive.
unsafe impl Send for Task {}

/// Countdown latch a `broadcast` call blocks on. Lives on the caller's
/// stack; see `complete` for the use-after-free argument.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panicked: bool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panicked: false,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panicked: bool) {
        let mut s = self.state.lock().unwrap();
        s.remaining -= 1;
        s.panicked |= panicked;
        if s.remaining == 0 {
            // Notify while still holding the lock: the waiter cannot
            // re-acquire it (and then free the latch) until this guard
            // drops, after which this thread never touches the latch again.
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut s = self.state.lock().unwrap();
        while s.remaining > 0 {
            s = self.done.wait(s).unwrap();
        }
        let panicked = s.panicked;
        drop(s);
        if panicked {
            panic!("a task dispatched via ThreadPool::broadcast panicked");
        }
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` long-lived workers. `threads <= 1`
    /// creates no workers at all; every broadcast then runs inline.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(TaskQueue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let workers = if threads > 1 { threads } else { 0 };
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kron-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            threads: threads.max(1),
            handles,
        }
    }

    /// The process-wide pool, created on first use with
    /// [`current_num_threads`] workers. This is the handle the exec row
    /// tiles and the serving runtime share, so the whole process parks on
    /// one set of workers.
    pub fn global() -> &'static ThreadPool {
        static POOL: OnceLock<ThreadPool> = OnceLock::new();
        POOL.get_or_init(|| ThreadPool::new(current_num_threads()))
    }

    /// Number of threads that can make progress concurrently (workers, or 1
    /// when the pool runs inline).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(i)` for every `i in 0..count` across the pool and blocks
    /// until all instances complete. The closure may borrow from the
    /// caller's stack. Panics in any instance are propagated to the caller
    /// after every instance has finished.
    ///
    /// Dispatch performs no heap allocation once the shared queue has grown
    /// to its high-water capacity.
    pub fn broadcast<F>(&self, count: usize, task: &F)
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return;
        }
        if self.handles.is_empty() || count == 1 {
            for i in 0..count {
                task(i);
            }
            return;
        }
        let latch = Latch::new(count);
        // SAFETY: contract — `ctx` must point at a live `F`; guaranteed
        // below because every `Task` built from `run_one::<F>` carries
        // `task` (an `&F` this frame keeps borrowed until the latch
        // drains).
        unsafe fn run_one<F: Fn(usize)>(ctx: *const (), index: usize) {
            (*ctx.cast::<F>())(index);
        }
        {
            let mut q = self.shared.queue.lock().unwrap();
            for index in 0..count {
                q.tasks.push_back(Task {
                    run: run_one::<F>,
                    ctx: (task as *const F).cast(),
                    index,
                    latch: &latch,
                });
            }
        }
        self.shared.ready.notify_all();
        // Help drain the queue while waiting: keeps the caller productive,
        // and guarantees progress for nested broadcasts.
        loop {
            let next = self.shared.queue.lock().unwrap().tasks.pop_front();
            match next {
                Some(t) => run_task(t),
                None => break,
            }
        }
        latch.wait();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn run_task(task: Task) {
    // SAFETY: `ctx` points at the closure `run` was monomorphized for,
    // kept alive by the enqueueing `broadcast` frame until the latch
    // below counts this task complete.
    let panicked = catch_unwind(AssertUnwindSafe(|| unsafe {
        (task.run)(task.ctx, task.index)
    }))
    .is_err();
    // SAFETY: the broadcast that enqueued this task is blocked on the latch
    // until this call counts down, so the pointer is alive.
    unsafe { (*task.latch).complete(panicked) };
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = shared.ready.wait(q).unwrap();
            }
        };
        run_task(task);
    }
}

/// Number of worker threads the shim will use (the host's available
/// parallelism; rayon's default thread-pool size). Cached — the underlying
/// query parses cgroup quotas and allocates on every call.
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Distributes `items` across the global persistent pool and applies `f`
/// to each.
///
/// Falls back to a serial loop when only one item or one hardware thread is
/// available, touching no worker.
fn drive<T: Send, F: Fn(T) + Send + Sync>(items: Vec<T>, f: F) {
    let pool = ThreadPool::global();
    if pool.threads() <= 1 || items.len() <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    // Each index is claimed exactly once; the mutex is how a `Fn(usize)`
    // broadcast closure takes ownership of one item.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|v| Mutex::new(Some(v))).collect();
    pool.broadcast(slots.len(), &|i| {
        let item = slots[i].lock().unwrap().take().expect("item claimed once");
        f(item);
    });
}

/// A finite parallel iterator: materializes its items, then fans them out.
pub trait ParallelIterator: Sized {
    /// The item type produced for each parallel task.
    type Item: Send;

    /// Collects every item this iterator will yield (chunk handles, not
    /// element data — cheap even for huge buffers).
    fn into_items(self) -> Vec<Self::Item>;

    /// Applies `f` to every item across the worker threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(self.into_items(), f);
    }

    /// Pairs each item with its index, like [`Iterator::enumerate`].
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Zips two parallel iterators item-by-item, like [`Iterator::zip`].
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }
}

/// Parallel-iterator adaptor produced by [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.inner.into_items().into_iter().enumerate().collect()
    }
}

/// Parallel-iterator adaptor produced by [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.a
            .into_items()
            .into_iter()
            .zip(self.b.into_items())
            .collect()
    }
}

/// Parallel chunked view of a shared slice (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Like [`slice::chunks`], but the chunks are processed in parallel.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel chunked view of a mutable slice (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Like [`slice::chunks_mut`], but the chunks are processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over immutable slice chunks.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn into_items(self) -> Vec<Self::Item> {
        self.slice.chunks(self.chunk_size).collect()
    }
}

/// Parallel iterator over mutable slice chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn into_items(self) -> Vec<Self::Item> {
        self.slice.chunks_mut(self.chunk_size).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_enumerate_covers_all_chunks() {
        let mut data = vec![0usize; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }

    #[test]
    fn zip_pairs_matching_chunks() {
        let src = [1i64, 2, 3, 4, 5, 6];
        let mut dst = vec![0i64; 6];
        src.par_chunks(2)
            .zip(dst.par_chunks_mut(2))
            .for_each(|(s, d)| {
                for (sv, dv) in s.iter().zip(d.iter_mut()) {
                    *dv = sv * 10;
                }
            });
        assert_eq!(dst, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut data: Vec<u8> = Vec::new();
        data.par_chunks_mut(4).for_each(|_| panic!("no chunks"));
    }

    #[test]
    fn broadcast_runs_every_index_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = crate::ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn broadcast_supports_borrowed_disjoint_writes() {
        let pool = crate::ThreadPool::new(3);
        let mut data = vec![0usize; 64];
        let base = data.as_mut_ptr() as usize;
        pool.broadcast(8, &|t| {
            // Disjoint 8-element ranges per task; raw pointers because the
            // closure is shared across workers.
            let ptr = base as *mut usize;
            for j in 0..8 {
                // SAFETY: task t owns elements [8t, 8t+8) exclusively,
                // and `data` outlives the blocking broadcast call.
                unsafe { *ptr.add(t * 8 + j) = t };
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 8);
        }
    }

    #[test]
    fn nested_broadcast_makes_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = crate::ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.broadcast(4, &|_| {
            pool.broadcast(4, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn broadcast_propagates_panics() {
        let pool = crate::ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(8, &|i| {
                if i == 5 {
                    panic!("task 5 failed");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked task and keeps serving.
        let mut ok = [false; 4];
        let base = ok.as_mut_ptr() as usize;
        // SAFETY: each task writes only its own index, and `ok` outlives
        // the blocking broadcast call.
        pool.broadcast(4, &|i| unsafe { *(base as *mut bool).add(i) = true });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = crate::ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut seen = vec![false; 5];
        let base = seen.as_mut_ptr() as usize;
        // SAFETY: each task writes only its own index, and `seen`
        // outlives the blocking broadcast call.
        pool.broadcast(5, &|i| unsafe { *(base as *mut bool).add(i) = true });
        assert!(seen.iter().all(|&b| b));
    }
}
