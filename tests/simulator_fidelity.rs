//! Paper-anchored fidelity tests: the simulated numbers must stay inside
//! bands around the paper's reported values, so regressions in the
//! performance model are caught — not just functional bugs.

use fastkron::baselines::{Engine, FastKronEngine, FtmmtEngine, ShuffleEngine};
use fastkron::dist::{CtfEngine, DistFastKron, DistalEngine};
use fastkron::prelude::*;

/// Asserts `value` is within `[lo, hi]`.
fn band(value: f64, lo: f64, hi: f64, what: &str) {
    assert!(
        (lo..=hi).contains(&value),
        "{what}: {value:.3} outside [{lo}, {hi}]"
    );
}

#[test]
fn figure9_fastkron_tflops_track_paper() {
    // Paper values with generous ±45% bands (ours is a model, but the
    // trend and magnitude must hold).
    let cases = [
        (8usize, 5usize, 3.9f64),
        (8, 6, 4.4),
        (16, 4, 6.8),
        (16, 5, 5.8),
        (32, 3, 8.0),
        (32, 4, 8.9),
        (64, 2, 9.6),
        (64, 3, 11.8),
        (128, 2, 12.7),
        (128, 3, 13.7),
    ];
    let engine = FastKronEngine::new(&V100);
    for (p, n, paper) in cases {
        let problem = KronProblem::uniform(1024, p, n).unwrap();
        let r = Engine::<f32>::simulate(&engine, &problem).unwrap();
        let tf = problem.flops() as f64 / r.seconds / 1e12;
        band(tf, paper * 0.55, paper * 1.45, &format!("Figure 9 {p}^{n}"));
    }
}

#[test]
fn figure9_peak_fraction_at_largest_size() {
    // Paper: "For the largest size, FastKron achieves 87% of the maximum
    // FLOPS of the GPU."
    let problem = KronProblem::uniform(1024, 128, 3).unwrap();
    let r = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem).unwrap();
    let frac = problem.flops() as f64 / r.seconds / V100.peak_flops_f32;
    band(frac, 0.75, 0.95, "peak fraction at 128^3");
}

#[test]
fn table1_transpose_fraction_band() {
    // Paper: transpose is up to 80% of GPyTorch's total.
    let engine = ShuffleEngine::new(&V100);
    for (p, n, paper_frac) in [(8usize, 6usize, 0.63), (16, 5, 0.71), (32, 4, 0.78)] {
        let problem = KronProblem::uniform(1024, p, n).unwrap();
        let r = Engine::<f32>::simulate(&engine, &problem).unwrap();
        let frac = r.step_seconds("transpose") / r.seconds;
        band(
            frac,
            paper_frac - 0.15,
            paper_frac + 0.12,
            &format!("transpose frac {p}^{n}"),
        );
    }
}

#[test]
fn table2_load_reduction_band() {
    // Paper: FastKron does 1.37x-3.10x fewer shared load transactions.
    for (p, n) in [(8usize, 6usize), (16, 5), (32, 4), (64, 3)] {
        let problem = KronProblem::uniform(1024, p, n).unwrap();
        let co = Engine::<f32>::simulate(&FtmmtEngine::new(&V100), &problem).unwrap();
        let fk = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem).unwrap();
        let red = co.stats.smem_load_transactions as f64 / fk.stats.smem_load_transactions as f64;
        band(red, 1.0, 4.5, &format!("Table 2 load reduction {p}^{n}"));
    }
}

#[test]
fn figure11_sixteen_gpu_gaps() {
    // Paper: 7.85x over CTF and 5.33x over DISTAL at 16 GPUs.
    let problem = KronProblem::uniform(2048, 64, 4).unwrap();
    let t_fk = DistFastKron::new(&V100, 16)
        .unwrap()
        .simulate::<f32>(&problem)
        .unwrap()
        .seconds;
    let t_ctf = CtfEngine::new(&V100, 16)
        .unwrap()
        .simulate::<f32>(&problem)
        .unwrap()
        .seconds;
    let t_distal = DistalEngine::new(&V100, 16)
        .unwrap()
        .simulate::<f32>(&problem)
        .unwrap()
        .seconds;
    band(t_ctf / t_fk, 4.0, 14.0, "FastKron over CTF at 16 GPUs");
    band(t_distal / t_fk, 2.5, 9.0, "FastKron over DISTAL at 16 GPUs");
}

#[test]
fn figure11_weak_scaling_efficiency() {
    // FastKron's 16-GPU throughput must be at least 5x its 1-GPU
    // throughput under weak scaling (paper achieves ~8-12x).
    let p1 = KronProblem::uniform(128, 64, 4).unwrap();
    let p16 = KronProblem::uniform(2048, 64, 4).unwrap();
    let tf = |problem: &KronProblem, g: usize| {
        let r = DistFastKron::new(&V100, g)
            .unwrap()
            .simulate::<f32>(problem)
            .unwrap();
        problem.flops() as f64 / r.seconds / 1e12
    };
    let t1 = tf(&p1, 1);
    let t16 = tf(&p16, 16);
    band(t16 / t1, 5.0, 16.0, "weak-scaling gain 1->16 GPUs");
}

#[test]
fn autotuner_beats_naive_configuration_everywhere() {
    use fastkron::kron::tuner::estimate_stats;
    use fastkron::kron::{FastKron, TileConfig};
    use gpu_sim::cost::CostModel;
    let cost = CostModel::new(&V100);
    for (m, p, n) in [(1024usize, 8usize, 5usize), (16, 64, 3), (1024, 32, 3)] {
        let problem = KronProblem::uniform(m, p, n).unwrap();
        let plan = FastKron::plan::<f32>(&problem, &V100).unwrap();
        let tuned = plan.simulate().unwrap().seconds;
        // Minimal config, one launch per factor.
        let k = problem.input_cols();
        let minimal = TileConfig::minimal(m, k, p, p);
        let stats = estimate_stats(&minimal, &V100, m, k, p, p, kron_core::DType::F32, 1);
        let t_min = cost
            .kernel_time(
                &minimal.launch(m, k, p, p, kron_core::DType::F32),
                &stats,
                kron_core::DType::F32,
            )
            .unwrap()
            .total_s
            * n as f64;
        assert!(
            tuned < t_min,
            "M={m} {p}^{n}: tuned {tuned} not better than minimal {t_min}"
        );
    }
}

#[test]
fn simulated_times_are_deterministic() {
    let problem = KronProblem::uniform(64, 16, 3).unwrap();
    let engine = FastKronEngine::new(&V100);
    let a = Engine::<f32>::simulate(&engine, &problem).unwrap();
    let b = Engine::<f32>::simulate(&engine, &problem).unwrap();
    assert_eq!(a.seconds, b.seconds);
    assert_eq!(a.stats, b.stats);
}
