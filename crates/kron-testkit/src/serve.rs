//! Deterministic multi-model serving traces and their differential
//! oracle.
//!
//! A [`ServePlan`] is everything a serving run needs, derived purely from
//! a seed: a mix of models (factor-shape chains plus integer-valued
//! factor data inside the [`crate::gen`] exactness budget), and an
//! arrival-ordered request list where each request carries its input,
//! priority, and optional deadline slack. Replaying the same seed
//! replays the same trace bit-for-bit.
//!
//! [`check_serve_plan`] is the satellite differential oracle: the trace
//! is served through **both** runtime backends (single-node and the
//! simulated multi-GPU grid), with consecutive same-model runs submitted
//! as linked batches and everything carrying its priority/deadline
//! options — and every result must equal the *per-request planned
//! execution* (`FastKron::plan` + `execute`, no batching, no runtime)
//! **bit-for-bit**. Batching, priority reordering, deadline plumbing,
//! zero-padding for the grid, and cache eviction between requests must
//! all be value-invisible; on integer-valued operands any divergence is a
//! hard failure, not rounding.

use crate::diff::DiffElement;
use crate::gen::{int_matrix, splitmix, worst_case_magnitude};
use fastkron_core::FastKron;
use gpu_sim::device::V100;
use kron_core::{Element, FactorShape, KronProblem, Matrix};
use kron_runtime::{Runtime, SubmitOptions, Ticket};

/// Factor-shape chains the model mix draws from — all comfortably inside
/// the `f32` exactness budget, covering pow2-uniform (shardable), odd,
/// rectangular, and mixed-square families.
const MODEL_POOL: &[&[(usize, usize)]] = &[
    &[(4, 4), (4, 4)],
    &[(2, 2), (2, 2), (2, 2), (2, 2)],
    &[(8, 8), (8, 8)],
    &[(3, 3), (3, 3)],
    &[(2, 3), (3, 2)],
    &[(4, 4), (4, 4), (4, 4)],
    &[(5, 5), (2, 2)],
];

/// One request of a serving trace.
#[derive(Debug, Clone)]
pub struct PlannedRequest<T: Element> {
    /// Index into [`ServePlan::models`].
    pub model: usize,
    /// The request input (`m × ∏Pᵢ` of its model).
    pub x: Matrix<T>,
    /// Service priority (higher drains first within a window).
    pub priority: u8,
    /// Deadline slack in microseconds from submission time, or `None`
    /// for no deadline. The differential oracle uses generous slacks so
    /// nothing sheds; admission tests shrink them.
    pub deadline_slack_us: Option<u64>,
}

/// A deterministic multi-model serving trace: model mix, arrival order,
/// priorities, and deadlines, all derived from `(seed)` alone.
#[derive(Debug, Clone)]
pub struct ServePlan<T: Element> {
    /// The factor sets requests are served against.
    pub models: Vec<Vec<Matrix<T>>>,
    /// The requests, in arrival order.
    pub requests: Vec<PlannedRequest<T>>,
    /// The seed the trace was derived from.
    pub seed: u64,
}

impl<T: Element> ServePlan<T> {
    /// Builds the trace for `seed` — fully deterministic.
    pub fn deterministic(seed: u64) -> Self {
        let mut state = seed ^ 0x51ed_2700_94fe_aced;
        let n_models = 2 + (splitmix(&mut state) % 3) as usize;
        let pool_base = splitmix(&mut state) as usize;
        let mut models = Vec::with_capacity(n_models);
        let mut shapes = Vec::with_capacity(n_models);
        for i in 0..n_models {
            let chain = MODEL_POOL[(pool_base + i) % MODEL_POOL.len()];
            // Budget sanity: the pool is chosen to respect it for f32.
            let probe = KronProblem::new(
                1,
                chain.iter().map(|&(p, q)| FactorShape::new(p, q)).collect(),
            )
            .expect("pool shapes are valid");
            assert!(worst_case_magnitude(&probe) < (1 << 24));
            let factors: Vec<Matrix<T>> = chain
                .iter()
                .map(|&(p, q)| int_matrix(p, q, &mut state))
                .collect();
            models.push(factors);
            shapes.push(chain);
        }

        let n_requests = 24 + (splitmix(&mut state) % 17) as usize;
        let mut requests = Vec::with_capacity(n_requests);
        for _ in 0..n_requests {
            let model = (splitmix(&mut state) % n_models as u64) as usize;
            // Mostly batchable sizes, with an occasional solo-path M.
            let m = if splitmix(&mut state).is_multiple_of(8) {
                17 + (splitmix(&mut state) % 16) as usize
            } else {
                1 + (splitmix(&mut state) % 12) as usize
            };
            let k: usize = shapes[model].iter().map(|&(p, _)| p).product();
            let x = int_matrix(m, k, &mut state);
            let priority = (splitmix(&mut state) % 4) as u8;
            let deadline_slack_us = match splitmix(&mut state) % 4 {
                // A generous minute of slack: exercises the deadline
                // plumbing without ever shedding.
                0 => Some(60_000_000),
                _ => None,
            };
            requests.push(PlannedRequest {
                model,
                x,
                priority,
                deadline_slack_us,
            });
        }
        ServePlan {
            models,
            requests,
            seed,
        }
    }
}

/// Per-request planned-execution oracle for one trace request.
fn planned_oracle<T: Element>(
    plan: &ServePlan<T>,
    req: &PlannedRequest<T>,
) -> Result<Matrix<T>, String> {
    let factors = &plan.models[req.model];
    let refs: Vec<&Matrix<T>> = factors.iter().collect();
    let shapes = factors
        .iter()
        .map(|f| FactorShape::new(f.rows(), f.cols()))
        .collect();
    let problem = KronProblem::new(req.x.rows(), shapes)
        .map_err(|e| format!("trace {} problem invalid: {e}", plan.seed))?;
    let kplan = FastKron::plan::<T>(&problem, &V100)
        .map_err(|e| format!("trace {} planning failed: {e}", plan.seed))?;
    kplan
        .execute(&req.x, &refs)
        .map_err(|e| format!("trace {} planned execute failed: {e}", plan.seed))
}

/// Serves `plan` through `runtime`, submitting consecutive same-model
/// runs as one linked batch (inheriting one deadline atomically) and
/// everything else individually, then compares every result bit-for-bit
/// against `oracles`.
fn check_on_runtime<T: Element>(
    name: &str,
    runtime: &Runtime<T>,
    plan: &ServePlan<T>,
    oracles: &[Matrix<T>],
) -> Result<(), String> {
    let models: Vec<_> = plan
        .models
        .iter()
        .map(|f| runtime.load_model(f.clone()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{name}: load_model failed on trace {}: {e}", plan.seed))?;

    let now = runtime.now_us();
    let opts = |req: &PlannedRequest<T>| SubmitOptions {
        priority: req.priority,
        deadline_us: req.deadline_slack_us.map(|slack| now + slack),
    };

    // Submit the whole trace as a burst (maximum co-batching pressure),
    // linking runs of consecutive same-model requests.
    let mut tickets: Vec<Ticket<T>> = Vec::with_capacity(plan.requests.len());
    let mut i = 0;
    while i < plan.requests.len() {
        let mut j = i + 1;
        while j < plan.requests.len()
            && plan.requests[j].model == plan.requests[i].model
            && plan.requests[j].priority == plan.requests[i].priority
            && plan.requests[j].deadline_slack_us == plan.requests[i].deadline_slack_us
        {
            j += 1;
        }
        if j - i > 1 {
            let group: Vec<_> = plan.requests[i..j]
                .iter()
                .map(|r| (&models[r.model], r.x.clone()))
                .collect();
            let linked = runtime
                .submit_linked_with(group, opts(&plan.requests[i]))
                .map_err(|e| format!("{name}: linked submit failed on trace {}: {e}", plan.seed))?;
            tickets.extend(linked);
        } else {
            let r = &plan.requests[i];
            tickets.push(
                runtime
                    .submit_with(&models[r.model], r.x.clone(), opts(r))
                    .map_err(|e| format!("{name}: submit failed on trace {}: {e}", plan.seed))?,
            );
        }
        i = j;
    }

    for (idx, (ticket, oracle)) in tickets.into_iter().zip(oracles.iter()).enumerate() {
        let got = ticket
            .wait()
            .map_err(|e| format!("{name}: request {idx} of trace {} failed: {e}", plan.seed))?;
        if got.as_slice() != oracle.as_slice() {
            let req = &plan.requests[idx];
            return Err(format!(
                "{name}: request {idx} (model {}, M={}, prio {}) of trace seed {} \
                 diverged from the per-request planned execution (bit-exact contract)\n  \
                 regression: ServePlan::<{}>::deterministic({})",
                req.model,
                req.x.rows(),
                req.priority,
                plan.seed,
                T::DTYPE.rust_name(),
                plan.seed,
            ));
        }
    }
    Ok(())
}

/// The serve-trace differential oracle: every request of `plan`, served
/// batched/prioritized through both runtime backends, must match its
/// per-request planned execution bit-for-bit. See the module docs.
pub fn check_serve_plan<T: DiffElement>(plan: &ServePlan<T>) -> Result<(), String> {
    let oracles: Vec<Matrix<T>> = plan
        .requests
        .iter()
        .map(|r| planned_oracle(plan, r))
        .collect::<Result<_, _>>()?;
    check_on_runtime("serve-single", T::single_runtime(), plan, &oracles)?;
    check_on_runtime("serve-dist", T::dist_runtime(), plan, &oracles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::KronCase;

    /// Budget guard shared with [`crate::gen`]: every pool chain must
    /// keep worst-case magnitudes exactly representable in `f32`, or the
    /// bit-exact serve-trace contract silently becomes a rounding test.
    #[test]
    fn every_pool_chain_respects_the_exactness_budget() {
        for chain in MODEL_POOL {
            let case = KronCase::<f32>::deterministic(1, chain, 0);
            assert!(
                worst_case_magnitude(&case.problem) < (1 << 24),
                "pool chain {chain:?} breaches the f32 exactness budget"
            );
        }
    }

    #[test]
    fn plans_are_deterministic_and_vary_by_seed() {
        let a = ServePlan::<f64>::deterministic(7);
        let b = ServePlan::<f64>::deterministic(7);
        assert_eq!(a.models.len(), b.models.len());
        assert_eq!(a.requests.len(), b.requests.len());
        for (ra, rb) in a.requests.iter().zip(b.requests.iter()) {
            assert_eq!(ra.model, rb.model);
            assert_eq!(ra.x, rb.x);
            assert_eq!(ra.priority, rb.priority);
            assert_eq!(ra.deadline_slack_us, rb.deadline_slack_us);
        }
        let c = ServePlan::<f64>::deterministic(8);
        assert!(
            a.requests.len() != c.requests.len()
                || a.requests
                    .iter()
                    .zip(c.requests.iter())
                    .any(|(x, y)| x.x != y.x),
            "different seeds must differ"
        );
    }

    #[test]
    fn traces_mix_models_priorities_and_sizes() {
        let plan = ServePlan::<f32>::deterministic(3);
        assert!(plan.models.len() >= 2);
        assert!(plan.requests.len() >= 24);
        let models_hit: std::collections::HashSet<_> =
            plan.requests.iter().map(|r| r.model).collect();
        assert!(models_hit.len() >= 2, "trace must mix models");
        let prios: std::collections::HashSet<_> =
            plan.requests.iter().map(|r| r.priority).collect();
        assert!(prios.len() >= 2, "trace must mix priorities");
    }

    #[test]
    fn known_trace_passes_the_differential_oracle() {
        check_serve_plan(&ServePlan::<f64>::deterministic(1)).unwrap();
    }
}
