//! Scripted stage-timeline suite: on a manual clock, every microsecond
//! the scheduler spends on a request is attributable to a configured
//! policy knob — the linger window, the retry backoff, or the breaker
//! cooldown — and the `StageTimings` on the receipt must account for
//! those legs **exactly**. Four phases, one fresh runtime each:
//!
//! 1. a fixed 300us linger window lands as `linger_us == 300`;
//! 2. a 700us retry backoff lands as `retry_us == 700` on the retried
//!    request and as `queue_us == 700` on a request submitted while the
//!    scheduler was parked in that backoff;
//! 3. a tripped breaker's cooldown is paid through two backoff parks
//!    (`retry_us == 1_400`, three attempts) and the flight recorder
//!    holds the Open → HalfOpen → Closed transition in causal order;
//! 4. a warm-plan submit on an idle runtime takes the inline bypass
//!    lane: `queue_us == 0` and `linger_us == 0` on a frozen clock,
//!    with a `Bypass` event (and no `Admit`) on the flight recorder.
//!
//! Exactness is what's under test: each phase advances virtual time by
//! precisely the scripted amount at a deterministic sync point (the
//! linger gauge, the retry counter), so any drift in how the scheduler
//! stamps `enqueued/drained/window-close` shows up as a failed
//! microsecond count, not a tolerance miss.

use std::sync::Arc;

use kron_core::Matrix;
use kron_runtime::{
    Backend, BreakerPolicy, BreakerState, Clock, FaultPlan, ManualClock, RetryPolicy, Runtime,
    RuntimeConfig, ServeEventKind, Ticket,
};
use kron_testkit::ExpectedTimings;

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 5 * r * cols + 2 * c) % 17) as f64 - 8.0
    })
}

fn model_factors(shapes: &[(usize, usize)], seed: usize) -> Vec<Matrix<f64>> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| seq_matrix(p, q, seed + 5 * i + 1))
        .collect()
}

fn manual_runtime(cfg: RuntimeConfig) -> (Runtime, Arc<ManualClock>) {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig { clock, ..cfg });
    (runtime, time)
}

/// Blocks (yielding, clock untouched) until `probe` observes the
/// scheduler reaching a scripted sync point.
fn sync_on(probe: impl Fn() -> bool) {
    while !probe() {
        std::thread::yield_now();
    }
}

fn expect(ticket: Ticket<f64>, label: &str, want: ExpectedTimings) {
    let (_, receipt) = ticket.wait_with_receipt().unwrap();
    want.check(label, &receipt).unwrap();
}

/// Phase 1 — the linger window. A fixed (non-adaptive) 300us window
/// opens when the first request of a cycle is drained; the 300us the
/// test advances to close it must land on the receipt as `linger_us`,
/// with zero queue time (the request was drained the instant it
/// arrived, on a frozen clock).
#[test]
fn fixed_linger_window_is_charged_as_linger_microseconds() {
    let (runtime, time) = manual_runtime(RuntimeConfig {
        batch_linger_us: 300,
        adaptive_linger: false,
        ..RuntimeConfig::default()
    });
    let model = runtime
        .load_model(model_factors(&[(4, 4), (4, 4)], 1))
        .unwrap();

    time.set_us(1_000);
    let a = runtime
        .submit(&model, seq_matrix(2, model.input_cols(), 10))
        .unwrap();
    // The gauge is stored when the window opens — once it reads 300 the
    // request is drained and the scheduler is parked in the window.
    sync_on(|| runtime.stats().current_linger_us == 300);
    time.advance_us(300);

    expect(
        a,
        "phase 1 lingered request",
        ExpectedTimings {
            queue_us: 0,
            linger_us: 300,
            retry_us: 0,
            attempts: 1,
        },
    );
}

/// Phase 2 — the retry backoff. A scripted device fault fails the first
/// attempt; the scheduler parks for the 700us backoff. The retried
/// request is charged those 700us as `retry_us`; a second request
/// submitted *while the scheduler was parked* is charged the same 700us
/// as `queue_us` (it sat in the channel until the park ended).
#[test]
fn retry_backoff_is_charged_as_retry_and_queue_microseconds() {
    let (runtime, time) = manual_runtime(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        batch_linger_us: 0,
        backend: Backend::Distributed {
            gpus: 2,
            p2p: false,
        },
        retry: RetryPolicy {
            max_attempts: 2,
            backoff_us: 700,
            degrade: false,
        },
        ..RuntimeConfig::default()
    });
    let model = runtime
        .load_model(model_factors(&[(4, 4), (4, 4)], 3))
        .unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch(0, 0))
        .unwrap();

    time.set_us(5_000);
    let b = runtime
        .submit(&model, seq_matrix(4, model.input_cols(), 20))
        .unwrap();
    // retries increments before the backoff park: once it reads 1 the
    // clock (frozen at 5_000) pins the park's deadline at 5_700.
    sync_on(|| runtime.stats().retries == 1);
    let c = runtime
        .submit(&model, seq_matrix(2, model.input_cols(), 30))
        .unwrap();
    time.advance_us(700);

    expect(
        b,
        "phase 2 retried request",
        ExpectedTimings {
            queue_us: 0,
            linger_us: 0,
            retry_us: 700,
            attempts: 2,
        },
    );
    expect(
        c,
        "phase 2 parked-behind-backoff request",
        ExpectedTimings {
            queue_us: 700,
            linger_us: 0,
            retry_us: 0,
            attempts: 1,
        },
    );
}

/// Phase 3 — the breaker cooldown. Two scripted faults on device 0 trip
/// its breaker (`trip_after: 2`); the third attempt starts after the
/// 400us cooldown elapsed inside the second 700us backoff, so the
/// breaker relaxes to half-open, the rebuilt full-width grid serves,
/// and the success closes the breaker. The request is charged exactly
/// the two backoffs (`retry_us == 1_400`) and the flight recorder holds
/// Open -> HalfOpen -> Closed in causal order.
#[test]
fn breaker_cooldown_trip_and_recovery_have_exact_timeline() {
    let (runtime, time) = manual_runtime(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        batch_linger_us: 0,
        backend: Backend::Distributed {
            gpus: 2,
            p2p: false,
        },
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_us: 700,
            degrade: false,
        },
        breaker: BreakerPolicy {
            trip_after: 2,
            cooldown_us: 400,
        },
        ..RuntimeConfig::default()
    });
    let model = runtime
        .load_model(model_factors(&[(4, 4), (4, 4)], 5))
        .unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch_repeat(0, 0, 2))
        .unwrap();

    time.set_us(10_000);
    let g = runtime
        .submit(&model, seq_matrix(4, model.input_cols(), 40))
        .unwrap();
    // Attempt 1 fails at 10_000 (consecutive failures: 1); the first
    // backoff parks until 10_700.
    sync_on(|| runtime.stats().retries == 1);
    time.advance_us(700);
    // Attempt 2 fails at 10_700 and trips the breaker open; the second
    // backoff parks until 11_400 — past the 400us cooldown.
    sync_on(|| runtime.stats().retries == 2);
    time.advance_us(700);

    let (_, receipt) = g.wait_with_receipt().unwrap();
    ExpectedTimings {
        queue_us: 0,
        linger_us: 0,
        retry_us: 1_400,
        attempts: 3,
    }
    .check("phase 3 breaker-recovery request", &receipt)
    .unwrap();
    assert!(receipt.grid.is_some(), "half-open rebuild stays sharded");

    let stats = runtime.stats();
    assert_eq!(stats.retries, 2, "stats: {stats}");
    assert_eq!(stats.breaker_trips, 1, "stats: {stats}");
    assert_eq!(
        stats.served,
        stats.batched_requests + stats.solo_requests + stats.error_replies,
        "decomposition holds under chaos: {stats}"
    );

    // The breaker's life cycle is on the flight recorder, in order.
    let events = runtime.drain_events();
    let breaker = |want: BreakerState| {
        events
            .iter()
            .position(|e| matches!(e.kind, ServeEventKind::Breaker { gpu: 0, to } if to == want))
    };
    let open = breaker(BreakerState::Open).expect("trip recorded");
    let half_open = breaker(BreakerState::HalfOpen).expect("cooldown relax recorded");
    let closed = breaker(BreakerState::Closed).expect("recovery close recorded");
    assert!(open < half_open, "tripped before the cooldown relaxed");
    assert!(half_open < closed, "relaxed before the success closed it");
    assert_eq!(events[open].at_us, 10_700, "tripped when attempt 2 failed");
    assert_eq!(events[half_open].at_us, 11_400, "relaxed at attempt 3");

    // The health probe agrees: recovered, closed, one trip on record.
    let health = runtime.device_health();
    assert_eq!(health[0].state, BreakerState::Closed);
    assert_eq!(health[0].consecutive_failures, 0);
    assert_eq!(health[0].trips, 1);
    assert_eq!(health[0].metrics.faults, 2, "both scripted faults blamed");
}

/// Phase 4 — the bypass lane. With the plan warm and the runtime idle,
/// a lone submit never reaches the scheduler: enqueue, drain, and
/// window close all collapse to the submit instant on the submitting
/// thread, so the queue and linger stages are exactly zero even though
/// the clock never advances past the submit. The flight recorder holds
/// a `Bypass` event in place of an `Admit` for the serve.
#[test]
fn bypassed_request_charges_zero_queue_and_linger() {
    let (runtime, time) = manual_runtime(RuntimeConfig {
        batch_linger_us: 0,
        adaptive_linger: false,
        ..RuntimeConfig::default()
    });
    let model = runtime
        .load_model(model_factors(&[(4, 4), (4, 4)], 7))
        .unwrap();

    time.set_us(2_000);
    // Cold: the first request builds the plan through the scheduler.
    let warm = runtime
        .submit(&model, seq_matrix(2, model.input_cols(), 40))
        .unwrap();
    warm.wait().unwrap();
    runtime.drain_events();

    // Warm plan, empty queue, frozen clock: the inline lane serves this
    // on the submitting thread before `submit` even returns.
    let t = runtime
        .submit(&model, seq_matrix(2, model.input_cols(), 41))
        .unwrap();
    assert_eq!(runtime.stats().bypassed_requests, 1, "served inline");
    expect(
        t,
        "phase 4 bypassed request",
        ExpectedTimings {
            queue_us: 0,
            linger_us: 0,
            retry_us: 0,
            attempts: 1,
        },
    );
    let events = runtime.drain_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::Bypass { rows: 2, .. })),
        "bypass event on the record: {events:?}"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::Admit { .. })),
        "a bypassed serve is never admitted to a window: {events:?}"
    );
}
