//! The public runtime: models, request submission, tickets, sessions, and
//! graceful shutdown. The scheduler thread that serves requests lives in
//! [`crate::scheduler`].

use crate::scheduler::Scheduler;
use crossbeam::channel::{unbounded, Sender};
use gpu_sim::device::{DeviceSpec, V100};
use kron_core::{Element, FactorShape, KronError, KronProblem, Matrix, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Maximum rows one batched execute covers; also the row capacity the
    /// cached batch workspaces are sized for.
    pub max_batch_rows: usize,
    /// Requests with `M` at or below this are eligible for cross-request
    /// batching; larger requests are served solo (they already saturate
    /// the fused path on their own). Clamped to `max_batch_rows`.
    pub batch_max_m: usize,
    /// Maximum requests drained from the queue per scheduling cycle (the
    /// batch window).
    pub max_queue: usize,
    /// How long the scheduler lingers after the first request of a cycle
    /// to let more requests arrive and coalesce (microseconds; `0`
    /// disables). Trades per-request latency for batch occupancy — most
    /// useful on hosts where clients and the scheduler contend for cores,
    /// where serving would otherwise degenerate into lockstep
    /// one-request cycles.
    pub batch_linger_us: u64,
    /// Device model plans are tuned against (used for plan caching and
    /// simulated pricing; CPU execution is unaffected numerically).
    pub device: DeviceSpec,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_batch_rows: 256,
            batch_max_m: 32,
            max_queue: 1024,
            batch_linger_us: 0,
            device: V100.clone(),
        }
    }
}

/// Counters describing what a runtime has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Requests accepted by `submit`/`execute`/`Session::call`.
    pub submitted: u64,
    /// Requests completed (successfully or with an error reply).
    pub served: u64,
    /// Multi-request fused executes performed.
    pub batches: u64,
    /// Requests served through a multi-request batch.
    pub batched_requests: u64,
    /// Requests served by a dedicated execute (large `M`, or a batch
    /// window containing a single request).
    pub solo_requests: u64,
    /// Requests whose plan/workspace came from the cache.
    pub plan_hits: u64,
    /// Cache misses (a plan was built and tuned).
    pub plan_misses: u64,
}

/// Shared atomic counters behind [`RuntimeStats`].
#[derive(Default)]
pub(crate) struct StatsInner {
    pub(crate) submitted: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) solo_requests: AtomicU64,
    pub(crate) plan_hits: AtomicU64,
    pub(crate) plan_misses: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            solo_requests: self.solo_requests.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
        }
    }
}

/// A loaded set of Kronecker factors requests are served against.
///
/// Cross-request batching stacks inputs row-wise, which is only valid when
/// the requests share the *same factor values* — so batching is keyed on
/// model identity, the serving analog of "register the model once, then
/// send inputs".
#[derive(Clone)]
pub struct Model<T: Element> {
    pub(crate) inner: Arc<ModelInner<T>>,
}

pub(crate) struct ModelInner<T: Element> {
    pub(crate) id: u64,
    factors: Box<[Matrix<T>]>,
    pub(crate) shapes: Vec<FactorShape>,
    k: usize,
    l: usize,
}

impl<T: Element> ModelInner<T> {
    pub(crate) fn factors(&self) -> &[Matrix<T>] {
        &self.factors
    }

    pub(crate) fn input_cols(&self) -> usize {
        self.k
    }

    pub(crate) fn output_cols(&self) -> usize {
        self.l
    }
}

impl<T: Element> Model<T> {
    /// Columns a request's `X` must have (`∏ᵢ Pᵢ`).
    pub fn input_cols(&self) -> usize {
        self.inner.k
    }

    /// Columns of every result (`∏ᵢ Qᵢ`).
    pub fn output_cols(&self) -> usize {
        self.inner.l
    }

    /// Number of Kronecker factors.
    pub fn num_factors(&self) -> usize {
        self.inner.shapes.len()
    }

    /// The factor shapes, in Kronecker-product order.
    pub fn shapes(&self) -> &[FactorShape] {
        &self.inner.shapes
    }
}

/// One-shot result slot a request's reply travels through. Reused across
/// calls by [`Session`], freshly allocated per [`Ticket`].
pub(crate) struct Slot<T: Element> {
    inner: Mutex<SlotInner<T>>,
    ready: Condvar,
}

struct SlotInner<T: Element> {
    result: Option<(Result<()>, Matrix<T>, Matrix<T>)>,
    waiting: bool,
}

impl<T: Element> Slot<T> {
    fn new() -> Self {
        Slot {
            inner: Mutex::new(SlotInner {
                result: None,
                waiting: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Deposits a reply. Notifies only when a waiter has registered, so
    /// pipelined clients (submit many, wait later) skip the wakeup
    /// syscall on all but the slot they are blocked on.
    pub(crate) fn fill(&self, result: Result<()>, x: Matrix<T>, y: Matrix<T>) {
        let mut s = self.inner.lock().unwrap();
        debug_assert!(s.result.is_none(), "slot filled twice");
        s.result = Some((result, x, y));
        if s.waiting {
            // Notify while holding the lock so the waiter cannot observe
            // the result and drop the slot before this notify lands.
            self.ready.notify_all();
        }
    }

    fn take_blocking(&self) -> (Result<()>, Matrix<T>, Matrix<T>) {
        let mut s = self.inner.lock().unwrap();
        while s.result.is_none() {
            s.waiting = true;
            s = self.ready.wait(s).unwrap();
        }
        s.waiting = false;
        s.result.take().expect("checked above")
    }
}

/// One queued request: input, pre-shaped output, and the reply slot.
pub(crate) struct Request<T: Element> {
    pub(crate) model: Arc<ModelInner<T>>,
    pub(crate) x: Matrix<T>,
    pub(crate) y: Matrix<T>,
    pub(crate) slot: Arc<Slot<T>>,
}

/// Messages on the scheduler's channel. `Shutdown` is always the final
/// message (the gate guarantees no request is sent after it).
pub(crate) enum Msg<T: Element> {
    /// A request to serve.
    Request(Request<T>),
    /// Drain what is queued, then exit.
    Shutdown,
}

/// State shared between the runtime handle and its [`Session`]s.
pub(crate) struct Shared<T: Element> {
    tx: Sender<Msg<T>>,
    /// `true` once shutdown began. Sends happen *while holding* this
    /// mutex, so every request sent before the scheduler's final drain is
    /// guaranteed to be in the queue ahead of `Shutdown` — nothing is
    /// ever silently dropped and no waiter can hang.
    gate: Mutex<bool>,
    stats: Arc<StatsInner>,
}

impl<T: Element> Shared<T> {
    fn send_request(&self, req: Request<T>) -> Result<()> {
        let closed = self.gate.lock().unwrap();
        if *closed {
            return Err(KronError::Shutdown);
        }
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let _ = self.tx.send(Msg::Request(req));
        drop(closed);
        Ok(())
    }
}

/// Handle to one result in flight; produced by [`Runtime::submit`].
pub struct Ticket<T: Element> {
    slot: Arc<Slot<T>>,
}

impl<T: Element> Ticket<T> {
    /// Blocks until the request completes and returns its result matrix.
    ///
    /// # Errors
    /// Whatever execution error the scheduler replied with.
    pub fn wait(self) -> Result<Matrix<T>> {
        let (result, _x, y) = self.slot.take_blocking();
        result.map(|()| y)
    }
}

/// A synchronous serving connection with a reusable reply slot and
/// caller-recycled buffers: the allocation-free way to call the runtime.
///
/// One session serves one request at a time (like one connection) —
/// [`Session::call`] takes `&mut self` so the reply slot can never carry
/// two requests at once; concurrency comes from holding several sessions
/// on several threads.
pub struct Session<T: Element> {
    shared: Arc<Shared<T>>,
    slot: Arc<Slot<T>>,
}

impl<T: Element> Session<T> {
    /// Serves one request synchronously, recycling the caller's buffers:
    /// `x` is the input, `y` receives the result (it must already be
    /// `x.rows() × model.output_cols()`), and both are returned for
    /// reuse. After the first call of a given shape, a call performs zero
    /// heap allocations end to end.
    ///
    /// # Errors
    /// Shape mismatches, or [`KronError::Shutdown`] once the runtime has
    /// shut down. Errors consume the buffers.
    pub fn call(
        &mut self,
        model: &Model<T>,
        x: Matrix<T>,
        y: Matrix<T>,
    ) -> Result<(Matrix<T>, Matrix<T>)> {
        validate_request(model, &x)?;
        if y.rows() != x.rows() || y.cols() != model.output_cols() {
            return Err(KronError::ShapeMismatch {
                expected: format!("Y {}×{}", x.rows(), model.output_cols()),
                found: format!("Y {}×{}", y.rows(), y.cols()),
            });
        }
        self.shared.send_request(Request {
            model: Arc::clone(&model.inner),
            x,
            y,
            slot: Arc::clone(&self.slot),
        })?;
        let (result, x, y) = self.slot.take_blocking();
        result.map(|()| (x, y))
    }
}

fn validate_request<T: Element>(model: &Model<T>, x: &Matrix<T>) -> Result<()> {
    if x.rows() == 0 {
        return Err(KronError::EmptyDimension {
            what: "request with M = 0 rows".into(),
        });
    }
    if x.cols() != model.input_cols() {
        return Err(KronError::ShapeMismatch {
            expected: format!("X with {} cols", model.input_cols()),
            found: format!("X with {} cols", x.cols()),
        });
    }
    Ok(())
}

/// A persistent Kron-Matmul serving runtime: a scheduler thread batching
/// same-model requests, a shape-keyed plan/workspace cache, and compute on
/// the process-wide persistent worker pool. See the crate docs for the
/// architecture.
pub struct Runtime<T: Element> {
    shared: Arc<Shared<T>>,
    scheduler: Option<JoinHandle<()>>,
    next_model_id: AtomicU64,
    cfg: RuntimeConfig,
}

impl<T: Element> Runtime<T> {
    /// Starts a runtime with the given configuration (spawns the
    /// scheduler thread).
    pub fn new(mut cfg: RuntimeConfig) -> Self {
        cfg.max_batch_rows = cfg.max_batch_rows.max(1);
        cfg.batch_max_m = cfg.batch_max_m.min(cfg.max_batch_rows);
        cfg.max_queue = cfg.max_queue.max(1);
        let (tx, rx) = unbounded();
        let stats = Arc::new(StatsInner::default());
        let scheduler = Scheduler::new(rx, cfg.clone(), Arc::clone(&stats));
        let handle = std::thread::Builder::new()
            .name("kron-runtime-scheduler".into())
            .spawn(move || scheduler.run())
            .expect("spawn scheduler thread");
        Runtime {
            shared: Arc::new(Shared {
                tx,
                gate: Mutex::new(false),
                stats,
            }),
            scheduler: Some(handle),
            next_model_id: AtomicU64::new(0),
            cfg,
        }
    }

    /// Starts a runtime with [`RuntimeConfig::default`].
    pub fn with_defaults() -> Self {
        Runtime::new(RuntimeConfig::default())
    }

    /// The configuration this runtime is running with (after clamping).
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Registers a factor set to serve requests against.
    ///
    /// # Errors
    /// [`KronError::NoFactors`] / [`KronError::EmptyDimension`] for
    /// degenerate factor sets.
    pub fn load_model(&self, factors: Vec<Matrix<T>>) -> Result<Model<T>> {
        let shapes: Vec<FactorShape> = factors
            .iter()
            .map(|f| FactorShape::new(f.rows(), f.cols()))
            .collect();
        // Validates non-empty factors and non-zero dimensions.
        let probe = KronProblem::new(1, shapes.clone())?;
        let (k, l) = (probe.input_cols(), probe.output_cols());
        Ok(Model {
            inner: Arc::new(ModelInner {
                id: self.next_model_id.fetch_add(1, Ordering::Relaxed),
                factors: factors.into_boxed_slice(),
                shapes,
                k,
                l,
            }),
        })
    }

    /// Enqueues `Y = X · (F1 ⊗ … ⊗ FN)` and returns a [`Ticket`] for the
    /// result. Same-model small-`M` submissions in flight together are
    /// batched into one fused execute.
    ///
    /// # Errors
    /// Shape mismatches against the model, or [`KronError::Shutdown`].
    pub fn submit(&self, model: &Model<T>, x: Matrix<T>) -> Result<Ticket<T>> {
        validate_request(model, &x)?;
        let y = Matrix::zeros(x.rows(), model.output_cols());
        let slot = Arc::new(Slot::new());
        self.shared.send_request(Request {
            model: Arc::clone(&model.inner),
            x,
            y,
            slot: Arc::clone(&slot),
        })?;
        Ok(Ticket { slot })
    }

    /// Synchronous convenience: submit and wait.
    ///
    /// # Errors
    /// As [`Runtime::submit`].
    pub fn execute(&self, model: &Model<T>, x: Matrix<T>) -> Result<Matrix<T>> {
        self.submit(model, x)?.wait()
    }

    /// Opens a [`Session`]: a synchronous connection with a reusable reply
    /// slot, for allocation-free steady-state serving. Sessions outlive
    /// shutdown gracefully (calls then return [`KronError::Shutdown`]).
    pub fn session(&self) -> Session<T> {
        Session {
            shared: Arc::clone(&self.shared),
            slot: Arc::new(Slot::new()),
        }
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.stats.snapshot()
    }

    /// Graceful shutdown: every request already accepted is served, then
    /// the scheduler exits and this call returns. Subsequent calls through
    /// surviving [`Session`]s fail with [`KronError::Shutdown`]. Dropping
    /// the runtime does the same implicitly.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if let Some(handle) = self.scheduler.take() {
            {
                let mut closed = self.shared.gate.lock().unwrap();
                *closed = true;
                // Send Shutdown while holding the gate: it is provably the
                // last message on the channel.
                let _ = self.shared.tx.send(Msg::Shutdown);
            }
            let _ = handle.join();
        }
    }
}

impl<T: Element> Drop for Runtime<T> {
    fn drop(&mut self) {
        self.close();
    }
}
