//! The differential oracle: every public execution path in the workspace
//! against the naive reference, **bit-for-bit**.
//!
//! On the integer-valued cases [`crate::gen`] produces, every engine must
//! return the *exact same floats* (see the exactness argument there), so
//! disagreement at any index is a bug, not rounding. The paths compared:
//!
//! | name                | entry point |
//! |---------------------|-------------|
//! | `shuffle`           | `kron_core::shuffle::kron_matmul_shuffle` |
//! | `ftmmt`             | `kron_core::ftmmt::kron_matmul_ftmmt` |
//! | `fused`             | `fastkron_core::kron_matmul_fused` |
//! | `workspace-serial`  | `Workspace` pinned to `(1, 1)` |
//! | `workspace-tiles`   | `Workspace` pinned to 4 row tiles |
//! | `workspace-wide`    | `Workspace` pinned to a `2×2` wide grid |
//! | `planned`           | `FastKron::plan` + `KronPlan::execute` |
//! | `runtime-submit`    | `Runtime::submit`/`Ticket::wait`, single-node |
//! | `runtime-session`   | `Session::call`, single-node |
//! | `dist-runtime`      | `Runtime` on the `Distributed` backend |
//! | `dist-direct`       | `DistFastKron::execute` (shardable shapes) |
//!
//! The two runtimes are shared process-wide (`OnceLock`) **across both
//! dtypes** — the serving API is dtype-erased, so one single-node runtime
//! and one distributed runtime serve every `f32` and `f64` case in the
//! sweep through one scheduler and one plan cache. A property sweep
//! therefore pays model-load and plan-tuning once per shape, not once per
//! case, and the runtimes see genuinely mixed-dtype traffic across
//! cases — closer to real serving than a runtime-per-case (or
//! runtime-per-dtype) would be.

use crate::gen::KronCase;
use fastkron_core::{kron_matmul_fused, FastKron, Workspace};
use gpu_sim::device::V100;
use kron_core::naive::kron_matmul_naive;
use kron_core::{Element, Matrix};
use kron_dist::DistFastKron;
use kron_runtime::{Backend, Runtime, RuntimeConfig, ServeElement};
use std::sync::OnceLock;

/// Simulated GPUs the shared distributed runtime shards over.
pub const DIST_GPUS: usize = 4;

/// Scalar types the differential harness sweeps: the [`ServeElement`]s
/// (`f32`, `f64`). Kept as a named trait so test suites can stay generic
/// over "everything the harness covers".
pub trait DiffElement: ServeElement {}

impl DiffElement for f32 {}
impl DiffElement for f64 {}

fn runtime_config(backend: Backend) -> RuntimeConfig {
    RuntimeConfig {
        max_batch_rows: 64,
        batch_max_m: 16,
        max_queue: 256,
        backend,
        ..RuntimeConfig::default()
    }
}

/// The process-wide single-node runtime, shared by every dtype.
pub fn single_runtime() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime::new(runtime_config(Backend::SingleNode)))
}

/// The process-wide distributed runtime ([`DIST_GPUS`] simulated GPUs),
/// shared by every dtype.
pub fn dist_runtime() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| {
        Runtime::new(runtime_config(Backend::Distributed {
            gpus: DIST_GPUS,
            p2p: false,
        }))
    })
}

/// Exact comparison with a diagnostic naming the first mismatch and the
/// case's regression literal.
fn expect_same<T: Element>(
    engine: &str,
    got: &Matrix<T>,
    oracle: &Matrix<T>,
    case: &KronCase<T>,
) -> Result<(), String> {
    if got.rows() != oracle.rows() || got.cols() != oracle.cols() {
        return Err(format!(
            "{engine}: shape {}×{} != oracle {}×{}\n  regression: {}",
            got.rows(),
            got.cols(),
            oracle.rows(),
            oracle.cols(),
            case.regression_literal()
        ));
    }
    for (i, (g, o)) in got
        .as_slice()
        .iter()
        .zip(oracle.as_slice().iter())
        .enumerate()
    {
        if g != o {
            let (r, c) = (i / oracle.cols(), i % oracle.cols());
            return Err(format!(
                "{engine}: mismatch at ({r},{c}): got {g}, oracle {o} (bit-exact contract)\n  \
                 case: {}\n  regression: {}",
                case.problem,
                case.regression_literal()
            ));
        }
    }
    Ok(())
}

/// Whether the `DIST_GPUS`-GPU grid can shard this problem directly (the
/// `dist-direct` path has no local fallback, unlike the runtime backend).
fn direct_shardable<T: Element>(case: &KronCase<T>) -> bool {
    DistFastKron::new(&V100, DIST_GPUS)
        .and_then(|e| e.shardable(&case.problem))
        .is_ok()
}

/// Runs every library-level execution path (no serving runtime) on `case`
/// and compares bit-for-bit against the naive oracle.
pub fn check_library_paths<T: Element>(case: &KronCase<T>) -> Result<(), String> {
    let refs = case.factor_refs();
    let oracle = kron_matmul_naive(&case.x, &refs).map_err(|e| format!("naive failed: {e}"))?;

    let shuffle = kron_core::shuffle::kron_matmul_shuffle(&case.x, &refs)
        .map_err(|e| format!("shuffle failed: {e}"))?;
    expect_same("shuffle", &shuffle, &oracle, case)?;

    let ftmmt = kron_core::ftmmt::kron_matmul_ftmmt(&case.x, &refs)
        .map_err(|e| format!("ftmmt failed: {e}"))?;
    expect_same("ftmmt", &ftmmt, &oracle, case)?;

    let fused = kron_matmul_fused(&case.x, &refs).map_err(|e| format!("fused failed: {e}"))?;
    expect_same("fused", &fused, &oracle, case)?;

    // The three pinned Workspace decompositions: serial, row tiles, wide.
    for (name, partition) in [
        ("workspace-serial", (1, 1)),
        ("workspace-tiles", (4, 1)),
        ("workspace-wide", (2, 2)),
    ] {
        let mut ws = Workspace::new(&case.problem);
        ws.set_partition(Some(partition));
        let got = ws
            .execute(&case.x, &refs)
            .map_err(|e| format!("{name} failed: {e}"))?;
        expect_same(name, &got, &oracle, case)?;
    }

    let plan =
        FastKron::plan::<T>(&case.problem, &V100).map_err(|e| format!("planning failed: {e}"))?;
    let planned = plan
        .execute(&case.x, &refs)
        .map_err(|e| format!("planned failed: {e}"))?;
    expect_same("planned", &planned, &oracle, case)?;

    if direct_shardable(case) {
        let dist = DistFastKron::new(&V100, DIST_GPUS).expect("power-of-two grid");
        let got = dist
            .execute(&case.x, &refs)
            .map_err(|e| format!("dist-direct failed: {e}"))?;
        expect_same("dist-direct", &got, &oracle, case)?;
    }
    Ok(())
}

/// Runs every serving-runtime path (both backends, ticket and session
/// APIs) on `case` and compares bit-for-bit against the naive oracle.
pub fn check_runtime_paths<T: DiffElement>(case: &KronCase<T>) -> Result<(), String> {
    let refs = case.factor_refs();
    let oracle = kron_matmul_naive(&case.x, &refs).map_err(|e| format!("naive failed: {e}"))?;

    for (name, runtime) in [
        ("runtime-single", single_runtime()),
        ("dist-runtime", dist_runtime()),
    ] {
        let model = runtime
            .load_model(case.factors.clone())
            .map_err(|e| format!("{name} load_model failed: {e}"))?;

        // Ticket path (with the stats variant so it stays covered).
        let ticket = runtime
            .submit(&model, case.x.clone())
            .map_err(|e| format!("{name} submit failed: {e}"))?;
        let (got, _stats) = ticket
            .wait_with_stats()
            .map_err(|e| format!("{name} wait failed: {e}"))?;
        expect_same(name, &got, &oracle, case)?;

        // Session path (buffer-recycling synchronous call).
        let mut session = runtime.session();
        let y = Matrix::zeros(case.x.rows(), model.output_cols());
        let (_x, y) = session
            .call(&model, case.x.clone(), y)
            .map_err(|e| format!("{name} session call failed: {e}"))?;
        expect_same(&format!("{name}-session"), &y, &oracle, case)?;
    }
    Ok(())
}

/// The full differential check: every library path and every runtime path.
pub fn check_all_paths<T: DiffElement>(case: &KronCase<T>) -> Result<(), String> {
    check_library_paths(case)?;
    check_runtime_paths(case)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::KronCase;

    #[test]
    fn known_good_case_passes_everywhere() {
        let case = KronCase::<f64>::deterministic(4, &[(4, 4), (4, 4), (4, 4)], 11);
        check_all_paths(&case).unwrap();
        let case = KronCase::<f32>::deterministic(4, &[(4, 4), (4, 4)], 3);
        check_all_paths(&case).unwrap();
    }

    #[test]
    fn rectangular_case_passes_with_dist_fallback() {
        // Not shardable: the distributed runtime must fall back locally
        // and still agree bit-for-bit.
        let case = KronCase::<f64>::deterministic(3, &[(2, 5), (3, 2)], 9);
        check_all_paths(&case).unwrap();
        let stats = dist_runtime().stats();
        assert!(stats.local_fallbacks > 0, "expected a local fallback");
    }

    #[test]
    fn mismatch_diagnostics_name_engine_and_literal() {
        let case = KronCase::<f64>::deterministic(2, &[(2, 2)], 5);
        let refs = case.factor_refs();
        let oracle = kron_core::naive::kron_matmul_naive(&case.x, &refs).unwrap();
        let mut bad = oracle.clone();
        bad[(1, 1)] += 1.0;
        let err = expect_same("shuffle", &bad, &oracle, &case).unwrap_err();
        assert!(err.contains("shuffle: mismatch at (1,1)"), "{err}");
        assert!(
            err.contains("KronCase::<f64>::deterministic(2, &[(2, 2)], 5)"),
            "{err}"
        );
    }

    #[test]
    fn direct_shardable_classifies() {
        assert!(direct_shardable(&KronCase::<f64>::deterministic(
            4,
            &[(4, 4), (4, 4), (4, 4)],
            1
        )));
        // Rectangular → not directly shardable.
        assert!(!direct_shardable(&KronCase::<f64>::deterministic(
            4,
            &[(2, 3)],
            1
        )));
        // M not divisible by GM = 2 → not directly shardable.
        assert!(!direct_shardable(&KronCase::<f64>::deterministic(
            3,
            &[(4, 4), (4, 4)],
            1
        )));
    }
}
