//! Self-tests: the explorer must catch classic races and verify classic
//! protocols. Each "catches" test is the crate's own mutation guard —
//! if the checker goes blind, these fail.

use crate::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use crate::{model, thread, Builder, FailureKind};

fn small() -> Builder {
    Builder {
        preemption_bound: 2,
        max_iterations: 200_000,
        max_branches: 2_000,
        random_walks: 500,
        ..Builder::default()
    }
}

#[test]
fn catches_load_store_counter_race() {
    // Two threads do load-then-store increments: the lost update only
    // appears when one thread is preempted between its load and store.
    let failure = small()
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        })
        .expect_err("the lost-update interleaving must be found");
    assert!(matches!(failure.kind, FailureKind::Panic), "{failure}");
}

#[test]
fn verifies_cas_counter() {
    let report = small()
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || loop {
                        let v = n.load(Ordering::SeqCst);
                        if n.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            break;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        })
        .expect("CAS increments never lose updates");
    assert!(report.exhaustive, "small model should exhaust: {report:?}");
}

#[test]
fn verifies_release_acquire_message_passing() {
    model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            // Acquire synchronized with the release: the payload must be
            // visible, not the stale initial store.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

#[test]
fn catches_relaxed_message_passing() {
    // Same protocol with a relaxed flag: the model must expose the stale
    // payload read (flag visible before data).
    let failure = small()
        .check(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        })
        .expect_err("relaxed flag must admit the stale-data interleaving");
    assert!(matches!(failure.kind, FailureKind::Panic), "{failure}");
}

#[test]
fn verifies_fenced_message_passing() {
    model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

#[test]
fn verifies_mutex_counter() {
    model(|| {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

#[test]
fn catches_lock_order_deadlock() {
    let failure = small()
        .check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            t.join().unwrap();
        })
        .expect_err("AB/BA lock order must deadlock under some schedule");
    assert!(matches!(failure.kind, FailureKind::Deadlock), "{failure}");
}

#[test]
fn verifies_condvar_handshake() {
    model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock().unwrap();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
}

#[test]
fn catches_missed_condvar_predicate() {
    // Waiting without re-checking the predicate before the first wait:
    // if the producer signals before the consumer parks, the notify is
    // lost and the consumer sleeps forever.
    let failure = small()
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (lock, cv) = &*p2;
                let mut ready = lock.lock().unwrap();
                *ready = true;
                cv.notify_one();
                drop(ready);
            });
            let (lock, cv) = &*pair;
            let ready = lock.lock().unwrap();
            // BUG (on purpose): no `while !*ready` guard.
            let ready = cv.wait(ready).unwrap();
            assert!(*ready);
            drop(ready);
            t.join().unwrap();
        })
        .expect_err("unguarded wait must lose the wakeup under some schedule");
    assert!(matches!(failure.kind, FailureKind::Deadlock), "{failure}");
}

#[test]
fn timed_wait_timeout_is_explored() {
    // A timed wait with no notifier must complete via the explorable
    // timeout rather than deadlocking.
    let report = small()
        .check(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let (lock, cv) = &*pair;
            let g = lock.lock().unwrap();
            let (g, res) = cv
                .wait_timeout(g, std::time::Duration::from_millis(1))
                .unwrap();
            assert!(res.timed_out());
            drop(g);
        })
        .expect("a lone timed wait must time out, not deadlock");
    assert!(report.exhaustive);
}

#[test]
fn spin_loop_on_flag_terminates() {
    // Yield deprioritization must let the setter run so the spin exits.
    model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            thread::yield_now();
        }
        t.join().unwrap();
    });
}

#[test]
fn report_counts_iterations() {
    let report = small()
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        })
        .expect("fetch_add counter is race-free");
    assert!(
        report.iterations >= 2,
        "two-thread model explores >1 schedule"
    );
    assert!(report.exhaustive);
}
