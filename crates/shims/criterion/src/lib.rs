//! Vendored API-subset shim of [criterion](https://crates.io/crates/criterion).
//!
//! Provides the handful of entry points the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! wall-clock measurement loop (one warm-up pass, then `sample_size` timed
//! passes; min / mean / max are printed per benchmark). No statistics
//! machinery, no HTML reports; the goal is honest relative timing without a
//! registry dependency.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark; the closure receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (purely cosmetic in the shim).
    pub fn finish(self) {}
}

/// Per-benchmark measurement state handed to the bench closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter was never called)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{group}/{id}: [{} .. {} .. {}] ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("engine", "8^5").to_string(), "engine/8^5");
    }
}
