//! Ablation: grouped (Nlocal) communication vs per-iteration exchanges,
//! and wall-clock of the real threaded distributed execution.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::device::V100;
use kron_core::{KronProblem, Matrix};
use kron_dist::{DistFastKron, DistalEngine};
use std::hint::black_box;

fn bench_distributed(c: &mut Criterion) {
    // Simulated: communication volumes.
    let problem = KronProblem::uniform(64, 16, 4).unwrap();
    let fk = DistFastKron::new(&V100, 16).unwrap();
    let distal = DistalEngine::new(&V100, 16).unwrap();
    let v_grouped = fk.simulate::<f32>(&problem).unwrap().comm_bytes;
    let v_periter = distal.simulate::<f32>(&problem).unwrap().comm_bytes;
    eprintln!(
        "[distributed ablation] comm bytes: grouped {v_grouped} vs per-iteration {v_periter} ({:.2}x less)",
        v_periter as f64 / v_grouped as f64
    );

    // Functional: real threads + channels end to end.
    let mut group = c.benchmark_group("distributed_functional");
    group.sample_size(10);
    for gpus in [1usize, 4, 16] {
        let x = Matrix::<f32>::from_fn(16, 4096, |r, c| ((r * 7 + c) % 11) as f32 - 5.0);
        let fs: Vec<Matrix<f32>> = (0..4)
            .map(|i| Matrix::from_fn(8, 8, |r, q| ((i + r * 8 + q) % 9) as f32 - 4.0))
            .collect();
        let refs: Vec<&Matrix<f32>> = fs.iter().collect();
        let engine = DistFastKron::new(&V100, gpus).unwrap();
        group.bench_function(format!("execute_8e4_{gpus}gpus"), |b| {
            b.iter(|| black_box(engine.execute(&x, &refs).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
