//! # fastkron — facade crate
//!
//! Re-exports the whole FastKron workspace behind one dependency:
//!
//! * [`core`] — matrices, shapes, reference algorithms (`kron-core`),
//! * [`sim`] — the GPU performance simulator (`gpu-sim`),
//! * [`kron`] — the FastKron engine: Algorithm 1, tiled kernels, shift
//!   caching, fusion, autotuner (`fastkron-core`),
//! * [`baselines`] — GPyTorch-, COGENT-, cuTensor-style engines
//!   (`kron-baselines`),
//! * [`dist`] — the multi-GPU engine and distributed baselines (`kron-dist`),
//! * [`gp`] — the Gaussian-process case study (`kron-gp`),
//! * [`runtime`] — the persistent serving runtime: plan caching and
//!   cross-request batching (`kron-runtime`).
//!
//! ```
//! use fastkron::prelude::*;
//!
//! // Y = X · (F1 ⊗ F2) with two 4×4 factors.
//! let problem = KronProblem::uniform(8, 4, 2).unwrap();
//! let x = Matrix::<f32>::from_fn(8, 16, |r, c| (r + c) as f32);
//! let f = Matrix::<f32>::identity(4);
//! let engine = FastKron::plan::<f32>(&problem, &V100).unwrap();
//! let y = engine.execute(&x, &[&f, &f]).unwrap();
//! assert_eq!(y, x); // identity factors ⇒ identity map
//! ```

pub use fastkron_core as kron;
pub use gpu_sim as sim;
pub use kron_baselines as baselines;
pub use kron_core as core;
pub use kron_dist as dist;
pub use kron_gp as gp;
pub use kron_runtime as runtime;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use fastkron_core::{FastKron, KronPlan, TileConfig, Workspace};
    pub use gpu_sim::device::{DeviceSpec, A100, V100};
    pub use gpu_sim::ExecSummary;
    pub use kron_core::{
        assert_matrices_close, ExecBackend, FactorShape, KronProblem, Matrix, PlanKey,
    };
    pub use kron_dist::{live_sim_worker_threads, DistFastKron, GpuGrid, ShardedEngine};
    pub use kron_runtime::{
        adaptive_linger_us, aged_priority, Backend, BreakerPolicy, BreakerState, CachePolicy,
        Clock, DeviceHealthReport, DeviceMetricsSnapshot, EvictReason, FaultEvent, FaultKind,
        FaultPlan, FaultTrigger, HistogramSnapshot, LaneStats, ManualClock, MetricsSnapshot,
        ModelPin, ModelStats, Outcome, RetryPolicy, Runtime, RuntimeConfig, RuntimeStats,
        ServeElement, ServeEvent, ServeEventKind, ServeReceipt, Session, Stage, StageTimings,
        SubmitOptions, Ticket, MAX_LANES,
    };
}
