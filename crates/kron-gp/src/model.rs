//! The SKI Gaussian process: `K_SKI = W (⊗ᵢKᵢ) Wᵀ + σ²I` and its
//! matrix-free application.

use crate::cg::{batched_cg, CgResult};
use crate::grid::InducingGrid;
use crate::interp::SparseInterp;
use fastkron_core::algorithm::kron_matmul_fastkron;
use kron_core::{Element, KronError, Matrix, Result};

/// A SKI GP over an inducing grid.
pub struct SkiGp<T> {
    grid: InducingGrid,
    interp: SparseInterp,
    factors: Vec<Matrix<T>>,
    /// Observation-noise variance `σ²` added on the diagonal.
    pub noise: T,
}

impl<T: Element> SkiGp<T> {
    /// Builds the model for `points` on `grid` with noise variance
    /// `noise`.
    ///
    /// # Errors
    /// Interpolation shape errors.
    pub fn new(grid: InducingGrid, points: &[Vec<f64>], noise: T) -> Result<Self> {
        let interp = SparseInterp::build(&grid, points)?;
        let factors = grid.factors::<T>();
        Ok(SkiGp {
            grid,
            interp,
            factors,
            noise,
        })
    }

    /// The inducing grid.
    pub fn grid(&self) -> &InducingGrid {
        &self.grid
    }

    /// The interpolation matrix.
    pub fn interp(&self) -> &SparseInterp {
        &self.interp
    }

    /// The Kronecker kernel factors.
    pub fn factors(&self) -> &[Matrix<T>] {
        &self.factors
    }

    /// Applies `K_SKI` to each row of `V[s × n]`:
    /// `V ↦ (W ((⊗K) (Wᵀ vᵢ))) + σ² vᵢ`. The middle step is a Kron-Matmul
    /// with `M = s` — the paper's core operation.
    ///
    /// # Errors
    /// Shape errors between `V` and the model.
    pub fn apply_kernel(&self, v: &Matrix<T>) -> Result<Matrix<T>> {
        let scattered = self.interp.scatter(v)?; // s × Pᴺ
        let refs: Vec<&Matrix<T>> = self.factors.iter().collect();
        let multiplied = kron_matmul_fastkron(&scattered, &refs)?;
        let mut gathered = self.interp.gather(&multiplied)?; // s × n
        for i in 0..gathered.rows() {
            for j in 0..gathered.cols() {
                gathered[(i, j)] += self.noise * v[(i, j)];
            }
        }
        Ok(gathered)
    }

    /// Solves `K_SKI Z = B` by batched CG (`B[s × n]`, rows are RHS).
    ///
    /// # Errors
    /// Shape errors; operator failures.
    pub fn solve(&self, b: &Matrix<T>, max_iters: usize, tol: f64) -> Result<CgResult<T>> {
        if b.cols() != self.interp.rows() {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} cols (data points)", self.interp.rows()),
                found: format!("{} cols", b.cols()),
            });
        }
        let mut apply = |v: &Matrix<T>| self.apply_kernel(v);
        batched_cg(&mut apply, b, max_iters, tol)
    }

    /// Count of Kron-Matmul FLOPs one kernel application costs (used by
    /// the timing study).
    pub fn kron_flops(&self, batch: usize) -> u64 {
        kron_core::KronProblem::new(
            batch,
            self.factors
                .iter()
                .map(|f| kron_core::FactorShape::new(f.rows(), f.cols()))
                .collect(),
        )
        .map(|p| p.flops())
        .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::gemm::gemm;
    use kron_core::kron::kron_product_chain;

    fn small_model(n_points: usize) -> (SkiGp<f64>, Vec<Vec<f64>>) {
        let grid = InducingGrid::new(2, 4, 0.4).unwrap();
        let pts: Vec<Vec<f64>> = (0..n_points)
            .map(|i| vec![(i as f64 * 0.37) % 1.0, (i as f64 * 0.71) % 1.0])
            .collect();
        let gp = SkiGp::new(grid, &pts, 0.5).unwrap();
        (gp, pts)
    }

    /// Dense K_SKI for verification.
    fn dense_kernel(gp: &SkiGp<f64>) -> Matrix<f64> {
        let w = gp.interp().to_dense::<f64>();
        let refs: Vec<&Matrix<f64>> = gp.factors().iter().collect();
        let kg = kron_product_chain(&refs).unwrap();
        let wk = gemm(&w, &kg).unwrap();
        let mut k = gemm(&wk, &w.transpose()).unwrap();
        for i in 0..k.rows() {
            k[(i, i)] += gp.noise;
        }
        k
    }

    #[test]
    fn apply_matches_dense_kernel() {
        let (gp, pts) = small_model(9);
        let k = dense_kernel(&gp);
        let v = Matrix::from_fn(3, pts.len(), |r, c| ((r * 9 + c) % 5) as f64 - 2.0);
        let got = gp.apply_kernel(&v).unwrap();
        let want = gemm(&v, &k.transpose()).unwrap();
        kron_core::assert_matrices_close(&got, &want, "K_SKI apply");
    }

    #[test]
    fn kernel_application_is_symmetric() {
        // ⟨K u, v⟩ = ⟨u, K v⟩ for the SKI operator.
        let (gp, pts) = small_model(7);
        let n = pts.len();
        let u = Matrix::from_fn(1, n, |_, c| (c as f64 * 0.3).sin());
        let v = Matrix::from_fn(1, n, |_, c| (c as f64 * 0.7).cos());
        let ku = gp.apply_kernel(&u).unwrap();
        let kv = gp.apply_kernel(&v).unwrap();
        let lhs: f64 = ku.row(0).iter().zip(v.row(0)).map(|(a, b)| a * b).sum();
        let rhs: f64 = u.row(0).iter().zip(kv.row(0)).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn cg_solves_the_ski_system() {
        let (gp, pts) = small_model(10);
        let n = pts.len();
        let b = Matrix::from_fn(2, n, |r, c| ((r + c) % 3) as f64 - 1.0);
        let res = gp.solve(&b, 100, 1e-10).unwrap();
        // Verify K z ≈ b to the solver's (not machine) tolerance.
        let kz = gp.apply_kernel(&res.z).unwrap();
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                let diff = (kz[(i, j)] - b[(i, j)]).abs();
                assert!(diff < 1e-8, "residual at ({i},{j}) = {diff}");
            }
        }
    }

    #[test]
    fn sixteen_probe_vectors_like_the_paper() {
        // §6.4: "the conjugate gradient method to consider 16 samples,
        // i.e. M = 16".
        let (gp, pts) = small_model(12);
        let b = Matrix::from_fn(16, pts.len(), |r, c| ((r * 5 + c) % 7) as f64 - 3.0);
        let res = gp.solve(&b, 60, 1e-8).unwrap();
        assert_eq!(res.z.rows(), 16);
        assert!(res.iterations > 0);
    }

    #[test]
    fn rejects_wrong_rhs_width() {
        let (gp, _) = small_model(6);
        assert!(gp.solve(&Matrix::<f64>::zeros(2, 5), 10, 1e-8).is_err());
    }

    #[test]
    fn kron_flops_positive() {
        let (gp, _) = small_model(5);
        assert!(gp.kron_flops(16) > 0);
    }
}
