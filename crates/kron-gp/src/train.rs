//! The Table 5 timing study: GP training epochs with vanilla-GPyTorch vs
//! FastKron-integrated Kron-Matmul backends, on 1 or 16 simulated GPUs.
//!
//! An epoch runs 10 CG iterations over a 16-vector probe batch (§6.4).
//! Its simulated cost decomposes as
//!
//! `T(backend) = mvms × t_kron(backend) + T_other`,
//!
//! where `t_kron` comes from the corresponding engine's simulator and
//! `T_other` covers everything GPyTorch runs *outside* the accelerated
//! Kron-Matmul: the CG/framework floor (losses, lazy-tensor dispatch,
//! hyper-parameter updates) plus autograd work that scales with the
//! problem. Both calibration constants are documented below; integrating
//! FastKron leaves `T_other` untouched (the paper: "GPyTorch … executes
//! several other operations on a single GPU"), and in 16-GPU runs roughly
//! half of that work rides along with the distributed integration while
//! the rest stays serial.

use crate::datasets::UciDataset;
use fastkron_core::FastKron;
use gpu_sim::device::DeviceSpec;
use kron_baselines::ShuffleEngine;
use kron_core::{Element, KronProblem, Result};
use kron_dist::DistFastKron;

/// CG iterations per epoch (§6.4: "runs for 10 iterations in each epoch").
pub const CG_ITERS_PER_EPOCH: usize = 10;

/// Probe-batch width (§6.4: "16 samples, i.e., M = 16").
pub const PROBE_BATCH: usize = 16;

/// Fixed per-epoch framework time outside Kron-Matmul, seconds
/// (GPyTorch's CG bookkeeping, loss evaluation, optimizer step).
pub const FRAMEWORK_FLOOR_S: f64 = 0.30;

/// Autograd/backward work proportional to the *unaccelerated* Kron cost;
/// FastKron integration does not touch the backward graph.
pub const BACKWARD_FRACTION: f64 = 0.85;

/// Fraction of `T_other` that remains on a single GPU in 16-GPU runs.
pub const SERIAL_OTHER_FRACTION: f64 = 0.5;

/// The GP flavours of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpVariant {
    /// Structured Kernel Interpolation (KISS-GP).
    Ski,
    /// SKIP — product-kernel SKI; extra per-dimension Lanczos passes.
    Skip,
    /// LOVE — adds constant-time predictive-variance precomputation,
    /// which performs additional Kron-Matmul solves.
    Love,
}

impl GpVariant {
    /// Name as printed in Table 5.
    pub fn name(self) -> &'static str {
        match self {
            GpVariant::Ski => "SKI",
            GpVariant::Skip => "SKIP",
            GpVariant::Love => "LOVE",
        }
    }

    /// Kron-Matmul MVMs per epoch.
    pub fn mvms_per_epoch(self) -> usize {
        match self {
            GpVariant::Ski => CG_ITERS_PER_EPOCH,
            GpVariant::Skip => CG_ITERS_PER_EPOCH,
            // LOVE's Lanczos cache adds ~40% more MVMs.
            GpVariant::Love => CG_ITERS_PER_EPOCH + 4,
        }
    }

    /// Multiplier on the non-Kron framework floor.
    pub fn other_factor(self) -> f64 {
        match self {
            GpVariant::Ski => 1.0,
            // SKIP's per-dimension Lanczos adds non-Kron work.
            GpVariant::Skip => 1.5,
            GpVariant::Love => 1.1,
        }
    }

    /// All variants in Table 5 column order.
    pub fn all() -> [GpVariant; 3] {
        [GpVariant::Ski, GpVariant::Skip, GpVariant::Love]
    }
}

/// Which Kron-Matmul engine the training loop calls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KronBackend {
    /// Vanilla GPyTorch (shuffle algorithm; always one GPU).
    GPyTorch,
    /// FastKron integrated into GPyTorch on `gpus` simulated GPUs.
    FastKron {
        /// Number of GPUs (1 or a power of two up to 16).
        gpus: usize,
    },
}

/// Produces simulated per-epoch training times and Table 5 speedups.
pub struct TrainTimer {
    device: DeviceSpec,
}

impl TrainTimer {
    /// Builds a timer for `device`.
    pub fn new(device: &DeviceSpec) -> Self {
        TrainTimer {
            device: device.clone(),
        }
    }

    /// Simulated seconds of one Kron-Matmul MVM (`16 × Pᴺ` with `N` =
    /// dataset dims) on `backend`.
    ///
    /// # Errors
    /// Planning/shape errors from the underlying engines.
    pub fn kron_mvm_seconds<T: Element>(
        &self,
        dataset: UciDataset,
        p: usize,
        backend: KronBackend,
    ) -> Result<f64> {
        let problem = KronProblem::uniform(PROBE_BATCH, p, dataset.dims())?;
        match backend {
            KronBackend::GPyTorch => {
                let engine = ShuffleEngine::new(&self.device);
                Ok(engine.matmul_seconds(&problem, T::DTYPE)
                    + engine.transpose_seconds(&problem, T::DTYPE))
            }
            KronBackend::FastKron { gpus: 1 } => Ok(FastKron::plan::<T>(&problem, &self.device)?
                .simulate()?
                .seconds),
            KronBackend::FastKron { gpus } => Ok(DistFastKron::new(&self.device, gpus)?
                .simulate::<T>(&problem)?
                .seconds),
        }
    }

    /// Simulated seconds for one training epoch.
    ///
    /// # Errors
    /// Planning/shape errors from the underlying engines.
    pub fn epoch_seconds<T: Element>(
        &self,
        dataset: UciDataset,
        p: usize,
        variant: GpVariant,
        backend: KronBackend,
    ) -> Result<f64> {
        let mvms = variant.mvms_per_epoch() as f64;
        let t_kron = self.kron_mvm_seconds::<T>(dataset, p, backend)? * mvms;
        // T_other is anchored to the unaccelerated engine (the backward
        // graph and framework stay GPyTorch's own regardless of backend).
        let t_kron_gpy = self.kron_mvm_seconds::<T>(dataset, p, KronBackend::GPyTorch)? * mvms;
        let mut t_other =
            variant.other_factor() * (FRAMEWORK_FLOOR_S + BACKWARD_FRACTION * t_kron_gpy);
        if let KronBackend::FastKron { gpus } = backend {
            if gpus > 1 {
                t_other *= SERIAL_OTHER_FRACTION + (1.0 - SERIAL_OTHER_FRACTION) / gpus as f64;
            }
        }
        Ok(t_kron + t_other)
    }

    /// Table 5 cell: speedup of the FastKron-integrated trainer over
    /// vanilla GPyTorch.
    ///
    /// # Errors
    /// Planning/shape errors from the underlying engines.
    pub fn speedup<T: Element>(
        &self,
        dataset: UciDataset,
        p: usize,
        variant: GpVariant,
        gpus: usize,
    ) -> Result<f64> {
        let vanilla = self.epoch_seconds::<T>(dataset, p, variant, KronBackend::GPyTorch)?;
        let fast = self.epoch_seconds::<T>(dataset, p, variant, KronBackend::FastKron { gpus })?;
        Ok(vanilla / fast)
    }
}

/// The (dataset, P) rows of Table 5.
pub fn table5_rows() -> [(UciDataset, usize); 8] {
    [
        (UciDataset::AutoMpg, 8),     // 8^7
        (UciDataset::Kin40k, 8),      // 8^8
        (UciDataset::Airfoil, 16),    // 16^5
        (UciDataset::Yacht, 16),      // 16^6
        (UciDataset::Servo, 32),      // 32^4
        (UciDataset::Airfoil, 32),    // 32^5
        (UciDataset::ThreeDRoad, 64), // 64^3
        (UciDataset::Servo, 64),      // 64^4
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::V100;

    #[test]
    fn all_table5_speedups_exceed_one() {
        let timer = TrainTimer::new(&V100);
        for (ds, p) in table5_rows() {
            for variant in GpVariant::all() {
                for gpus in [1usize, 16] {
                    let s = timer.speedup::<f32>(ds, p, variant, gpus).unwrap();
                    assert!(
                        s >= 1.0,
                        "{} {}^{} {} on {gpus} GPUs: speedup {s}",
                        ds.name(),
                        p,
                        ds.dims(),
                        variant.name()
                    );
                }
            }
        }
    }

    #[test]
    fn speedup_grows_with_grid_size() {
        // Table 5 trend: servo 32^4 (1.1×) vs servo 64^4 (2.1×).
        let timer = TrainTimer::new(&V100);
        let small = timer
            .speedup::<f32>(UciDataset::Servo, 32, GpVariant::Ski, 1)
            .unwrap();
        let large = timer
            .speedup::<f32>(UciDataset::Servo, 64, GpVariant::Ski, 1)
            .unwrap();
        assert!(large > small, "64^4 {large} vs 32^4 {small}");
    }

    #[test]
    fn sixteen_gpus_beat_one() {
        let timer = TrainTimer::new(&V100);
        for (ds, p) in [(UciDataset::Yacht, 16), (UciDataset::Airfoil, 32)] {
            let s1 = timer.speedup::<f32>(ds, p, GpVariant::Ski, 1).unwrap();
            let s16 = timer.speedup::<f32>(ds, p, GpVariant::Ski, 16).unwrap();
            assert!(s16 > s1, "{}: 16-GPU {s16} vs 1-GPU {s1}", ds.name());
            // §6.4: "a speedup increase of up to 3.33× with 16 GPUs" — the
            // serial remainder must bound the gain.
            assert!(s16 / s1 < 4.0, "{}: increase {}", ds.name(), s16 / s1);
        }
    }

    #[test]
    fn one_gpu_speedups_in_paper_band() {
        // Paper Table 5 single-GPU speedups span 1.1×–2.2×; allow a wider
        // but bounded band for the model.
        let timer = TrainTimer::new(&V100);
        for (ds, p) in table5_rows() {
            let s = timer.speedup::<f32>(ds, p, GpVariant::Ski, 1).unwrap();
            assert!(
                (1.0..=4.0).contains(&s),
                "{} {}: 1-GPU speedup {s} out of band",
                ds.name(),
                p
            );
        }
    }

    #[test]
    fn variant_accounting() {
        assert_eq!(GpVariant::Ski.mvms_per_epoch(), 10);
        assert_eq!(GpVariant::Love.mvms_per_epoch(), 14);
        assert!(GpVariant::Skip.other_factor() > GpVariant::Ski.other_factor());
        assert_eq!(GpVariant::all().len(), 3);
        assert_eq!(GpVariant::Ski.name(), "SKI");
    }

    #[test]
    fn epoch_time_decomposition_is_consistent() {
        let timer = TrainTimer::new(&V100);
        let t_gpy = timer
            .epoch_seconds::<f32>(UciDataset::Yacht, 16, GpVariant::Ski, KronBackend::GPyTorch)
            .unwrap();
        let t_fk = timer
            .epoch_seconds::<f32>(
                UciDataset::Yacht,
                16,
                GpVariant::Ski,
                KronBackend::FastKron { gpus: 1 },
            )
            .unwrap();
        assert!(t_gpy > t_fk);
        assert!(t_fk > FRAMEWORK_FLOOR_S, "other time must be included");
    }
}
