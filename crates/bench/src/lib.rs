//! Shared definitions for the experiment binaries: the paper's workload
//! lists (Figure 9 sizes, Table 1-3 grids, the 28 real-world cases of
//! Table 4, Figure 11's weak-scaling points, Table 5's dataset/grid rows)
//! and small formatting helpers.
//!
//! Each binary in `src/bin/` regenerates one artifact of §6:
//!
//! | binary             | artifact  |
//! |--------------------|-----------|
//! | `figure9`          | Figure 9  |
//! | `table1`           | Table 1   |
//! | `table2`           | Table 2   |
//! | `table3`           | Table 3   |
//! | `figure10`         | Figure 10 (over Table 4's sizes) |
//! | `figure11`         | Figure 11 |
//! | `table5`           | Table 5   |
//! | `autotune_report`  | §6.1      |

#![deny(missing_docs)]

use kron_core::{FactorShape, KronProblem};

/// Figure 9's microbenchmark sizes: M = 1024, power-of-two P, the two
/// largest `P^N` allocatable on a 32 GB V100.
pub fn figure9_cases() -> Vec<(usize, usize)> {
    vec![
        (8, 5),
        (8, 6),
        (16, 4),
        (16, 5),
        (32, 3),
        (32, 4),
        (64, 2),
        (64, 3),
        (128, 2),
        (128, 3),
    ]
}

/// Paper-reported FastKron TFLOPS for Figure 9 (float), for side-by-side
/// comparison in the output.
pub fn figure9_paper_tflops() -> Vec<f64> {
    vec![3.9, 4.4, 6.8, 5.8, 8.0, 8.9, 9.6, 11.8, 12.7, 13.7]
}

/// Table 1/2's (P, N) grid: M = 1024, largest `P^N` on 32 GB.
pub fn table1_cases() -> Vec<(usize, usize)> {
    vec![(8, 6), (16, 5), (32, 4), (64, 3)]
}

/// Table 3's (P, N) grid: M = 16, largest `P^N`.
pub fn table3_cases() -> Vec<(usize, usize)> {
    vec![(8, 8), (16, 6), (32, 5), (64, 4)]
}

/// The 28 real-world Kron-Matmul sizes of Table 4.
///
/// Rows 6-8 mix rectangular factors whose exact shapes are ambiguous in
/// the camera-ready PDF (superscripts collapse); they are reconstructed as
/// the rectangular mixes matching the visible digits. Rows 25-28 use the
/// per-P largest M = 16 sizes, consistent with Table 3.
pub fn table4_cases() -> Vec<(usize, KronProblem)> {
    let uniform = |id: usize, m: usize, p: usize, n: usize| {
        (
            id,
            KronProblem::uniform(m, p, n).expect("valid uniform case"),
        )
    };
    let mixed = |id: usize, m: usize, shapes: &[(usize, usize)]| {
        let factors = shapes
            .iter()
            .map(|&(p, q)| FactorShape::new(p, q))
            .collect();
        (id, KronProblem::new(m, factors).expect("valid mixed case"))
    };
    vec![
        // 1-5: LSTM and RNN compression (Jose et al.).
        uniform(1, 20, 2, 7),
        uniform(2, 20, 2, 9),
        uniform(3, 50, 2, 9),
        uniform(4, 20, 2, 10),
        uniform(5, 1, 2, 11),
        // 6-8: ML compression (Thakker et al.) - rectangular mixes.
        mixed(6, 10, &[(5, 50), (65, 20)]),
        mixed(7, 50, &[(3, 8), (3, 8), (64, 128)]),
        mixed(8, 10, &[(5, 65), (5, 65), (50, 20)]),
        // 9-16: HyPA (Cai et al.).
        uniform(9, 4, 2, 9),
        uniform(10, 8, 2, 9),
        uniform(11, 16, 2, 9),
        uniform(12, 20, 2, 9),
        uniform(13, 4, 8, 3),
        uniform(14, 8, 8, 3),
        uniform(15, 16, 8, 3),
        uniform(16, 20, 8, 3),
        // 17-19: Kronecker graphs (Leskovec et al.).
        uniform(17, 1024, 3, 7),
        uniform(18, 1024, 4, 7),
        uniform(19, 1024, 6, 7),
        // 20-21: computational biology (Haupt et al.).
        mixed(20, 1, &[(5, 5), (5, 5), (5, 5), (2, 2)]),
        mixed(
            21,
            1,
            &[
                (5, 5),
                (5, 5),
                (2, 2),
                (2, 2),
                (2, 2),
                (2, 2),
                (2, 2),
                (2, 2),
            ],
        ),
        // 22-24: drug-target prediction (Viljanen et al.).
        uniform(22, 1526, 4, 6),
        uniform(23, 156, 8, 3),
        uniform(24, 2967, 4, 7),
        // 25-28: Gaussian-process kernels.
        uniform(25, 16, 8, 8),
        uniform(26, 16, 16, 6),
        uniform(27, 16, 32, 5),
        uniform(28, 16, 64, 4),
    ]
}

/// Figure 11's weak-scaling configurations: `(P, N, M per GPU)`.
pub fn figure11_cases() -> Vec<(usize, usize, usize)> {
    vec![(64, 4, 128), (128, 4, 8)]
}

/// GPU counts swept in Figure 11.
pub fn figure11_gpu_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16]
}

/// Label for a Figure 9 case, e.g. `8^6`.
pub fn fig9_label(p: usize, n: usize) -> String {
    format!("{p}^{n}")
}

/// Formats seconds with an adaptive unit.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_lists_have_expected_sizes() {
        assert_eq!(figure9_cases().len(), 10);
        assert_eq!(figure9_paper_tflops().len(), 10);
        assert_eq!(table1_cases().len(), 4);
        assert_eq!(table3_cases().len(), 4);
        assert_eq!(figure11_cases().len(), 2);
        let t4 = table4_cases();
        assert_eq!(t4.len(), 28);
        // Ids run 1..=28 in order.
        for (i, (id, _)) in t4.iter().enumerate() {
            assert_eq!(*id, i + 1);
        }
    }

    #[test]
    fn table4_problems_are_valid() {
        for (id, problem) in table4_cases() {
            assert!(problem.input_cols() > 0, "case {id}");
            assert!(problem.flops() > 0, "case {id}");
            // Nothing absurdly large for a 32 GB device at f32.
            let bytes = problem.m * problem.input_cols() * 4;
            assert!(bytes < 32 << 30, "case {id} would not fit the GPU");
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0025), "2.50 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.5 us");
        assert_eq!(fig9_label(8, 6), "8^6");
    }
}
