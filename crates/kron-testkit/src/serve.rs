//! Deterministic multi-model serving traces and their differential
//! oracle — including mixed-dtype traces through one erased runtime.
//!
//! A [`ServePlan`] is everything a serving run needs, derived purely from
//! a seed: a mix of models (factor-shape chains plus integer-valued
//! factor data inside the [`crate::gen`] exactness budget), and an
//! arrival-ordered request list where each request carries its input,
//! priority, and optional deadline slack. Replaying the same seed
//! replays the same trace bit-for-bit. A [`MixedServePlan`] interleaves
//! an `f32` and an `f64` trace into **one** arrival order, served by one
//! dtype-erased runtime — the contract the serving API redesign added.
//!
//! [`check_serve_plan`] is the single-dtype differential oracle: the
//! trace is served through **both** runtime backends (single-node and the
//! simulated multi-GPU grid), with consecutive same-model runs submitted
//! as linked batches and everything carrying its priority/deadline
//! options — and every result must equal the *per-request planned
//! execution* (`FastKron::plan` + `execute`, no batching, no runtime)
//! **bit-for-bit**. [`check_mixed_serve_plan`] does the same for a mixed
//! trace: one runtime, both dtypes in flight at once. Batching, priority
//! reordering (including aging), deadline plumbing, cross-dtype
//! interleaving, zero-padding for the grid, and cache eviction between
//! requests must all be value-invisible; on integer-valued operands any
//! divergence is a hard failure, not rounding.

use crate::diff::{dist_runtime, single_runtime, DiffElement};
use crate::gen::{int_matrix, splitmix, worst_case_magnitude};
use fastkron_core::FastKron;
use gpu_sim::device::V100;
use kron_core::{Element, FactorShape, KronProblem, Matrix};
use kron_runtime::{Model, Runtime, ServeReceipt, SubmitOptions, Ticket};

/// Exact timeline expectations for one scripted request, checked against
/// the [`StageTimings`](kron_runtime::StageTimings) on its
/// [`ServeReceipt`]. Meaningful on a **manual clock**, where every
/// microsecond a request spends in a stage was scripted by the test:
/// queue time comes from advancing the clock while the request sits in
/// the channel, linger from holding the batch window open, retry from
/// backoff/cooldown waits. The execution stages (plan/exec/scatter) are
/// zero under virtual time — it only moves when the test advances it —
/// so the three scripted legs plus `attempts` pin the whole timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpectedTimings {
    /// Exact channel wait (enqueue → scheduler pickup), µs.
    pub queue_us: u64,
    /// Exact linger wait (pickup → window close), µs.
    pub linger_us: u64,
    /// Exact retry cost (serve start → final attempt start), µs.
    pub retry_us: u64,
    /// Executes the serving batch went through (1 = first try served).
    pub attempts: u32,
}

impl ExpectedTimings {
    /// Checks `receipt` against the scripted expectations; `label` names
    /// the request in the failure message.
    pub fn check(&self, label: &str, receipt: &ServeReceipt) -> Result<(), String> {
        let t = receipt.timings;
        let mismatch = |what: &str, want: u64, got: u64| {
            format!("{label}: {what} expected {want}us, got {got}us ({t})")
        };
        if t.queue_us != self.queue_us {
            return Err(mismatch("queue", self.queue_us, t.queue_us));
        }
        if t.linger_us != self.linger_us {
            return Err(mismatch("linger", self.linger_us, t.linger_us));
        }
        if t.retry_us != self.retry_us {
            return Err(mismatch("retry", self.retry_us, t.retry_us));
        }
        if receipt.attempts != self.attempts {
            return Err(format!(
                "{label}: attempts expected {}, got {} ({t})",
                self.attempts, receipt.attempts
            ));
        }
        // On a manual clock the execution stages cannot accrue virtual
        // time, so the scripted legs are the whole timeline.
        let scripted = self.queue_us + self.linger_us + self.retry_us;
        if t.total_us() != scripted {
            return Err(format!(
                "{label}: total expected {scripted}us, got {}us ({t})",
                t.total_us()
            ));
        }
        Ok(())
    }
}

/// Factor-shape chains the model mix draws from — all comfortably inside
/// the `f32` exactness budget, covering pow2-uniform (shardable), odd,
/// rectangular, and mixed-square families.
const MODEL_POOL: &[&[(usize, usize)]] = &[
    &[(4, 4), (4, 4)],
    &[(2, 2), (2, 2), (2, 2), (2, 2)],
    &[(8, 8), (8, 8)],
    &[(3, 3), (3, 3)],
    &[(2, 3), (3, 2)],
    &[(4, 4), (4, 4), (4, 4)],
    &[(5, 5), (2, 2)],
];

/// One request of a serving trace.
#[derive(Debug, Clone)]
pub struct PlannedRequest<T: Element> {
    /// Index into [`ServePlan::models`].
    pub model: usize,
    /// The request input (`m × ∏Pᵢ` of its model).
    pub x: Matrix<T>,
    /// Service priority (higher drains first within a window).
    pub priority: u8,
    /// Deadline slack in microseconds from submission time, or `None`
    /// for no deadline. The differential oracle uses generous slacks so
    /// nothing sheds; admission tests shrink them.
    pub deadline_slack_us: Option<u64>,
    /// Exact timeline expectations for scripted manual-clock traces, or
    /// `None` for generated traces (real-clock timings are not exact).
    /// When present, [`check_serve_plan`] verifies the receipt timeline.
    pub expected: Option<ExpectedTimings>,
}

/// A deterministic multi-model serving trace: model mix, arrival order,
/// priorities, and deadlines, all derived from `(seed)` alone.
#[derive(Debug, Clone)]
pub struct ServePlan<T: Element> {
    /// The factor sets requests are served against.
    pub models: Vec<Vec<Matrix<T>>>,
    /// The requests, in arrival order.
    pub requests: Vec<PlannedRequest<T>>,
    /// The seed the trace was derived from.
    pub seed: u64,
}

impl<T: Element> ServePlan<T> {
    /// Builds the trace for `seed` — fully deterministic.
    pub fn deterministic(seed: u64) -> Self {
        let mut state = seed ^ 0x51ed_2700_94fe_aced;
        let n_models = 2 + (splitmix(&mut state) % 3) as usize;
        let pool_base = splitmix(&mut state) as usize;
        let mut models = Vec::with_capacity(n_models);
        let mut shapes = Vec::with_capacity(n_models);
        for i in 0..n_models {
            let chain = MODEL_POOL[(pool_base + i) % MODEL_POOL.len()];
            // Budget sanity: the pool is chosen to respect it for f32.
            let probe = KronProblem::new(
                1,
                chain.iter().map(|&(p, q)| FactorShape::new(p, q)).collect(),
            )
            .expect("pool shapes are valid");
            assert!(worst_case_magnitude(&probe) < (1 << 24));
            let factors: Vec<Matrix<T>> = chain
                .iter()
                .map(|&(p, q)| int_matrix(p, q, &mut state))
                .collect();
            models.push(factors);
            shapes.push(chain);
        }

        let n_requests = 24 + (splitmix(&mut state) % 17) as usize;
        let mut requests = Vec::with_capacity(n_requests);
        for _ in 0..n_requests {
            let model = (splitmix(&mut state) % n_models as u64) as usize;
            // Mostly batchable sizes, with an occasional solo-path M.
            let m = if splitmix(&mut state).is_multiple_of(8) {
                17 + (splitmix(&mut state) % 16) as usize
            } else {
                1 + (splitmix(&mut state) % 12) as usize
            };
            let k: usize = shapes[model].iter().map(|&(p, _)| p).product();
            let x = int_matrix(m, k, &mut state);
            let priority = (splitmix(&mut state) % 4) as u8;
            let deadline_slack_us = match splitmix(&mut state) % 4 {
                // A generous minute of slack: exercises the deadline
                // plumbing without ever shedding.
                0 => Some(60_000_000),
                _ => None,
            };
            requests.push(PlannedRequest {
                model,
                x,
                priority,
                deadline_slack_us,
                expected: None,
            });
        }
        ServePlan {
            models,
            requests,
            seed,
        }
    }
}

/// One request of a mixed-dtype trace: the typed request plus which lane
/// it rides.
#[derive(Debug, Clone)]
pub enum MixedRequest {
    /// An `f32` request (indexing [`MixedServePlan::models_f32`]).
    F32(PlannedRequest<f32>),
    /// An `f64` request (indexing [`MixedServePlan::models_f64`]).
    F64(PlannedRequest<f64>),
}

/// A deterministic mixed-dtype serving trace: an `f32` and an `f64`
/// [`ServePlan`] interleaved into **one** arrival order, to be served by
/// one dtype-erased runtime. Each underlying plan's internal request
/// order is preserved; the interleaving pattern is seed-derived.
#[derive(Debug, Clone)]
pub struct MixedServePlan {
    /// The `f32` factor sets.
    pub models_f32: Vec<Vec<Matrix<f32>>>,
    /// The `f64` factor sets.
    pub models_f64: Vec<Vec<Matrix<f64>>>,
    /// The requests of both dtypes, in (interleaved) arrival order.
    pub requests: Vec<MixedRequest>,
    /// The seed the trace was derived from.
    pub seed: u64,
}

impl MixedServePlan {
    /// Builds the mixed trace for `seed` — fully deterministic. The two
    /// halves come from independent sub-seeds, so the mixed sweep covers
    /// model mixes neither single-dtype sweep saw together.
    pub fn deterministic(seed: u64) -> Self {
        let p32 = ServePlan::<f32>::deterministic(seed ^ 0x3232_3232_3232_3232);
        let p64 = ServePlan::<f64>::deterministic(seed ^ 0x6464_6464_6464_6464);
        let mut state = seed ^ 0x1417_e256_a7ed_5eed;
        let mut a = p32.requests.into_iter().peekable();
        let mut b = p64.requests.into_iter().peekable();
        let mut requests = Vec::new();
        loop {
            match (a.peek().is_some(), b.peek().is_some()) {
                (false, false) => break,
                (true, false) => requests.push(MixedRequest::F32(a.next().expect("peeked"))),
                (false, true) => requests.push(MixedRequest::F64(b.next().expect("peeked"))),
                (true, true) => {
                    if splitmix(&mut state).is_multiple_of(2) {
                        requests.push(MixedRequest::F32(a.next().expect("peeked")));
                    } else {
                        requests.push(MixedRequest::F64(b.next().expect("peeked")));
                    }
                }
            }
        }
        MixedServePlan {
            models_f32: p32.models,
            models_f64: p64.models,
            requests,
            seed,
        }
    }
}

/// Per-request planned-execution oracle: `FastKron::plan` + `execute`
/// against the request's own factor set — no runtime, no batching.
fn planned_oracle<T: Element>(
    factors: &[Matrix<T>],
    x: &Matrix<T>,
    seed: u64,
) -> Result<Matrix<T>, String> {
    let refs: Vec<&Matrix<T>> = factors.iter().collect();
    let shapes = factors
        .iter()
        .map(|f| FactorShape::new(f.rows(), f.cols()))
        .collect();
    let problem = KronProblem::new(x.rows(), shapes)
        .map_err(|e| format!("trace {seed} problem invalid: {e}"))?;
    let kplan = FastKron::plan::<T>(&problem, &V100)
        .map_err(|e| format!("trace {seed} planning failed: {e}"))?;
    kplan
        .execute(x, &refs)
        .map_err(|e| format!("trace {seed} planned execute failed: {e}"))
}

/// Serves `plan` through `runtime`, submitting consecutive same-model
/// runs as one linked batch (inheriting one deadline atomically) and
/// everything else individually, then compares every result bit-for-bit
/// against `oracles`.
pub(crate) fn check_on_runtime<T: DiffElement>(
    name: &str,
    runtime: &Runtime,
    plan: &ServePlan<T>,
    oracles: &[Matrix<T>],
) -> Result<(), String> {
    let models: Vec<_> = plan
        .models
        .iter()
        .map(|f| runtime.load_model(f.clone()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{name}: load_model failed on trace {}: {e}", plan.seed))?;

    let now = runtime.now_us();
    let opts = |req: &PlannedRequest<T>| SubmitOptions {
        priority: req.priority,
        deadline_us: req.deadline_slack_us.map(|slack| now + slack),
    };

    // Submit the whole trace as a burst (maximum co-batching pressure),
    // linking runs of consecutive same-model requests.
    let mut tickets: Vec<Ticket<T>> = Vec::with_capacity(plan.requests.len());
    let mut i = 0;
    while i < plan.requests.len() {
        let mut j = i + 1;
        while j < plan.requests.len()
            && plan.requests[j].model == plan.requests[i].model
            && plan.requests[j].priority == plan.requests[i].priority
            && plan.requests[j].deadline_slack_us == plan.requests[i].deadline_slack_us
        {
            j += 1;
        }
        if j - i > 1 {
            let group: Vec<_> = plan.requests[i..j]
                .iter()
                .map(|r| (&models[r.model], r.x.clone()))
                .collect();
            let linked = runtime
                .submit_linked_with(group, opts(&plan.requests[i]))
                .map_err(|e| format!("{name}: linked submit failed on trace {}: {e}", plan.seed))?;
            tickets.extend(linked);
        } else {
            let r = &plan.requests[i];
            tickets.push(
                runtime
                    .submit_with(&models[r.model], r.x.clone(), opts(r))
                    .map_err(|e| format!("{name}: submit failed on trace {}: {e}", plan.seed))?,
            );
        }
        i = j;
    }

    for (idx, (ticket, oracle)) in tickets.into_iter().zip(oracles.iter()).enumerate() {
        let (got, receipt) = ticket
            .wait_with_receipt()
            .map_err(|e| format!("{name}: request {idx} of trace {} failed: {e}", plan.seed))?;
        if let Some(expected) = plan.requests[idx].expected {
            expected.check(
                &format!("{name}: request {idx} of trace {}", plan.seed),
                &receipt,
            )?;
        }
        if got.as_slice() != oracle.as_slice() {
            let req = &plan.requests[idx];
            return Err(format!(
                "{name}: request {idx} (model {}, M={}, prio {}) of trace seed {} \
                 diverged from the per-request planned execution (bit-exact contract)\n  \
                 regression: ServePlan::<{}>::deterministic({})",
                req.model,
                req.x.rows(),
                req.priority,
                plan.seed,
                T::DTYPE.rust_name(),
                plan.seed,
            ));
        }
    }
    Ok(())
}

/// The serve-trace differential oracle: every request of `plan`, served
/// batched/prioritized through both runtime backends, must match its
/// per-request planned execution bit-for-bit. See the module docs.
pub fn check_serve_plan<T: DiffElement>(plan: &ServePlan<T>) -> Result<(), String> {
    let oracles: Vec<Matrix<T>> = plan
        .requests
        .iter()
        .map(|r| planned_oracle(&plan.models[r.model], &r.x, plan.seed))
        .collect::<Result<_, _>>()?;
    check_on_runtime("serve-single", single_runtime(), plan, &oracles)?;
    check_on_runtime("serve-dist", dist_runtime(), plan, &oracles)
}

/// A typed ticket of either dtype, held in submission order.
enum MixedTicket {
    F32(Ticket<f32>),
    F64(Ticket<f64>),
}

/// Serves the interleaved mixed-dtype trace through one erased `runtime`
/// as a burst and compares every result bit-for-bit against its typed
/// per-request planned execution.
pub(crate) fn check_mixed_on_runtime(
    name: &str,
    runtime: &Runtime,
    plan: &MixedServePlan,
) -> Result<(), String> {
    let load = |e| {
        format!(
            "{name}: load_model failed on mixed trace {}: {e}",
            plan.seed
        )
    };
    let models_f32: Vec<Model<f32>> = plan
        .models_f32
        .iter()
        .map(|f| runtime.load_model(f.clone()))
        .collect::<Result<_, _>>()
        .map_err(load)?;
    let models_f64: Vec<Model<f64>> = plan
        .models_f64
        .iter()
        .map(|f| runtime.load_model(f.clone()))
        .collect::<Result<_, _>>()
        .map_err(load)?;

    let now = runtime.now_us();
    fn opts<T: Element>(req: &PlannedRequest<T>, now: u64) -> SubmitOptions {
        SubmitOptions {
            priority: req.priority,
            deadline_us: req.deadline_slack_us.map(|slack| now + slack),
        }
    }

    // Submit the whole interleaved trace as one burst: both dtypes are in
    // flight together, so a single window batches f32 and f64 groups side
    // by side and the global priority order spans them.
    let mut tickets = Vec::with_capacity(plan.requests.len());
    for req in &plan.requests {
        let ticket = match req {
            MixedRequest::F32(r) => runtime
                .submit_with(&models_f32[r.model], r.x.clone(), opts(r, now))
                .map(MixedTicket::F32),
            MixedRequest::F64(r) => runtime
                .submit_with(&models_f64[r.model], r.x.clone(), opts(r, now))
                .map(MixedTicket::F64),
        }
        .map_err(|e| format!("{name}: submit failed on mixed trace {}: {e}", plan.seed))?;
        tickets.push(ticket);
    }

    for (idx, (ticket, req)) in tickets.into_iter().zip(plan.requests.iter()).enumerate() {
        let diverged = |dtype: &str, model: usize, m: usize, prio: u8| {
            format!(
                "{name}: request {idx} ({dtype} model {model}, M={m}, prio {prio}) of mixed \
                 trace seed {} diverged from the per-request planned execution (bit-exact \
                 contract)\n  regression: MixedServePlan::deterministic({})",
                plan.seed, plan.seed,
            )
        };
        let wait_err = |e| {
            format!(
                "{name}: request {idx} of mixed trace {} failed: {e}",
                plan.seed
            )
        };
        match (ticket, req) {
            (MixedTicket::F32(t), MixedRequest::F32(r)) => {
                let got = t.wait().map_err(wait_err)?;
                let oracle = planned_oracle(&plan.models_f32[r.model], &r.x, plan.seed)?;
                if got.as_slice() != oracle.as_slice() {
                    return Err(diverged("f32", r.model, r.x.rows(), r.priority));
                }
            }
            (MixedTicket::F64(t), MixedRequest::F64(r)) => {
                let got = t.wait().map_err(wait_err)?;
                let oracle = planned_oracle(&plan.models_f64[r.model], &r.x, plan.seed)?;
                if got.as_slice() != oracle.as_slice() {
                    return Err(diverged("f64", r.model, r.x.rows(), r.priority));
                }
            }
            _ => unreachable!("tickets zip requests in submission order"),
        }
    }
    Ok(())
}

/// The mixed-dtype serve-trace oracle: one erased runtime per backend
/// serves the interleaved `f32`+`f64` burst, and every request must
/// match its typed per-request planned execution bit-for-bit. The
/// runtimes are the same process-wide pair the single-dtype checks use,
/// so residual cache state from other traces is part of the test, as in
/// real serving.
pub fn check_mixed_serve_plan(plan: &MixedServePlan) -> Result<(), String> {
    check_mixed_on_runtime("mixed-single", single_runtime(), plan)?;
    check_mixed_on_runtime("mixed-dist", dist_runtime(), plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::KronCase;

    /// Budget guard shared with [`crate::gen`]: every pool chain must
    /// keep worst-case magnitudes exactly representable in `f32`, or the
    /// bit-exact serve-trace contract silently becomes a rounding test.
    #[test]
    fn every_pool_chain_respects_the_exactness_budget() {
        for chain in MODEL_POOL {
            let case = KronCase::<f32>::deterministic(1, chain, 0);
            assert!(
                worst_case_magnitude(&case.problem) < (1 << 24),
                "pool chain {chain:?} breaches the f32 exactness budget"
            );
        }
    }

    #[test]
    fn plans_are_deterministic_and_vary_by_seed() {
        let a = ServePlan::<f64>::deterministic(7);
        let b = ServePlan::<f64>::deterministic(7);
        assert_eq!(a.models.len(), b.models.len());
        assert_eq!(a.requests.len(), b.requests.len());
        for (ra, rb) in a.requests.iter().zip(b.requests.iter()) {
            assert_eq!(ra.model, rb.model);
            assert_eq!(ra.x, rb.x);
            assert_eq!(ra.priority, rb.priority);
            assert_eq!(ra.deadline_slack_us, rb.deadline_slack_us);
        }
        let c = ServePlan::<f64>::deterministic(8);
        assert!(
            a.requests.len() != c.requests.len()
                || a.requests
                    .iter()
                    .zip(c.requests.iter())
                    .any(|(x, y)| x.x != y.x),
            "different seeds must differ"
        );
    }

    #[test]
    fn traces_mix_models_priorities_and_sizes() {
        let plan = ServePlan::<f32>::deterministic(3);
        assert!(plan.models.len() >= 2);
        assert!(plan.requests.len() >= 24);
        let models_hit: std::collections::HashSet<_> =
            plan.requests.iter().map(|r| r.model).collect();
        assert!(models_hit.len() >= 2, "trace must mix models");
        let prios: std::collections::HashSet<_> =
            plan.requests.iter().map(|r| r.priority).collect();
        assert!(prios.len() >= 2, "trace must mix priorities");
    }

    #[test]
    fn mixed_plans_are_deterministic_and_genuinely_interleave() {
        let a = MixedServePlan::deterministic(5);
        let b = MixedServePlan::deterministic(5);
        assert_eq!(a.requests.len(), b.requests.len());
        for (ra, rb) in a.requests.iter().zip(b.requests.iter()) {
            match (ra, rb) {
                (MixedRequest::F32(x), MixedRequest::F32(y)) => assert_eq!(x.x, y.x),
                (MixedRequest::F64(x), MixedRequest::F64(y)) => assert_eq!(x.x, y.x),
                _ => panic!("same seed must interleave identically"),
            }
        }
        // Both dtypes present, and at least one dtype switch inside the
        // arrival order (not two concatenated halves).
        let n32 = a
            .requests
            .iter()
            .filter(|r| matches!(r, MixedRequest::F32(_)))
            .count();
        let n64 = a.requests.len() - n32;
        assert!(
            n32 >= 10 && n64 >= 10,
            "both dtypes must appear: {n32}/{n64}"
        );
        let switches = a
            .requests
            .windows(2)
            .filter(|w| {
                matches!(w[0], MixedRequest::F32(_)) != matches!(w[1], MixedRequest::F32(_))
            })
            .count();
        assert!(switches >= 4, "arrival order must interleave: {switches}");
    }

    #[test]
    fn known_trace_passes_the_differential_oracle() {
        check_serve_plan(&ServePlan::<f64>::deterministic(1)).unwrap();
    }

    #[test]
    fn known_mixed_trace_passes_the_differential_oracle() {
        check_mixed_serve_plan(&MixedServePlan::deterministic(1)).unwrap();
    }
}
