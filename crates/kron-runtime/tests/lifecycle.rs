//! Plan-cache lifecycle contract, made deterministic by the manual
//! clock: LRU eviction order under a bounded cache, idle-timeout
//! eviction, engine-thread teardown on eviction (counted through
//! `kron_dist::live_sim_worker_threads`), pinned-entry survival, and
//! re-warm after eviction — with every served result still checked
//! against the shuffle oracle, so a rebuilt engine is proven correct,
//! not just present.

use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::{assert_matrices_close, Matrix};
use kron_runtime::{Backend, CachePolicy, Clock, Model, Runtime, RuntimeConfig};

/// `live_sim_worker_threads` is process-global, so tests that assert on
/// it must not overlap with other engine-creating tests in this binary.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 7 * r * cols + 3 * c) % 19) as f64 - 9.0
    })
}

fn model_factors(shapes: &[(usize, usize)], seed: usize) -> Vec<Matrix<f64>> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| seq_matrix(p, q, seed + 5 * i + 1))
        .collect()
}

fn oracle(x: &Matrix<f64>, factors: &[Matrix<f64>]) -> Matrix<f64> {
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    kron_matmul_shuffle(x, &refs).unwrap()
}

/// Serves one small request against `model` and checks it against the
/// oracle — the standard "touch this model's cache entry" move.
fn serve_checked(runtime: &Runtime, model: &Model<f64>, factors: &[Matrix<f64>], tag: &str) {
    let x = seq_matrix(2, model.input_cols(), 3);
    let expected = oracle(&x, factors);
    let y = runtime.execute(model, x).unwrap();
    assert_matrices_close(&y, &expected, tag);
}

#[test]
fn lru_eviction_order_under_a_capacity_2_cache() {
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        cache: CachePolicy {
            max_entries: 2,
            max_idle_us: None,
            max_bytes: None,
        },
        ..RuntimeConfig::default()
    });
    // Three distinct shape chains → three distinct cache keys.
    let fa = model_factors(&[(2, 2), (2, 2)], 1);
    let fb = model_factors(&[(3, 3)], 2);
    let fc = model_factors(&[(4, 4)], 3);
    let a = runtime.load_model(fa.clone()).unwrap();
    let b = runtime.load_model(fb.clone()).unwrap();
    let c = runtime.load_model(fc.clone()).unwrap();

    serve_checked(&runtime, &a, &fa, "warm A");
    serve_checked(&runtime, &b, &fb, "warm B");
    let stats = runtime.stats();
    assert_eq!(stats.cached_entries, 2, "stats: {stats:?}");
    assert_eq!(stats.evictions, 0, "stats: {stats:?}");
    assert_eq!(runtime.cached_entries(), 2);

    // C must evict the least-recently-used entry: A.
    serve_checked(&runtime, &c, &fc, "C evicts A");
    let stats = runtime.stats();
    assert_eq!(stats.cached_entries, 2, "stats: {stats:?}");
    assert_eq!(stats.evictions, 1, "stats: {stats:?}");

    // B survived (cache hit, no new plan) — if the eviction picked the
    // wrong victim, this would be a miss.
    let misses_before = runtime.stats().plan_misses;
    serve_checked(&runtime, &b, &fb, "B survived as MRU");
    assert_eq!(runtime.stats().plan_misses, misses_before);

    // Re-warm after eviction: A rebuilds (counted), evicting today's LRU
    // (C), and still serves bit-correct results.
    serve_checked(&runtime, &a, &fa, "A re-warms");
    let stats = runtime.stats();
    assert_eq!(stats.rebuilds, 1, "stats: {stats:?}");
    assert_eq!(stats.evictions, 2, "stats: {stats:?}");
    assert_eq!(stats.cached_entries, 2, "stats: {stats:?}");
    // And the victim really was C, not B.
    let misses_before = runtime.stats().plan_misses;
    serve_checked(&runtime, &b, &fb, "B still resident");
    assert_eq!(runtime.stats().plan_misses, misses_before);
}

#[test]
fn idle_timeout_eviction_via_the_test_clock() {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        clock,
        cache: CachePolicy {
            max_entries: usize::MAX,
            max_idle_us: Some(1_000),
            max_bytes: None,
        },
        ..RuntimeConfig::default()
    });
    let fa = model_factors(&[(2, 2), (2, 2)], 1);
    let fb = model_factors(&[(3, 3)], 2);
    let a = runtime.load_model(fa.clone()).unwrap();
    let b = runtime.load_model(fb.clone()).unwrap();

    // A used at t=0; B at t=500.
    serve_checked(&runtime, &a, &fa, "A at t=0");
    time.advance_us(500);
    serve_checked(&runtime, &b, &fb, "B at t=500");
    assert_eq!(runtime.cached_entries(), 2);

    // t=1600: A is 1600us idle (> 1000), B only 1100... also expired.
    // First check the boundary: at t=1400, A (1400) is out, B (900) is
    // not.
    time.advance_us(900);
    assert_eq!(runtime.sweep(), 1, "exactly A expires at t=1400");
    let stats = runtime.stats();
    assert_eq!(stats.evictions, 1, "stats: {stats:?}");
    assert_eq!(stats.cached_entries, 1, "stats: {stats:?}");

    // A sweep with nothing expired is a no-op.
    assert_eq!(runtime.sweep(), 0);

    // The scheduler also sweeps on its own cycle boundary: advance far
    // past B's timeout and serve A — B's entry goes without an explicit
    // sweep() call, while A rebuilds and serves correctly.
    time.advance_us(10_000);
    serve_checked(&runtime, &a, &fa, "A re-warms after idle eviction");
    let stats = runtime.stats();
    assert_eq!(stats.evictions, 2, "stats: {stats:?}");
    assert_eq!(stats.rebuilds, 1, "stats: {stats:?}");
    assert_eq!(stats.cached_entries, 1, "only A remains: {stats:?}");
}

#[test]
fn eviction_joins_engine_worker_threads() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let base = kron_dist::live_sim_worker_threads();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        backend: Backend::Distributed {
            gpus: 4,
            p2p: false,
        },
        cache: CachePolicy {
            max_entries: 1,
            max_idle_us: None,
            max_bytes: None,
        },
        ..RuntimeConfig::default()
    });
    // Both shardable over the {2,2} grid: each entry pins GM·GK = 4
    // simulated-device threads.
    let fa = model_factors(&[(4, 4), (4, 4)], 1);
    let fb = model_factors(&[(8, 8), (8, 8)], 2);
    let a = runtime.load_model(fa.clone()).unwrap();
    let b = runtime.load_model(fb.clone()).unwrap();

    serve_checked(&runtime, &a, &fa, "sharded A");
    assert_eq!(kron_dist::live_sim_worker_threads(), base + 4);

    // Serving B evicts A under the capacity-1 bound; A's engine must have
    // joined all 4 workers before B's spawned (never exceeds the bound).
    serve_checked(&runtime, &b, &fb, "sharded B evicts A");
    assert_eq!(
        kron_dist::live_sim_worker_threads(),
        base + 4,
        "evicted engine must join its GM*GK workers"
    );
    let stats = runtime.stats();
    assert_eq!(stats.evictions, 1, "stats: {stats:?}");
    assert_eq!(stats.cached_entries, 1, "stats: {stats:?}");

    // A full rotation back: rebuild works, still bounded.
    serve_checked(&runtime, &a, &fa, "sharded A re-warms");
    assert_eq!(kron_dist::live_sim_worker_threads(), base + 4);
    assert_eq!(runtime.stats().rebuilds, 1);

    // Shutdown tears the last engine down too.
    runtime.shutdown();
    assert_eq!(kron_dist::live_sim_worker_threads(), base);
}

#[test]
fn capacity_bound_holds_while_serving_more_shapes_than_entries() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let base = kron_dist::live_sim_worker_threads();
    const MAX_ENTRIES: usize = 2;
    const GPUS: usize = 4;
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        backend: Backend::Distributed {
            gpus: GPUS,
            p2p: false,
        },
        cache: CachePolicy {
            max_entries: MAX_ENTRIES,
            max_idle_us: None,
            max_bytes: None,
        },
        ..RuntimeConfig::default()
    });
    // N > capacity distinct shardable shapes, rotated twice.
    let factor_sets: Vec<Vec<Matrix<f64>>> = vec![
        model_factors(&[(4, 4), (4, 4)], 1),
        model_factors(&[(8, 8), (8, 8)], 2),
        model_factors(&[(4, 4), (4, 4), (4, 4)], 3),
        model_factors(&[(2, 2), (2, 2), (2, 2), (2, 2)], 4),
    ];
    let models: Vec<Model<f64>> = factor_sets
        .iter()
        .map(|fs| runtime.load_model(fs.clone()).unwrap())
        .collect();

    for round in 0..2 {
        for (i, model) in models.iter().enumerate() {
            serve_checked(
                &runtime,
                model,
                &factor_sets[i],
                &format!("round {round} model {i}"),
            );
            // The lifecycle acceptance bound: live engines (counted by
            // worker threads) never exceed max_entries.
            let live = kron_dist::live_sim_worker_threads() - base;
            assert!(
                live <= MAX_ENTRIES * GPUS,
                "round {round} model {i}: {live} live workers exceeds the \
                 {MAX_ENTRIES}-entry bound"
            );
            assert!(runtime.cached_entries() <= MAX_ENTRIES);
        }
    }
    let stats = runtime.stats();
    // 4 shapes through a 2-entry cache, twice: every visit after warmup
    // evicts and (from round 2) rebuilds.
    assert!(stats.evictions >= 6, "stats: {stats:?}");
    assert!(stats.rebuilds >= 4, "stats: {stats:?}");
    runtime.shutdown();
    assert_eq!(kron_dist::live_sim_worker_threads(), base);
}

#[test]
fn pinned_entry_survives_eviction_pressure_until_released() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let base = kron_dist::live_sim_worker_threads();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        backend: Backend::Distributed {
            gpus: 4,
            p2p: false,
        },
        cache: CachePolicy {
            max_entries: 1,
            max_idle_us: None,
            max_bytes: None,
        },
        ..RuntimeConfig::default()
    });
    let fa = model_factors(&[(4, 4), (4, 4)], 1);
    let fb = model_factors(&[(8, 8), (8, 8)], 2);
    let fc = model_factors(&[(4, 4), (4, 4), (4, 4)], 3);
    let a = runtime.load_model(fa.clone()).unwrap();
    let b = runtime.load_model(fb.clone()).unwrap();
    let c = runtime.load_model(fc.clone()).unwrap();

    // Pin A: builds (and pre-warms) its sharded engine.
    let pin = runtime.pin_model(&a).unwrap();
    assert_eq!(kron_dist::live_sim_worker_threads(), base + 4);
    let misses_after_pin = runtime.stats().plan_misses;

    // Rotate other shapes through the capacity-1 cache. The pinned entry
    // is exempt: the cache overflows to 2 (pin override) but A is never
    // the victim.
    serve_checked(&runtime, &b, &fb, "B under pin");
    serve_checked(&runtime, &c, &fc, "C under pin");
    serve_checked(&runtime, &b, &fb, "B again under pin");
    let stats = runtime.stats();
    assert!(stats.evictions >= 2, "unpinned shapes churn: {stats:?}");

    // A's entry is still the pinned original: serving it is a pure hit.
    let hits_before = runtime.stats().plan_hits;
    serve_checked(&runtime, &a, &fa, "pinned A still warm");
    let stats = runtime.stats();
    assert_eq!(stats.plan_hits, hits_before + 1, "stats: {stats:?}");
    assert_eq!(
        stats.plan_misses - misses_after_pin,
        3,
        "only B, C, B rebuilt"
    );

    // Release the pin: A becomes evictable again and the bound recovers.
    drop(pin);
    serve_checked(&runtime, &b, &fb, "B after unpin");
    serve_checked(&runtime, &c, &fc, "C after unpin evicts A or B");
    assert!(runtime.cached_entries() <= 2);
    let evictions_after_unpin = runtime.stats().evictions;
    assert!(evictions_after_unpin >= 4, "stats: {:?}", runtime.stats());
    runtime.shutdown();
    assert_eq!(kron_dist::live_sim_worker_threads(), base);
}

#[test]
fn byte_budget_bounds_resident_bytes_across_dtypes() {
    // A budget sized for one f64 entry: rotating same-shape f64 and f32
    // models through it must evict across the dtype boundary (the ledger
    // is global), keep the gauge within budget, and keep serving
    // bit-correct results.
    let shapes: &[(usize, usize)] = &[(4, 4), (4, 4)];
    let fa = model_factors(shapes, 1);
    let f32_factors: Vec<Matrix<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| Matrix::from_fn(p, q, |r, c| ((i * 5 + r * q + c) % 11) as f32 - 5.0))
        .collect();

    // Probe the f64 entry's accounted footprint with an unbounded twin.
    let probe = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        ..RuntimeConfig::default()
    });
    let pa = probe.load_model(fa.clone()).unwrap();
    serve_checked(&probe, &pa, &fa, "probe A");
    let budget = probe.cached_bytes();
    assert!(budget > 0, "an entry must account nonzero bytes");
    probe.shutdown();

    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        cache: CachePolicy {
            max_entries: usize::MAX,
            max_idle_us: None,
            max_bytes: Some(budget),
        },
        ..RuntimeConfig::default()
    });
    let a = runtime.load_model(fa.clone()).unwrap();
    let b = runtime.load_model(f32_factors.clone()).unwrap();
    serve_checked(&runtime, &a, &fa, "A under budget");
    assert_eq!(runtime.cached_entries(), 1);
    assert!(runtime.cached_bytes() <= budget);

    // The same-shape f32 entry is half the bytes, but the budget cannot
    // hold both: serving B must evict A (cross-dtype eviction).
    let refs32: Vec<&Matrix<f32>> = f32_factors.iter().collect();
    let x32 = Matrix::<f32>::from_fn(2, b.input_cols(), |r, c| ((r + c) % 7) as f32 - 3.0);
    let expected = kron_core::shuffle::kron_matmul_shuffle(&x32, &refs32).unwrap();
    let y32 = runtime.execute(&b, x32).unwrap();
    assert_matrices_close(&y32, &expected, "f32 B evicts f64 A");
    let stats = runtime.stats();
    assert_eq!(stats.evictions, 1, "stats: {stats:?}");
    assert_eq!(stats.cached_entries, 1, "stats: {stats:?}");
    assert!(stats.cached_bytes as usize <= budget, "stats: {stats:?}");
    assert_eq!(
        stats.cached_bytes as usize,
        runtime.cached_bytes(),
        "gauge and probe agree"
    );

    // A comes back (rebuild counted), evicting B in turn — and still
    // serves bit-correct results through the rebuilt entry.
    serve_checked(&runtime, &a, &fa, "A re-warms under the byte budget");
    let stats = runtime.stats();
    assert_eq!(stats.rebuilds, 1, "stats: {stats:?}");
    assert_eq!(stats.evictions, 2, "stats: {stats:?}");
    assert!(stats.cached_bytes as usize <= budget, "stats: {stats:?}");
}

#[test]
fn unshardable_model_budget_admits_at_the_local_fallback_footprint() {
    // A rectangular chain the grid cannot shard is served through the
    // documented local fallback — so the byte-budget admission check must
    // size it as the local entry it will actually build, not as the
    // (larger) sharded entry it never will. A budget that exactly fits
    // the local footprint must admit and serve the model.
    let f = model_factors(&[(2, 3), (3, 2)], 5);

    // Probe the local footprint with an unbounded single-node twin (the
    // fallback builds the identical entry shape).
    let probe = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        ..RuntimeConfig::default()
    });
    let pm = probe.load_model(f.clone()).unwrap();
    serve_checked(&probe, &pm, &f, "probe rect");
    let local_budget = probe.cached_bytes();
    probe.shutdown();

    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        backend: Backend::Distributed {
            gpus: 4,
            p2p: false,
        },
        cache: CachePolicy {
            max_entries: usize::MAX,
            max_idle_us: None,
            max_bytes: Some(local_budget),
        },
        ..RuntimeConfig::default()
    });
    let model = runtime.load_model(f.clone()).unwrap();
    serve_checked(
        &runtime,
        &model,
        &f,
        "rect model under a local-sized budget",
    );
    let stats = runtime.stats();
    assert!(stats.local_fallbacks >= 1, "stats: {stats:?}");
    assert!(
        stats.cached_bytes as usize <= local_budget,
        "stats: {stats:?}"
    );
}

#[test]
fn oversized_entry_fails_with_cache_budget_exceeded() {
    // A budget smaller than any entry: every request for the model fails
    // with the documented error instead of silently blowing the bound —
    // and the runtime keeps serving once the caller picks a model that
    // fits... which none does here, so everything fails cleanly.
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        cache: CachePolicy {
            max_entries: usize::MAX,
            max_idle_us: None,
            max_bytes: Some(16),
        },
        ..RuntimeConfig::default()
    });
    let fa = model_factors(&[(4, 4), (4, 4)], 1);
    let a = runtime.load_model(fa.clone()).unwrap();
    let x = seq_matrix(2, a.input_cols(), 3);
    match runtime.execute(&a, x) {
        Err(kron_core::KronError::CacheBudgetExceeded {
            required_bytes,
            max_bytes,
        }) => {
            assert!(required_bytes > max_bytes);
            assert_eq!(max_bytes, 16);
        }
        other => panic!("expected CacheBudgetExceeded, got {other:?}"),
    }
    assert_eq!(runtime.cached_entries(), 0, "nothing was built");
    assert_eq!(runtime.cached_bytes(), 0);
    // Pinning an oversized model reports the same error.
    match runtime.pin_model(&a).map(|_| ()) {
        Err(kron_core::KronError::CacheBudgetExceeded { .. }) => {}
        other => panic!("expected CacheBudgetExceeded from pin, got {other:?}"),
    }
}

#[test]
fn cache_keys_reflect_residency() {
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        cache: CachePolicy {
            max_entries: 2,
            max_idle_us: None,
            max_bytes: None,
        },
        ..RuntimeConfig::default()
    });
    let fa = model_factors(&[(2, 2), (2, 2)], 1);
    let a = runtime.load_model(fa.clone()).unwrap();
    assert!(runtime.cache_keys().is_empty());
    serve_checked(&runtime, &a, &fa, "warm A");
    let keys = runtime.cache_keys();
    assert_eq!(keys.len(), 1);
    // The batch-capacity entry for A's shape chain: M = max_batch_rows,
    // K = 4.
    assert_eq!(keys[0].problem.m, 16);
    assert_eq!(keys[0].problem.input_cols(), 4);
}
