//! Quickstart: plan a Kron-Matmul, execute it, verify against the naive
//! oracle, and print the simulated-GPU report.
//!
//! Run with `cargo run --release --example quickstart`.

use fastkron::prelude::*;
use kron_core::naive::kron_matmul_naive;

fn main() {
    // Y[M × Q^N] = X[M × P^N] · (F1 ⊗ … ⊗ FN), here M=32, P=Q=8, N=4.
    let problem = KronProblem::uniform(32, 8, 4).expect("valid shape");
    let k = problem.input_cols();
    println!("Problem: {problem} (X is 32×{k})");

    let x = Matrix::<f32>::from_fn(32, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
    let factors: Vec<Matrix<f32>> = (0..4)
        .map(|i| Matrix::from_fn(8, 8, |r, c| ((i * 3 + r * 8 + c) % 11) as f32 - 5.0))
        .collect();
    let refs: Vec<&Matrix<f32>> = factors.iter().collect();

    // Plan once (autotunes tile sizes for the V100 model), execute many.
    let plan = FastKron::plan::<f32>(&problem, &V100).expect("planning succeeds");
    let y = plan.execute(&x, &refs).expect("execution succeeds");
    println!("Result: {}×{}", y.rows(), y.cols());

    // Cross-check against the materialized Kronecker product.
    let oracle = kron_matmul_naive(&x, &refs).expect("oracle");
    assert_matrices_close(&y, &oracle, "quickstart");
    println!("Verified against the naive oracle.");

    // What would this cost on a real V100?
    let report = plan.simulate().expect("simulation succeeds");
    println!(
        "Simulated V100 time: {:.3} ms over {} kernel launches ({:.2} TFLOPS)",
        report.seconds * 1e3,
        report.launches,
        report.tflops(problem.flops())
    );
    for step in &report.steps {
        println!("  {}: {:.3} ms", step.label, step.seconds * 1e3);
    }
}
