//! Counting-allocator proof of the fused execution path's contract: after
//! [`Workspace`] creation, executing a whole factor chain into
//! caller-provided output performs **zero heap allocations** — no per-step
//! intermediates, no transpose scratch, nothing.
//!
//! The test binary installs a global allocator that counts allocations, so
//! everything here runs below the parallel-dispatch FLOP threshold: row
//! tiles would otherwise spawn scoped threads, which allocate once per
//! execute (never per factor step) and would make the count host-dependent.

use fastkron_core::exec::Workspace;
use kron_core::{FactorShape, KronProblem, Matrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` — every layout/pointer
// contract is forwarded unchanged; the only addition is a relaxed
// counter bump, which touches no allocator state.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: pass-through to `System::realloc`, contracts forwarded.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations performed while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, result)
}

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + r * cols + c) % 11) as f64 - 5.0
    })
}

fn assert_allocation_free(problem: &KronProblem, label: &str) {
    let x = seq_matrix(problem.m, problem.input_cols(), 1);
    let fs: Vec<Matrix<f64>> = problem
        .factors
        .iter()
        .enumerate()
        .map(|(i, s)| seq_matrix(s.p, s.q, i + 2))
        .collect();
    let refs: Vec<&Matrix<f64>> = fs.iter().collect();

    let mut workspace = Workspace::new(problem);
    let mut y = Matrix::zeros(problem.m, problem.output_cols());
    // Warm-up proves correctness-independent state (nothing lazily grows).
    workspace.execute_into(&x, &refs, &mut y).unwrap();

    let (allocs, result) = allocations_during(|| workspace.execute_into(&x, &refs, &mut y));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "{label}: fused exec path allocated {allocs} times after Workspace creation"
    );

    // The result is still right, not just cheap.
    let oracle = kron_core::naive::kron_matmul_naive(&x, &refs).unwrap();
    kron_core::assert_matrices_close(&y, &oracle, label);
}

#[test]
fn uniform_chain_is_allocation_free() {
    assert_allocation_free(
        &KronProblem::uniform(2, 4, 3).unwrap(),
        "uniform 4^3 (3 factor steps)",
    );
}

#[test]
fn long_chain_is_allocation_free() {
    // Six factor steps: per-step allocation would show up six-fold.
    assert_allocation_free(
        &KronProblem::uniform(1, 2, 6).unwrap(),
        "uniform 2^6 (6 factor steps)",
    );
}

#[test]
fn mixed_rectangular_chain_is_allocation_free() {
    assert_allocation_free(
        &KronProblem::new(
            2,
            vec![
                FactorShape::new(2, 3),
                FactorShape::new(3, 2),
                FactorShape::new(4, 4),
            ],
        )
        .unwrap(),
        "mixed 2×3 ⊗ 3×2 ⊗ 4×4",
    );
}

#[test]
fn old_per_step_path_allocated_and_fused_does_not() {
    // Regression guard on the motivation itself: the shuffle reference
    // allocates per factor step (reshape-GEMM-transpose materializes fresh
    // matrices); the fused path must not.
    let problem = KronProblem::uniform(2, 4, 3).unwrap();
    let x = seq_matrix(2, 64, 3);
    let fs: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(4, 4, i)).collect();
    let refs: Vec<&Matrix<f64>> = fs.iter().collect();

    let (shuffle_allocs, _) =
        allocations_during(|| kron_core::shuffle::kron_matmul_shuffle(&x, &refs).unwrap());
    assert!(
        shuffle_allocs >= problem.num_factors() as u64,
        "shuffle reference was expected to allocate per step, saw {shuffle_allocs}"
    );

    let mut workspace = Workspace::<f64>::new(&problem);
    let mut y = Matrix::zeros(2, 64);
    workspace.execute_into(&x, &refs, &mut y).unwrap();
    let (fused_allocs, _) = allocations_during(|| workspace.execute_into(&x, &refs, &mut y));
    assert_eq!(fused_allocs, 0);
}
