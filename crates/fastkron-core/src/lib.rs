//! # fastkron-core
//!
//! The paper's contribution: Kron-Matmul by *sliced multiplication*
//! (Algorithm 1), a tiled kernel with shift caching (§4.1), fusion of
//! consecutive sliced multiplications in shared memory (§4.2), and an
//! autotuner over tile sizes (§4.3).
//!
//! Three execution layers are provided:
//!
//! * [`algorithm`] — fast, rayon-parallel functional execution (produces
//!   the numbers),
//! * [`kernel`] / [`fused`] — thread-block-accurate emulation of the CUDA
//!   kernels, usable both functionally (tests) and in address-only trace
//!   mode (performance counters),
//! * [`engine`] — the public planned API: [`FastKron::plan`] autotunes tile
//!   sizes for a problem on a device, [`KronPlan::execute`] computes, and
//!   [`KronPlan::simulate`] produces a simulated-time [`gpu_sim::ExecReport`].

#![deny(missing_docs)]

pub mod algorithm;
pub mod engine;
pub mod fused;
pub mod kernel;
pub mod tile;
pub mod tuner;

pub use engine::{FastKron, KronPlan, PlanStage};
pub use tile::{Caching, TileConfig};
pub use tuner::{AutoTuner, Constraints, TuneOutcome, TuneReport};
