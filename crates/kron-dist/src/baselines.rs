//! Distributed baselines of §6.3: CTF and DISTAL.
//!
//! Both partition `X` the same way FastKron does but communicate the
//! intermediate after **every** factor multiplication:
//!
//! * **CTF** (Cyclops Tensor Framework) executes the distributed shuffle
//!   algorithm — a distributed GEMM per factor followed by a distributed
//!   transpose, which moves the whole intermediate across the fabric *and*
//!   through each GPU's DRAM again.
//! * **DISTAL** compiles the FTMMT algorithm with a user schedule: the
//!   transpose is fused into the local contraction (so it beats CTF), but
//!   the paper notes its schedule language cannot express Algorithm 2's
//!   grouped exchanges, so it still communicates once per factor.

use crate::fabric::{CommModel, GpuGrid};
use fastkron_core::kernel::SlicedMultiplyKernel;
use fastkron_core::tuner::{AutoTuner, Constraints};
use fastkron_core::Caching;
use gpu_sim::cost::CostModel;
use gpu_sim::device::DeviceSpec;
use gpu_sim::models::{CublasModel, TransposeModel};
use gpu_sim::trace::Tracer;
use gpu_sim::ExecReport;
use kron_core::{Element, KronError, KronProblem, Matrix, Result};

fn dist_shape(grid: GpuGrid, problem: &KronProblem) -> Result<(usize, usize, usize, usize)> {
    if !problem.is_uniform() || problem.factors[0].p != problem.factors[0].q {
        return Err(KronError::InvalidGrid {
            reason: "distributed baselines require identical square factors".into(),
        });
    }
    let p = problem.factors[0].p;
    let k = problem.input_cols();
    if !problem.m.is_multiple_of(grid.gm) || !k.is_multiple_of(grid.gk) {
        return Err(KronError::InvalidGrid {
            reason: format!(
                "M = {} / K = {k} not divisible by grid {}×{}",
                problem.m, grid.gm, grid.gk
            ),
        });
    }
    Ok((problem.m / grid.gm, k / grid.gk, p, problem.num_factors()))
}

/// Cyclops Tensor Framework model: distributed shuffle algorithm.
pub struct CtfEngine {
    grid: GpuGrid,
    comm: CommModel,
    cublas: CublasModel,
    transpose: TransposeModel,
}

/// Effective per-GPU communication bandwidth for CTF, bytes/s. CTF is an
/// MPI framework; on a DGX-2 its redistributions stage GPU buffers through
/// host memory over PCIe rather than NVLink, which caps effective
/// throughput far below the fabric's 150 GB/s (calibrated against the
/// paper's 7.85× gap at 16 GPUs).
pub const CTF_COMM_BW: f64 = 25e9;

/// Effective per-GPU communication bandwidth for DISTAL, bytes/s. DISTAL's
/// Legion runtime moves whole logical-region instances between iterations;
/// GPU-aware but with copy-in/copy-out on both sides (calibrated against
/// the paper's 5.33× gap at 16 GPUs).
pub const DISTAL_COMM_BW: f64 = 50e9;

impl CtfEngine {
    /// Builds the engine for `gpus` devices.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] for unsupported GPU counts.
    pub fn new(device: &DeviceSpec, gpus: usize) -> Result<Self> {
        Ok(CtfEngine {
            grid: GpuGrid::for_gpus(gpus)?,
            comm: CommModel {
                alpha: device.nvlink_latency * 4.0,
                beta_bw: CTF_COMM_BW,
            },
            cublas: CublasModel::new(device),
            transpose: TransposeModel::new(device),
        })
    }

    /// Functional result (CTF computes the same map; its distribution is
    /// an implementation detail, so the shuffle reference serves).
    ///
    /// # Errors
    /// Shape errors from the reference algorithm.
    pub fn execute<T: Element>(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        kron_core::shuffle::kron_matmul_shuffle(x, factors)
    }

    /// Simulated wall time: per factor, a local GEMM + a distributed
    /// transpose (exchange + local strided copy).
    ///
    /// # Errors
    /// Shape/grid errors.
    pub fn simulate<T: Element>(&self, problem: &KronProblem) -> Result<ExecReport> {
        let (tgm, tgk, p, n) = dist_shape(self.grid, problem)?;
        let dtype = T::DTYPE;
        let e = dtype.bytes() as u64;
        let mut report = ExecReport::new(format!("CTF-{}GPU", self.grid.gpus()));
        let block_bytes = (tgm * tgk) as u64 * e;
        for _ in 0..n {
            let t_gemm = self.cublas.gemm_time(tgm * tgk / p, p, p, dtype);
            report.add_step("matmul", t_gemm);
            // Distributed transpose: CTF redistributes the whole cyclic
            // layout (full block over the wire) + a local transpose pass.
            let mut t_trans = self.transpose.transpose_time(tgm, tgk / p, p, dtype);
            if self.grid.gk > 1 {
                t_trans += self.comm.send_time(block_bytes, self.grid.gk - 1);
                report.comm_bytes += block_bytes * self.grid.gpus() as u64;
            }
            report.add_step("dist-transpose", t_trans);
            report.launches += 2;
            report.stats.flops += 2 * (tgm * tgk) as u64 * p as u64 * self.grid.gpus() as u64;
        }
        Ok(report)
    }
}

/// DISTAL model: distributed FTMMT with per-iteration exchanges.
pub struct DistalEngine {
    device: DeviceSpec,
    grid: GpuGrid,
    comm: CommModel,
}

impl DistalEngine {
    /// Builds the engine for `gpus` devices.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] for unsupported GPU counts.
    pub fn new(device: &DeviceSpec, gpus: usize) -> Result<Self> {
        Ok(DistalEngine {
            device: device.clone(),
            grid: GpuGrid::for_gpus(gpus)?,
            comm: CommModel {
                alpha: device.nvlink_latency * 2.0,
                beta_bw: DISTAL_COMM_BW,
            },
        })
    }

    /// Functional result via the FTMMT reference.
    ///
    /// # Errors
    /// Shape errors from the reference algorithm.
    pub fn execute<T: Element>(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        kron_core::ftmmt::kron_matmul_ftmmt(x, factors)
    }

    /// Simulated wall time: per factor, a fused local contraction
    /// (direct-cached kernel, like cuTensor) + one exchange.
    ///
    /// # Errors
    /// Shape/grid or tuning errors.
    pub fn simulate<T: Element>(&self, problem: &KronProblem) -> Result<ExecReport> {
        let (tgm, tgk, p, n) = dist_shape(self.grid, problem)?;
        let dtype = T::DTYPE;
        let mut report = ExecReport::new(format!("DISTAL-{}GPU", self.grid.gpus()));

        let tuner = AutoTuner::new(&self.device);
        let cost = CostModel::new(&self.device);
        let outcome = tuner.tune_constrained(
            tgm,
            tgk,
            p,
            p,
            dtype,
            Constraints {
                caching: Caching::Direct,
                tp: None,
                rk: None,
            },
        )?;
        let zeros = Matrix::<T>::zeros(p, p);
        let kern = SlicedMultiplyKernel::new(outcome.config, tgm, tgk, &zeros)?;
        let mut tracer = Tracer::new(&self.device);
        let per_block = kern.trace_block(&mut tracer);
        let launch = outcome.config.launch(tgm, tgk, p, p, dtype);
        let stats = per_block.scaled(launch.grid_blocks as u64);
        let t_mul = cost.kernel_time(&launch, &stats, dtype)?.total_s;

        let e = dtype.bytes() as u64;
        let block_bytes = (tgm * tgk) as u64 * e;
        for _ in 0..n {
            report.add_step("contraction", t_mul);
            report.stats += stats;
            report.launches += 1;
            if self.grid.gk > 1 {
                // Legion re-materializes the distributed instance every
                // iteration: the full block crosses the fabric.
                let t_comm = self.comm.send_time(block_bytes, self.grid.gk - 1)
                    + (2 * block_bytes) as f64 / self.device.dram_bw;
                report.add_step("exchange", t_comm);
                report.comm_bytes += block_bytes * self.grid.gpus() as u64;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastkron::DistFastKron;
    use gpu_sim::device::V100;

    #[test]
    fn figure11_system_ordering_at_16_gpus() {
        // FastKron < DISTAL < CTF in wall time (paper: 7.85× over CTF,
        // 5.33× over DISTAL at 16 GPUs).
        let problem = KronProblem::uniform(2048, 64, 4).unwrap();
        let fk = DistFastKron::new(&V100, 16).unwrap();
        let ctf = CtfEngine::new(&V100, 16).unwrap();
        let distal = DistalEngine::new(&V100, 16).unwrap();
        let t_fk = fk.simulate::<f32>(&problem).unwrap().seconds;
        let t_ctf = ctf.simulate::<f32>(&problem).unwrap().seconds;
        let t_distal = distal.simulate::<f32>(&problem).unwrap().seconds;
        assert!(t_fk < t_distal, "FastKron {t_fk} vs DISTAL {t_distal}");
        assert!(t_distal < t_ctf, "DISTAL {t_distal} vs CTF {t_ctf}");
        let speedup_ctf = t_ctf / t_fk;
        assert!(
            (2.0..=20.0).contains(&speedup_ctf),
            "speedup over CTF {speedup_ctf}"
        );
    }

    #[test]
    fn fastkron_communicates_least() {
        let problem = KronProblem::uniform(1024, 64, 4).unwrap();
        let fk = DistFastKron::new(&V100, 16).unwrap();
        let ctf = CtfEngine::new(&V100, 16).unwrap();
        let distal = DistalEngine::new(&V100, 16).unwrap();
        let b_fk = fk.simulate::<f32>(&problem).unwrap().comm_bytes;
        let b_ctf = ctf.simulate::<f32>(&problem).unwrap().comm_bytes;
        let b_distal = distal.simulate::<f32>(&problem).unwrap().comm_bytes;
        assert!(b_fk < b_distal);
        assert!(b_fk < b_ctf);
        // DISTAL exchanges once per factor; FastKron once per Nlocal = 3
        // multiplies here (⌊log64 64^4/4⌋ = 3) → 2 rounds vs 4.
        assert_eq!(b_distal / b_fk, 2);
    }

    #[test]
    fn functional_baselines_work() {
        let x = Matrix::<f64>::from_fn(4, 16, |r, c| (r + c) as f64);
        let f = Matrix::<f64>::identity(4);
        let ctf = CtfEngine::new(&V100, 4).unwrap();
        let distal = DistalEngine::new(&V100, 4).unwrap();
        assert_eq!(ctf.execute(&x, &[&f, &f]).unwrap(), x);
        assert_eq!(distal.execute(&x, &[&f, &f]).unwrap(), x);
    }

    #[test]
    fn rejects_invalid() {
        assert!(CtfEngine::new(&V100, 5).is_err());
        assert!(DistalEngine::new(&V100, 7).is_err());
        let ctf = CtfEngine::new(&V100, 16).unwrap();
        let p = KronProblem::uniform(7, 4, 4).unwrap();
        assert!(ctf.simulate::<f32>(&p).is_err());
    }
}
