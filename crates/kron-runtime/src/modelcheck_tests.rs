//! Deterministic model-check suites for the runtime's lock-free
//! admission protocols, exploring every thread interleaving within a
//! preemption bound instead of hoping a stress test gets lucky.
//!
//! Three protocols are covered, each driven through the *production*
//! code (the same functions the submit path runs, reached through the
//! `crossbeam::sync` facade):
//!
//! * [`LaneGate`] — close vs. concurrent senders: once `close()`
//!   returns, no sender is inside the gate and anything pushed next is
//!   provably the last message on the ring.
//! * the bypass CAS claim ([`bypass_try_claim`] /
//!   [`bypass_release_claim`]) — mutual exclusion of the inline lane,
//!   no gauge underflow, no double-win.
//! * the [`FlightRecorder`] seqlock — drains never observe torn or
//!   unpublished event bytes, at ring capacities small enough that
//!   writers lap readers inside the exploration budget.
//!
//! Plus mutation validation: a check-then-claim replica of the bypass
//! race PR 9's CAS fixed, and a no-recheck replica of the seqlock
//! drain, both asserted to be *caught*. If those tests fail, the
//! checker has gone blind to the bug classes this module exists to
//! prevent.

use crate::runtime::{bypass_release_claim, bypass_try_claim, LaneGate};
use crate::trace::{FlightRecorder, ServeEvent, ServeEventKind};
use crossbeam::queue::ArrayQueue;
use crossbeam::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use crossbeam::sync::Arc;
use kron_modelcheck::{thread, Builder, FailureKind};

fn explorer() -> Builder {
    Builder {
        preemption_bound: 2,
        max_iterations: 400_000,
        max_branches: 20_000,
        random_walks: 2_000,
        ..Builder::default()
    }
}

fn check_pass(name: &str, f: impl Fn() + Send + Sync + 'static) {
    let report = explorer()
        .check(f)
        .unwrap_or_else(|failure| panic!("{name}: {failure}"));
    eprintln!(
        "{name}: {} iterations (exhaustive: {})",
        report.iterations, report.exhaustive
    );
}

// ------------------------------------------------------------- LaneGate

#[test]
fn lane_gate_close_vs_send_shutdown_is_last() {
    // The shutdown protocol: senders enter the gate, push, exit; the
    // closer closes (waits for the sender count to drain) and then
    // pushes a shutdown marker. Under every interleaving the marker
    // must be the last message in the ring — a sender that won entry
    // finished its push before `close()` returned, and one that lost
    // pushed nothing.
    check_pass("gate-shutdown-last", || {
        const MARKER: u32 = 99;
        let gate = Arc::new(LaneGate::new());
        let ring = Arc::new(ArrayQueue::new(4));
        let senders: Vec<_> = [1u32, 2]
            .into_iter()
            .map(|v| {
                let gate = Arc::clone(&gate);
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    if gate.try_enter() {
                        ring.push(v).unwrap();
                        gate.exit();
                        true
                    } else {
                        false
                    }
                })
            })
            .collect();
        gate.close();
        assert!(gate.is_closed());
        ring.push(MARKER).unwrap();
        let admitted: Vec<bool> = senders.into_iter().map(|s| s.join().unwrap()).collect();
        let mut drained = Vec::new();
        while let Some(v) = ring.pop() {
            drained.push(v);
        }
        assert_eq!(
            drained.last(),
            Some(&MARKER),
            "a sender pushed after close() returned"
        );
        // Exactly the admitted senders' messages precede the marker.
        assert_eq!(
            drained.len() - 1,
            admitted.iter().filter(|ok| **ok).count(),
            "admission decisions and ring contents disagree"
        );
    });
}

#[test]
fn lane_gate_enter_after_close_always_rejected() {
    check_pass("gate-closed-rejects", || {
        let gate = Arc::new(LaneGate::new());
        let gate2 = Arc::clone(&gate);
        let closer = thread::spawn(move || gate2.close());
        // A sender racing the closer either wins entry (and exits, so
        // close can drain) or is rejected; after the close completes,
        // entry must always be rejected.
        if gate.try_enter() {
            gate.exit();
        }
        closer.join().unwrap();
        assert!(!gate.try_enter(), "closed gate admitted a sender");
    });
}

// ------------------------------------------------------- bypass claim

#[test]
fn bypass_claim_is_mutually_exclusive() {
    // Two submitters race the idleness claim on one lane gauge. The
    // CAS guarantees at most one is inside the inline section at a
    // time, and the gauge returns to exactly zero when both are done
    // (no underflow, no leaked claim).
    check_pass("bypass-claim-mutex", || {
        let gauge = Arc::new(AtomicU64::new(0));
        let holders = Arc::new(AtomicUsize::new(0));
        let contenders: Vec<_> = (0..2)
            .map(|_| {
                let gauge = Arc::clone(&gauge);
                let holders = Arc::clone(&holders);
                thread::spawn(move || {
                    if bypass_try_claim(&gauge) {
                        // The inline critical section: no other claimant
                        // may be here concurrently.
                        let prev = holders.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(prev, 0, "two submitters won the bypass claim at once");
                        holders.fetch_sub(1, Ordering::Relaxed);
                        bypass_release_claim(&gauge);
                        true
                    } else {
                        false
                    }
                })
            })
            .collect();
        let wins = contenders
            .into_iter()
            .map(|c| c.join().unwrap())
            .filter(|won| *won)
            .count();
        // Sequential wins are legal (claim, release, other claims);
        // what is not legal is zero wins — the gauge started idle, so
        // at least the first CAS to land must succeed.
        assert!(wins >= 1, "an idle lane rejected every claimant");
        assert_eq!(gauge.load(Ordering::Acquire), 0, "leaked bypass claim");
    });
}

/// MUTANT: the check-then-claim race the CAS in [`bypass_try_claim`]
/// exists to prevent — a separate load and store, as the bypass lane
/// shipped before PR 9's fix. Two submitters can both observe an idle
/// lane and both enter the inline section.
fn mutant_check_then_claim(gauge: &AtomicU64) -> bool {
    if gauge.load(Ordering::Acquire) == 0 {
        gauge.store(1, Ordering::Release);
        return true;
    }
    false
}

#[test]
fn checker_catches_check_then_claim_race() {
    // Mutation validation: the same harness as
    // `bypass_claim_is_mutually_exclusive`, with the CAS replaced by
    // the load-then-store mutant, must FAIL — both submitters racing
    // into the critical section trips the holders assert. If this test
    // fails, the checker has gone blind to the bypass race bug class.
    let failure = explorer()
        .check(|| {
            let gauge = Arc::new(AtomicU64::new(0));
            let holders = Arc::new(AtomicUsize::new(0));
            let contenders: Vec<_> = (0..2)
                .map(|_| {
                    let gauge = Arc::clone(&gauge);
                    let holders = Arc::clone(&holders);
                    thread::spawn(move || {
                        if mutant_check_then_claim(&gauge) {
                            let prev = holders.fetch_add(1, Ordering::Relaxed);
                            assert_eq!(prev, 0, "double-claim");
                            holders.fetch_sub(1, Ordering::Relaxed);
                            gauge.fetch_sub(1, Ordering::Release);
                        }
                    })
                })
                .collect();
            for c in contenders {
                c.join().unwrap();
            }
        })
        .expect_err("the check-then-claim mutant must double-admit under some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Panic),
        "expected the double-claim assert to fire, got: {failure}"
    );
}

// -------------------------------------------------- seqlock recorder

fn ev(at_us: u64) -> ServeEvent {
    ServeEvent {
        at_us,
        kind: ServeEventKind::Retry {
            attempt: 1,
            limit_gpus: 4,
        },
    }
}

#[test]
fn flight_recorder_drain_never_tears() {
    // The production seqlock at ring capacity 2: a writer records two
    // events while the main thread drains concurrently, then a final
    // quiescent drain collects stragglers. The recorder is lossy by
    // design (a drain skips slots a writer is mid-overwrite on), so the
    // invariant is coherence, not completeness: every drained event is
    // one that was actually recorded, in record order, never torn bytes
    // or an unpublished slot.
    check_pass("seqlock-no-torn-read", || {
        let rec = Arc::new(FlightRecorder::with_capacity(2));
        let rec2 = Arc::clone(&rec);
        let writer = thread::spawn(move || {
            rec2.record(ev(1));
            rec2.record(ev(2));
        });
        let mut got: Vec<u64> = rec.drain().iter().map(|e| e.at_us).collect();
        writer.join().unwrap();
        got.extend(rec.drain().iter().map(|e| e.at_us));
        // Subsequence of the recorded sequence: in order, no invented
        // values, no duplicates.
        let mut expect = [1u64, 2].iter();
        for v in &got {
            assert!(
                expect.any(|e| e == v),
                "drained {v}: torn, duplicated, or out-of-order event"
            );
        }
    });
}

/// Shadow seqlock with the guarded value split across two atomic
/// halves, exposing the torn-read surface the real recorder's
/// `MaybeUninit` bytes hide from instrumentation. Protocol mirrors
/// `FlightRecorder::{record, drain}`: odd/even seq, Release fence
/// before the halves, Acquire fence plus seq re-check after.
struct ShadowSeqlock {
    seq: AtomicU64,
    lo: AtomicU64,
    hi: AtomicU64,
    /// MUTANT SITE: `false` drops the drain-side seq re-check.
    recheck: bool,
}

impl ShadowSeqlock {
    fn new(recheck: bool) -> Self {
        // Starts with ticket 0 published holding value 5.
        ShadowSeqlock {
            seq: AtomicU64::new(2),
            lo: AtomicU64::new(5),
            hi: AtomicU64::new(5),
            recheck,
        }
    }

    fn write(&self, ticket: u64, v: u64) {
        self.seq.store(2 * ticket + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        self.lo.store(v, Ordering::Relaxed);
        self.hi.store(v, Ordering::Relaxed);
        self.seq.store(2 * (ticket + 1), Ordering::Release);
    }

    fn read(&self) -> Option<u64> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 % 2 == 1 {
            return None;
        }
        let lo = self.lo.load(Ordering::Relaxed);
        let hi = self.hi.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.recheck && self.seq.load(Ordering::Acquire) != s1 {
            return None;
        }
        assert_eq!(lo, hi, "torn seqlock read");
        Some(lo)
    }
}

fn run_shadow_seqlock(recheck: bool) -> Result<kron_modelcheck::Report, kron_modelcheck::Failure> {
    explorer().check(move || {
        let sl = Arc::new(ShadowSeqlock::new(recheck));
        let sl2 = Arc::clone(&sl);
        let writer = thread::spawn(move || sl2.write(1, 9));
        if let Some(v) = sl.read() {
            assert!(v == 5 || v == 9, "invented value {v}");
        }
        writer.join().unwrap();
        assert_eq!(sl.read(), Some(9));
    })
}

#[test]
fn shadow_seqlock_with_recheck_is_sound() {
    // Baseline: with the re-check intact the replica must verify,
    // proving the mutant below fails for the *re-check* and not some
    // other artifact of the replica.
    run_shadow_seqlock(true).expect("the rechecked seqlock must never tear");
}

#[test]
fn checker_catches_seqlock_missing_recheck() {
    // Mutation validation: dropping the drain-side seq re-check must
    // be caught as a torn read (reader overlaps the writer's two half
    // stores). This is the race `FlightRecorder::drain`'s re-check
    // exists to prevent.
    let failure = run_shadow_seqlock(false)
        .expect_err("the no-recheck mutant must observe a torn read under some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Panic),
        "expected the torn-read assert to fire, got: {failure}"
    );
}
