//! Distributed FastKron — Algorithm 2 of the paper.
//!
//! The input `X[M × K]` is partitioned over a `{GM, GK}` grid; each GPU
//! owns a contiguous `TGM × TGK` block. Because a column block of the
//! intermediate behaves exactly like the fused kernel's shared-memory
//! tile, each GPU can run `Nlocal = ⌊log_P TGK⌋` *local* sliced
//! multiplications before any communication; one all-to-all relocation
//! per group (`StoreGPUTile`, the inter-GPU analog of `StoreFusedShMem`)
//! then restores the canonical block distribution. Communication volume
//! is exactly `GM · ⌈N/Nlocal⌉ · TGM · (K − TGK)` elements — the paper's
//! closed form — versus one exchange *per factor* in CTF/DISTAL.

use crate::engine::ShardedEngine;
use crate::fabric::{CommModel, GpuGrid};
use fastkron_core::kernel::SlicedMultiplyKernel;
use fastkron_core::tuner::AutoTuner;
use gpu_sim::cost::CostModel;
use gpu_sim::device::DeviceSpec;
use gpu_sim::trace::Tracer;
use gpu_sim::ExecReport;
use kron_core::{Element, KronError, KronProblem, Matrix, Result};

/// Distributed FastKron engine over a simulated GPU fabric.
pub struct DistFastKron {
    device: DeviceSpec,
    grid: GpuGrid,
    comm: CommModel,
}

/// Shape parameters of one distributed run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DistShape {
    pub(crate) tgm: usize,
    pub(crate) tgk: usize,
    pub(crate) p: usize,
    pub(crate) n: usize,
    pub(crate) nlocal: usize,
    pub(crate) rounds: usize,
}

/// Validates that `problem` is shardable over `grid` and derives the
/// per-GPU shape — the checks every distributed entry point shares.
pub(crate) fn dist_shape(grid: GpuGrid, problem: &KronProblem) -> Result<DistShape> {
    if !problem.is_uniform() || problem.factors[0].p != problem.factors[0].q {
        return Err(KronError::InvalidGrid {
            reason: "distributed Kron-Matmul requires identical square factors".into(),
        });
    }
    let p = problem.factors[0].p;
    let n = problem.num_factors();
    let k = problem.input_cols();
    let (gm, gk) = (grid.gm, grid.gk);
    if !problem.m.is_multiple_of(gm) {
        return Err(KronError::InvalidGrid {
            reason: format!("M = {} not divisible by GM = {gm}", problem.m),
        });
    }
    if !k.is_multiple_of(gk) {
        return Err(KronError::InvalidGrid {
            reason: format!("K = {k} not divisible by GK = {gk}"),
        });
    }
    let tgk = k / gk;
    if gk > p {
        return Err(KronError::InvalidGrid {
            reason: format!("GK = {gk} exceeds P = {p}; columns would interleave"),
        });
    }
    if !tgk.is_multiple_of(gk) {
        return Err(KronError::InvalidGrid {
            reason: format!("TGK = {tgk} not divisible by GK = {gk}"),
        });
    }
    let nlocal = DistFastKron::nlocal(p, tgk).min(n);
    if !tgk.is_multiple_of(p.pow(nlocal as u32)) {
        return Err(KronError::InvalidGrid {
            reason: format!("TGK = {tgk} not divisible by P^Nlocal"),
        });
    }
    Ok(DistShape {
        tgm: problem.m / gm,
        tgk,
        p,
        n,
        nlocal,
        rounds: n.div_ceil(nlocal),
    })
}

/// Simulated wall-clock report for `problem` sharded over `grid`: local
/// kernel time from the traced single-GPU machinery on the per-GPU block,
/// plus α–β exchange time per round. All GPUs progress in lockstep (the
/// workload is perfectly balanced), so wall time equals one GPU's time.
pub(crate) fn simulate_sharded<T: Element>(
    device: &DeviceSpec,
    grid: GpuGrid,
    comm: &CommModel,
    problem: &KronProblem,
) -> Result<ExecReport> {
    let s = dist_shape(grid, problem)?;
    let mut report = ExecReport::new(format!("FastKron-{}GPU", grid.gpus()));

    // One local sliced multiply on the TGM × TGK block.
    let tuner = AutoTuner::new(device);
    let cost = CostModel::new(device);
    let outcome = tuner.tune(s.tgm, s.tgk, s.p, s.p, T::DTYPE)?;
    let zeros = Matrix::<T>::zeros(s.p, s.p);
    let kern = SlicedMultiplyKernel::new(outcome.config, s.tgm, s.tgk, &zeros)?;
    let mut tracer = Tracer::new(device);
    let per_block = kern.trace_block(&mut tracer);
    let launch = outcome.config.launch(s.tgm, s.tgk, s.p, s.p, T::DTYPE);
    let stats = per_block.scaled(launch.grid_blocks as u64);
    let t_mul = cost.kernel_time(&launch, &stats, T::DTYPE)?.total_s;

    let e = T::DTYPE.bytes();
    let part_bytes = (s.tgm * s.tgk * e) as u64;
    let send_bytes = part_bytes - part_bytes / grid.gk as u64;
    for round in 0..s.rounds {
        let nl = s.nlocal.min(s.n - round * s.nlocal);
        report.add_step("local-multiply", t_mul * nl as f64);
        report.stats += stats.scaled(nl as u64);
        report.launches += nl as u64;
        if grid.gk > 1 {
            let t_comm = comm.send_time(send_bytes, grid.gk - 1);
            // StoreGPUTile pass: re-writes the local block.
            let t_place = (2 * part_bytes) as f64 / device.dram_bw;
            report.add_step("exchange", t_comm + t_place);
            report.comm_bytes += send_bytes * (grid.gm * grid.gk) as u64;
        }
    }
    Ok(report)
}

impl DistFastKron {
    /// Builds the engine for `gpus` devices of type `device`, using NCCL
    /// for communication.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] for unsupported GPU counts.
    pub fn new(device: &DeviceSpec, gpus: usize) -> Result<Self> {
        Ok(DistFastKron {
            device: device.clone(),
            grid: GpuGrid::for_gpus(gpus)?,
            comm: CommModel::nccl(device),
        })
    }

    /// Switches to the single-kernel P2P communication path (§5: "If all
    /// NVIDIA GPUs in the same gM supports Point-to-Point accesses").
    pub fn with_p2p(mut self) -> Self {
        self.comm = CommModel::p2p(&self.device);
        self
    }

    /// The GPU grid in use.
    pub fn grid(&self) -> GpuGrid {
        self.grid
    }

    /// `Nlocal = ⌊log_p tgk⌋` (at least 1).
    pub fn nlocal(p: usize, tgk: usize) -> usize {
        let mut n = 0;
        let mut cap = tgk;
        while cap >= p && p > 1 {
            cap /= p;
            n += 1;
        }
        n.max(1)
    }

    fn shape(&self, problem: &KronProblem) -> Result<DistShape> {
        dist_shape(self.grid, problem)
    }

    /// Cheap shardability check: `Ok(())` when `problem` can shard over
    /// this engine's grid, the [`KronError::InvalidGrid`] reason
    /// otherwise. Pure arithmetic — no engine, threads, or buffers are
    /// built, so this is the right probe for schedulers and tests.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] with the violated constraint.
    pub fn shardable(&self, problem: &KronProblem) -> Result<()> {
        self.shape(problem).map(|_| ())
    }

    /// [`Self::shardable`] without an engine handle: the same pure
    /// arithmetic probe against an explicit `grid` — what a plan cache
    /// uses to predict, *before building anything*, whether a shape will
    /// shard or fall back to single-device execution.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] with the violated constraint.
    pub fn shardable_over(grid: GpuGrid, problem: &KronProblem) -> Result<()> {
        dist_shape(grid, problem).map(|_| ())
    }

    /// Builds a caller-owned, reusable [`ShardedEngine`] for `problem` —
    /// the planning-free entry point: persistent simulated-GPU workers,
    /// pre-allocated blocks and exchange buffers, callable many times with
    /// zero steady-state allocations. `problem.m` is the row capacity.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] when `problem` cannot shard over this
    /// engine's grid.
    pub fn workspace<T: Element>(&self, problem: &KronProblem) -> Result<ShardedEngine<T>> {
        ShardedEngine::new(&self.device, self.grid, self.comm.clone(), problem)
    }

    /// Total elements communicated across the machine — the paper's
    /// closed form `GM · Σ_rounds TGM · (K − TGK)`.
    ///
    /// # Errors
    /// Shape errors as in [`Self::execute`].
    pub fn comm_volume_elements(&self, problem: &KronProblem) -> Result<u64> {
        let s = self.shape(&problem.clone())?;
        let k = problem.input_cols();
        if self.grid.gk == 1 {
            return Ok(0);
        }
        Ok((self.grid.gm * self.grid.gk) as u64
            * s.rounds as u64
            * s.tgm as u64
            * (k - s.tgk) as u64
            / self.grid.gk as u64)
    }

    /// Functional distributed execution: one OS thread per simulated GPU,
    /// crossbeam channels for `Send`/`Recv`, the real Algorithm 2 control
    /// flow. Returns the gathered `M × K` result.
    ///
    /// This is the one-shot convenience over [`Self::workspace`]: it
    /// builds a throwaway [`ShardedEngine`] per call. Servers should hold
    /// the engine instead and pay planning and allocation once.
    ///
    /// # Errors
    /// Shape/grid errors; operand mismatches.
    pub fn execute<T: Element>(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        let shapes: Vec<_> = factors
            .iter()
            .map(|f| kron_core::FactorShape::new(f.rows(), f.cols()))
            .collect();
        let problem = KronProblem::new(x.rows(), shapes)?;
        if x.cols() != problem.input_cols() {
            return Err(KronError::ShapeMismatch {
                expected: format!("X with {} cols", problem.input_cols()),
                found: format!("{} cols", x.cols()),
            });
        }
        let mut engine = self.workspace::<T>(&problem)?;
        let mut y = Matrix::zeros(problem.m, problem.output_cols());
        engine.execute_rows(x, factors, &mut y, problem.m)?;
        Ok(y)
    }

    /// Simulated wall-clock report: local kernel time from the traced
    /// single-GPU machinery on the per-GPU block, plus α–β exchange time
    /// per round. All GPUs progress in lockstep (the workload is perfectly
    /// balanced), so wall time equals one GPU's time.
    ///
    /// # Errors
    /// Shape/grid or tuning errors.
    pub fn simulate<T: Element>(&self, problem: &KronProblem) -> Result<ExecReport> {
        simulate_sharded::<T>(&self.device, self.grid, &self.comm, problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastkron_core::algorithm::kron_matmul_fastkron;
    use gpu_sim::device::V100;
    use kron_core::assert_matrices_close;

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + 3 * r * cols + c) % 13) as f64 - 6.0
        })
    }

    fn check_distributed(m: usize, p: usize, n: usize, gpus: usize) {
        let k = p.pow(n as u32);
        let x = seq_matrix(m, k, 1);
        let fs: Vec<Matrix<f64>> = (0..n).map(|i| seq_matrix(p, p, i * 5 + 2)).collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let engine = DistFastKron::new(&V100, gpus).unwrap();
        let got = engine.execute(&x, &refs).unwrap();
        let oracle = kron_matmul_fastkron(&x, &refs).unwrap();
        assert_matrices_close(&got, &oracle, &format!("dist m={m} {p}^{n} on {gpus} GPUs"));
    }

    #[test]
    fn matches_single_device_2_gpus() {
        check_distributed(4, 4, 3, 2);
    }

    #[test]
    fn matches_single_device_4_gpus() {
        check_distributed(4, 4, 4, 4);
        check_distributed(2, 8, 3, 4);
    }

    #[test]
    fn matches_single_device_8_gpus() {
        check_distributed(4, 4, 4, 8);
    }

    #[test]
    fn matches_single_device_16_gpus() {
        check_distributed(8, 4, 4, 16);
        check_distributed(4, 8, 3, 16);
    }

    #[test]
    fn single_gpu_degenerates_to_local() {
        check_distributed(3, 4, 3, 1);
        let engine = DistFastKron::new(&V100, 1).unwrap();
        let problem = KronProblem::uniform(4, 4, 3).unwrap();
        assert_eq!(engine.comm_volume_elements(&problem).unwrap(), 0);
    }

    #[test]
    fn multiple_rounds_when_nlocal_small() {
        // K/GK = 64 with P = 4 → Nlocal = ⌊log₄64⌋ = 3 < N = 4 → 2 rounds
        // (3 multiplies, exchange, 1 multiply, exchange).
        let engine = DistFastKron::new(&V100, 16).unwrap();
        let problem = KronProblem::uniform(8, 4, 4).unwrap();
        let s = engine.shape(&problem).unwrap();
        assert_eq!(s.nlocal, 3);
        assert_eq!(s.rounds, 2);
        check_distributed(8, 4, 4, 16);
    }

    #[test]
    fn comm_volume_matches_closed_form() {
        // GM·rounds·TGM·(K−TGK) elements.
        let engine = DistFastKron::new(&V100, 16).unwrap();
        let problem = KronProblem::uniform(8, 4, 4).unwrap();
        let k = 256;
        let tgk = k / 4;
        let expected = 4u64 * 2 * 2 * (k - tgk) as u64;
        assert_eq!(engine.comm_volume_elements(&problem).unwrap(), expected);
    }

    #[test]
    fn grouped_communication_beats_per_iteration() {
        // The §5 claim: FastKron's volume is 1/Nlocal of a per-iteration
        // scheme. N = 4, Nlocal = 2 → half the volume.
        let engine = DistFastKron::new(&V100, 16).unwrap();
        let problem = KronProblem::uniform(8, 4, 4).unwrap();
        let grouped = engine.comm_volume_elements(&problem).unwrap();
        let per_iteration = 4u64 * 4 * 2 * (256 - 64) as u64; // rounds = N
        assert_eq!(grouped * 2, per_iteration);
    }

    #[test]
    fn simulate_scales_with_gpus() {
        // Weak scaling: M grows with the machine; achieved TFLOPS must
        // grow too.
        let mut last = 0.0;
        for gpus in [1usize, 4, 16] {
            let m = 64 * gpus;
            let problem = KronProblem::uniform(m, 64, 3).unwrap();
            let engine = DistFastKron::new(&V100, gpus).unwrap();
            let r = engine.simulate::<f32>(&problem).unwrap();
            let tf = r.tflops(problem.flops());
            assert!(tf > last, "{gpus} GPUs: {tf} TFLOPS vs previous {last}");
            last = tf;
        }
    }

    #[test]
    fn p2p_is_faster_than_nccl() {
        let problem = KronProblem::uniform(64, 16, 4).unwrap();
        let nccl = DistFastKron::new(&V100, 16).unwrap();
        let p2p = DistFastKron::new(&V100, 16).unwrap().with_p2p();
        let t_nccl = nccl.simulate::<f32>(&problem).unwrap().seconds;
        let t_p2p = p2p.simulate::<f32>(&problem).unwrap().seconds;
        assert!(t_p2p < t_nccl);
    }

    #[test]
    fn rejects_bad_grids_and_shapes() {
        assert!(DistFastKron::new(&V100, 3).is_err());
        let engine = DistFastKron::new(&V100, 16).unwrap();
        // M not divisible by GM.
        let p1 = KronProblem::uniform(7, 4, 4).unwrap();
        assert!(engine.simulate::<f32>(&p1).is_err());
        // GK > P.
        let p2 = KronProblem::uniform(8, 2, 8).unwrap();
        assert!(engine.simulate::<f32>(&p2).is_err());
        // Non-square factors.
        let p3 = KronProblem::new(8, vec![kron_core::FactorShape::new(4, 2); 4]).unwrap();
        assert!(engine.simulate::<f32>(&p3).is_err());
    }
}
