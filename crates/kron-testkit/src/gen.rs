//! Deterministic problem-shape and data generators.
//!
//! Every generated case carries **integer-valued** matrix entries in
//! `[-3, 3]`, with shapes bounded so that every partial sum any engine can
//! form stays below `2^24` in magnitude. Integers in that range are exactly
//! representable in `f32` (and trivially in `f64`), and float addition and
//! multiplication on exactly-representable integers are exact — so every
//! engine, whatever its summation order, blocking, FMA use, or sharding,
//! must produce the **same** result, comparable with `==` and no tolerance.
//! That exactness is what lets the differential oracle in [`crate::diff`]
//! demand bit-for-bit agreement across seven execution paths instead of
//! "close enough", turning off-by-one indexing bugs from tolerance noise
//! into hard failures.

use kron_core::{Element, FactorShape, KronProblem, Matrix};
use proptest::TestRng;

/// Magnitude cap for generated entries.
const VAL_BOUND: i64 = 3;

/// Exactness budget: worst-case partial-sum magnitude must stay below
/// `2^24` so every intermediate is an exact `f32` integer.
const EXACT_LIMIT: i64 = 1 << 24;

/// Worst-case magnitude of any value an engine can form for `problem`
/// with entries bounded by [`VAL_BOUND`]: `B · ∏ᵢ (Pᵢ · B)` — the
/// absolute-sum bound, valid for every summation order and any subset of
/// processed factors (the bound grows monotonically along the chain).
pub fn worst_case_magnitude(problem: &KronProblem) -> i64 {
    problem.factors.iter().fold(VAL_BOUND, |acc, f| {
        acc.saturating_mul(f.p as i64).saturating_mul(VAL_BOUND)
    })
}

/// One generated differential-test case: the problem plus deterministic
/// integer-valued operands derived purely from `(m, shapes, seed)`.
#[derive(Debug, Clone)]
pub struct KronCase<T: Element> {
    /// The problem shape.
    pub problem: KronProblem,
    /// Input `X` (`m × ∏Pᵢ`).
    pub x: Matrix<T>,
    /// The Kronecker factors, in product order.
    pub factors: Vec<Matrix<T>>,
    /// The data seed the operands were derived from.
    pub seed: u64,
}

/// SplitMix64 step — the same generator the proptest shim uses, reused
/// here so a case is reconstructible from its literal alone.
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) fn int_matrix<T: Element>(rows: usize, cols: usize, state: &mut u64) -> Matrix<T> {
    let span = (2 * VAL_BOUND + 1) as u64;
    Matrix::from_fn(rows, cols, |_, _| {
        T::from_f64((splitmix(state) % span) as f64 - VAL_BOUND as f64)
    })
}

impl<T: Element> KronCase<T> {
    /// Builds the case for `(m, shapes, seed)` — fully deterministic, so
    /// the output of [`KronCase::regression_literal`] reproduces a failure
    /// exactly.
    ///
    /// # Panics
    /// When the shape is degenerate or breaches the `f32` exactness budget
    /// (generated families never do; hand-written literals should keep
    /// `∏Pᵢ · 3^(N+1) < 2^24`).
    pub fn deterministic(m: usize, shapes: &[(usize, usize)], seed: u64) -> Self {
        let factors_shapes: Vec<FactorShape> = shapes
            .iter()
            .map(|&(p, q)| FactorShape::new(p, q))
            .collect();
        let problem = KronProblem::new(m, factors_shapes).expect("valid case shape");
        assert!(
            worst_case_magnitude(&problem) < EXACT_LIMIT,
            "case {problem} breaches the f32 exactness budget"
        );
        let mut state = seed ^ 0x6b8b_4567_327b_23c6;
        let x = int_matrix(m, problem.input_cols(), &mut state);
        let factors = shapes
            .iter()
            .map(|&(p, q)| int_matrix(p, q, &mut state))
            .collect();
        KronCase {
            problem,
            x,
            factors,
            seed,
        }
    }

    /// Borrowed factor references in the form every engine API takes.
    pub fn factor_refs(&self) -> Vec<&Matrix<T>> {
        self.factors.iter().collect()
    }

    /// A copy-pasteable Rust expression rebuilding this exact case — what
    /// a failed differential property prints so the shrunk failure can be
    /// pinned as a regression test verbatim.
    pub fn regression_literal(&self) -> String {
        let shapes: Vec<String> = self
            .problem
            .factors
            .iter()
            .map(|f| format!("({}, {})", f.p, f.q))
            .collect();
        format!(
            "KronCase::<{}>::deterministic({}, &[{}], {})",
            T::DTYPE.rust_name(),
            self.problem.m,
            shapes.join(", "),
            self.seed
        )
    }
}

/// The shape families the differential suite sweeps — chosen to cover the
/// paper's evaluation axes plus the edges that historically break engines:
/// power-of-two uniform chains (the fast paths), odd sizes (edge tiles),
/// rectangular factors (`P ≠ Q`, expanding/contracting intermediates), and
/// mixed per-factor shapes (non-uniform chains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeFamily {
    /// `P^N` with `P ∈ {2, 4, 8}` — the Figure 9/11 microbenchmark family.
    UniformPow2,
    /// `P^N` with odd `P ∈ {3, 5, 7}` — exercises edge register tiles.
    UniformOdd,
    /// Independent `Pᵢ × Qᵢ` factors — rectangular, expanding/contracting.
    Rectangular,
    /// Square factors of mixed sizes (Table 4 style, e.g. `5⊗5⊗5⊗2`).
    MixedSquare,
}

impl ShapeFamily {
    /// Every family, for exhaustive sweeps.
    pub const ALL: [ShapeFamily; 4] = [
        ShapeFamily::UniformPow2,
        ShapeFamily::UniformOdd,
        ShapeFamily::Rectangular,
        ShapeFamily::MixedSquare,
    ];

    /// Samples a problem shape `(m, factor shapes)` from this family.
    /// `M ∈ [1, 12]` mostly (batchable serving sizes) with an occasional
    /// larger `M` to push requests down the solo path.
    pub fn sample(self, rng: &mut TestRng) -> (usize, Vec<(usize, usize)>) {
        let m = if rng.below(8) == 0 {
            17 + rng.below(24) as usize // solo-path sizes
        } else {
            1 + rng.below(12) as usize
        };
        let shapes = match self {
            ShapeFamily::UniformPow2 => {
                let p = [2usize, 4, 8][rng.below(3) as usize];
                let n_max = match p {
                    2 => 8,
                    4 => 4,
                    _ => 2,
                };
                let n = 1 + rng.below(n_max) as usize;
                vec![(p, p); n]
            }
            ShapeFamily::UniformOdd => {
                let p = [3usize, 5, 7][rng.below(3) as usize];
                let n_max = match p {
                    3 => 5,
                    5 => 3,
                    _ => 2,
                };
                let n = 1 + rng.below(n_max) as usize;
                vec![(p, p); n]
            }
            ShapeFamily::Rectangular => {
                let n = 1 + rng.below(3) as usize;
                (0..n)
                    .map(|_| (1 + rng.below(6) as usize, 1 + rng.below(6) as usize))
                    .collect()
            }
            ShapeFamily::MixedSquare => {
                let n = 2 + rng.below(3) as usize;
                (0..n)
                    .map(|_| {
                        let p = 2 + rng.below(4) as usize;
                        (p, p)
                    })
                    .collect()
            }
        };
        (m, shapes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_integer_valued() {
        let a = KronCase::<f32>::deterministic(3, &[(2, 3), (4, 2)], 42);
        let b = KronCase::<f32>::deterministic(3, &[(2, 3), (4, 2)], 42);
        assert_eq!(a.x, b.x);
        assert_eq!(a.factors, b.factors);
        let c = KronCase::<f32>::deterministic(3, &[(2, 3), (4, 2)], 43);
        assert_ne!(a.x, c.x);
        for v in a.x.as_slice().iter().chain(a.factors[0].as_slice()) {
            assert_eq!(v.fract(), 0.0, "non-integer value {v}");
            assert!(v.abs() <= VAL_BOUND as f32);
        }
    }

    #[test]
    fn regression_literal_round_trips() {
        let a = KronCase::<f64>::deterministic(5, &[(3, 3), (2, 5)], 7);
        let lit = a.regression_literal();
        assert_eq!(
            lit,
            "KronCase::<f64>::deterministic(5, &[(3, 3), (2, 5)], 7)"
        );
        // Evaluate the literal by hand: it must rebuild the same case.
        let b = KronCase::<f64>::deterministic(5, &[(3, 3), (2, 5)], 7);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn every_family_respects_the_exactness_budget() {
        let mut rng = TestRng::deterministic("family-budget");
        for _ in 0..500 {
            for family in ShapeFamily::ALL {
                let (m, shapes) = family.sample(&mut rng);
                let case = KronCase::<f32>::deterministic(m, &shapes, 1);
                assert!(worst_case_magnitude(&case.problem) < EXACT_LIMIT);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exactness budget")]
    fn budget_breach_is_rejected() {
        // 16^6 = 2^24 columns alone breaches the budget.
        let _ = KronCase::<f32>::deterministic(1, &[(16, 16); 6], 0);
    }
}
