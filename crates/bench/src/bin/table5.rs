//! Table 5: speedup in GP training (SKI/SKIP/LOVE) from integrating
//! FastKron into GPyTorch, on 1 and 16 simulated GPUs.

use gpu_sim::device::V100;
use kron_gp::train::{table5_rows, GpVariant, TrainTimer};

fn main() {
    println!("Table 5 — GP training speedup of FastKron-integrated GPyTorch over vanilla");
    println!(
        "{:>8} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "dataset", "P^N", "SKI-1", "SKIP-1", "LOVE-1", "SKI-16", "SKIP-16", "LOVE-16"
    );
    let timer = TrainTimer::new(&V100);
    for (ds, p) in table5_rows() {
        let mut row = format!("{:>8} {:>4}^{:<1} |", ds.name(), p, ds.dims());
        for gpus in [1usize, 16] {
            for variant in GpVariant::all() {
                let s = timer.speedup::<f32>(ds, p, variant, gpus).unwrap();
                row.push_str(&format!(" {s:>5.1}x"));
            }
            if gpus == 1 {
                row.push_str(" |");
            }
        }
        println!("{row}");
    }
    println!("\nPaper 1-GPU range 1.1x-2.2x; 16-GPU range 1.1x-6.2x; increase <= 3.33x");
}
