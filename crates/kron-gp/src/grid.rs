//! Regular inducing-point grids and RBF kernel factors.

use kron_core::{Element, KronError, Matrix, Result};

/// A regular grid of `points_per_dim` inducing points per input dimension
/// over `[0, 1]`, inducing the Kronecker kernel `K₁ ⊗ … ⊗ K_dims`.
#[derive(Debug, Clone)]
pub struct InducingGrid {
    /// Input dimensionality (`N` — the number of Kronecker factors).
    pub dims: usize,
    /// Grid points per dimension (`P` — each factor is `P × P`).
    pub points_per_dim: usize,
    /// RBF length scale.
    pub lengthscale: f64,
}

impl InducingGrid {
    /// Builds a grid description.
    ///
    /// # Errors
    /// [`KronError::EmptyDimension`] for zero sizes.
    pub fn new(dims: usize, points_per_dim: usize, lengthscale: f64) -> Result<Self> {
        if dims == 0 || points_per_dim == 0 {
            return Err(KronError::EmptyDimension {
                what: format!("grid {dims} dims × {points_per_dim} points"),
            });
        }
        Ok(InducingGrid {
            dims,
            points_per_dim,
            lengthscale,
        })
    }

    /// Coordinate of grid point `i` in one dimension.
    pub fn coord(&self, i: usize) -> f64 {
        if self.points_per_dim == 1 {
            return 0.5;
        }
        i as f64 / (self.points_per_dim - 1) as f64
    }

    /// Grid spacing in one dimension.
    pub fn spacing(&self) -> f64 {
        if self.points_per_dim == 1 {
            return 1.0;
        }
        1.0 / (self.points_per_dim - 1) as f64
    }

    /// The RBF kernel factor for one dimension:
    /// `K[i][j] = exp(-(xᵢ-xⱼ)²/(2ℓ²))`. Symmetric positive definite.
    pub fn rbf_factor<T: Element>(&self) -> Matrix<T> {
        let p = self.points_per_dim;
        Matrix::from_fn(p, p, |i, j| {
            let d = self.coord(i) - self.coord(j);
            T::from_f64((-d * d / (2.0 * self.lengthscale * self.lengthscale)).exp())
        })
    }

    /// All `dims` factors (identical for an isotropic kernel).
    pub fn factors<T: Element>(&self) -> Vec<Matrix<T>> {
        vec![self.rbf_factor(); self.dims]
    }

    /// Total inducing points `P^N`.
    pub fn total_points(&self) -> usize {
        self.points_per_dim.pow(self.dims as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_factor_is_symmetric_with_unit_diagonal() {
        let g = InducingGrid::new(3, 8, 0.3).unwrap();
        let k = g.rbf_factor::<f64>();
        for i in 0..8 {
            assert!((k[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..8 {
                assert_eq!(k[(i, j)], k[(j, i)]);
                assert!(k[(i, j)] > 0.0 && k[(i, j)] <= 1.0);
            }
        }
    }

    #[test]
    fn kernel_decays_with_distance() {
        let g = InducingGrid::new(1, 16, 0.2).unwrap();
        let k = g.rbf_factor::<f64>();
        assert!(k[(0, 1)] > k[(0, 8)]);
        assert!(k[(0, 8)] > k[(0, 15)]);
    }

    #[test]
    fn geometry() {
        let g = InducingGrid::new(2, 5, 0.5).unwrap();
        assert_eq!(g.coord(0), 0.0);
        assert_eq!(g.coord(4), 1.0);
        assert_eq!(g.spacing(), 0.25);
        assert_eq!(g.total_points(), 25);
        assert_eq!(g.factors::<f32>().len(), 2);
        assert!(InducingGrid::new(0, 4, 0.5).is_err());
    }

    #[test]
    fn degenerate_single_point_grid() {
        let g = InducingGrid::new(1, 1, 0.5).unwrap();
        assert_eq!(g.coord(0), 0.5);
        assert_eq!(g.spacing(), 1.0);
        let k = g.rbf_factor::<f64>();
        assert_eq!(k[(0, 0)], 1.0);
    }
}
