//! # kron-core
//!
//! Dense matrix/tensor substrate for Kronecker Matrix-Matrix Multiplication
//! (Kron-Matmul): the multiplication of a matrix `X` of shape `M × ∏ᵢ Pᵢ`
//! with the Kronecker product of `N` factor matrices `Fᵢ` of shape `Pᵢ × Qᵢ`,
//! producing `Y` of shape `M × ∏ᵢ Qᵢ`.
//!
//! This crate provides the building blocks every engine in the workspace
//! shares:
//!
//! * [`Element`] — a trait unifying `f32` and `f64` scalars,
//! * [`Matrix`] — a row-major dense matrix with reshape/transpose primitives,
//! * [`gemm`] — a blocked, rayon-parallel reference matrix multiplication,
//! * [`KronProblem`] — shape descriptor and FLOP/size arithmetic,
//! * reference algorithms used as correctness oracles and baselines:
//!   [`naive::kron_matmul_naive`] (materialize the Kronecker matrix),
//!   [`shuffle::kron_matmul_shuffle`] (reshape → GEMM → transpose, as in
//!   GPyTorch/PyKronecker), and [`ftmmt::kron_matmul_ftmmt`] (fused
//!   tensor-matrix multiply transpose, as in COGENT/cuTensor).
//!
//! The crate is deliberately free of any GPU-simulation concerns; see the
//! `gpu-sim` crate for the performance model and `fastkron-core` for the
//! paper's contribution.

#![deny(missing_docs)]

pub mod element;
pub mod error;
pub mod ftmmt;
pub mod gemm;
pub mod kron;
pub mod matrix;
pub mod naive;
pub mod shape;
pub mod shuffle;

pub use element::{DType, Element};
pub use error::{KronError, Result};
pub use matrix::{Matrix, MatrixView, MatrixViewMut};
pub use shape::{ExecBackend, FactorShape, KronProblem, PlanKey};

/// Maximum relative error tolerated when comparing two engines' outputs in
/// tests, expressed as a multiple of the element type's machine epsilon.
///
/// Kron-Matmul with N factors chains N summations of length Pᵢ, so error
/// grows with `N · max Pᵢ`; 256·ε is comfortable for every size in the
/// paper's evaluation set while still catching genuine indexing bugs
/// (which produce O(1) errors, not O(ε)).
pub const COMPARE_TOLERANCE_ULPS: f64 = 256.0;

/// Asserts that two matrices are elementwise close relative to their norms.
///
/// Panics with a diagnostic naming the first offending element otherwise.
/// Intended for tests and examples.
pub fn assert_matrices_close<T: Element>(actual: &Matrix<T>, expected: &Matrix<T>, context: &str) {
    assert_eq!(
        (actual.rows(), actual.cols()),
        (expected.rows(), expected.cols()),
        "{context}: shape mismatch"
    );
    let scale = expected
        .as_slice()
        .iter()
        .fold(0.0_f64, |acc, v| acc.max(v.to_f64().abs()))
        .max(1.0);
    let tol = COMPARE_TOLERANCE_ULPS * T::EPSILON_F64 * scale;
    for r in 0..expected.rows() {
        for c in 0..expected.cols() {
            let a = actual[(r, c)].to_f64();
            let e = expected[(r, c)].to_f64();
            let diff = (a - e).abs();
            assert!(
                diff <= tol,
                "{context}: mismatch at ({r},{c}): actual={a}, expected={e}, |diff|={diff:.3e} > tol={tol:.3e}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assert_close_accepts_identical() {
        let m = Matrix::<f64>::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        assert_matrices_close(&m, &m, "identity");
    }

    #[test]
    #[should_panic(expected = "mismatch at (1,2)")]
    fn assert_close_rejects_differing() {
        let a = Matrix::<f64>::from_fn(2, 3, |r, c| (r + c) as f64);
        let mut b = a.clone();
        b[(1, 2)] = 100.0;
        assert_matrices_close(&b, &a, "diff");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn assert_close_rejects_shape() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(3, 2);
        assert_matrices_close(&a, &b, "shape");
    }
}
