//! The fused sliced-multiply execution path: Algorithm 1 with zero
//! intermediate allocations and no transpose pass.
//!
//! This is the CPU analog of the paper's central claim — that the shuffle
//! algorithm's cost is dominated by its memory shuffle (reshape → GEMM →
//! transpose-inner), and that writing each output element *directly* to
//! column `q·K/P + slice` in the kernel epilogue removes the transpose
//! entirely. The module mirrors the emulated CUDA kernel's four steps
//! ([`crate::kernel::SlicedMultiplyKernel`]) at row granularity:
//!
//! 1. **Workspace** ([`Workspace`]): two ping-pong buffers, each sized once
//!    from [`KronProblem::max_intermediate_elems`]. After construction, no
//!    factor step allocates — intermediates bounce between the two buffers,
//!    and the final step writes straight into the caller's output matrix.
//! 2. **Packed slice panels**: each microkernel invocation transposes a
//!    block of [`RK`] consecutive slices into a `P × RK` panel held on the
//!    stack, so the multiply's inner loop reads unit-stride (the CPU
//!    equivalent of the kernel's `ShiftGToS` staging into shared memory).
//! 3. **Register-tile multiply**: an [`RK`]`×`[`RQ`] accumulator tile is
//!    updated with `mul_add` over the factor's `P` rows — bounds checks are
//!    hoisted out of the loop, leaving pure FMA chains the compiler can
//!    keep in vector registers.
//! 4. **Epilogue scatter** ([`fused_output_col`]): accumulated results go
//!    directly to output column `q·S + s` (`S` = slice count), exactly step
//!    4 of the emulated kernel — consecutive tile results are consecutive
//!    output elements, so the scatter is a contiguous [`RK`]-wide store.
//!
//! Rows of the problem are independent, so the whole factor chain is
//! parallelized by partitioning rows into tiles and running each tile's
//! *entire* chain on one thread — one dispatch per execute, not one per
//! factor, with each thread ping-ponging inside its own disjoint slice of
//! the workspace buffers. Dispatch goes to the process-wide persistent
//! [`rayon::ThreadPool`] (workers parked on a channel), so an execute costs
//! one task handoff per tile, never a thread spawn.
//!
//! When the problem has fewer rows than the host has threads (the paper's
//! Table 3/4 small-M shapes), row tiles alone cannot use the machine. The
//! **wide mode** then splits the *slice range within each row* across
//! threads as well: every factor step becomes one pool broadcast over a
//! `rows × column-groups` grid, with the broadcast's completion acting as
//! the inter-step barrier. Each task computes slices `[s_lo, s_hi)` of its
//! row and scatters to the same `q·S + s` output columns the serial path
//! uses, so the two modes are numerically identical (pinned by a proptest).

use kron_core::{Element, KronError, KronProblem, Matrix, Result};
use rayon::ThreadPool;

/// Slice-block edge of the register tile: the microkernel computes [`RK`]
/// consecutive slices per accumulator tile, and the epilogue stores them as
/// one contiguous run (they are adjacent output columns).
pub const RK: usize = 8;

/// Factor-column edge of the register tile.
pub const RQ: usize = 4;

/// Largest factor-row count the packed-panel fast path supports; factors
/// taller than this (none in the paper's evaluation) take a safe strided
/// fallback instead of a stack panel.
const PANEL_MAX_P: usize = 160;

/// Problems below this FLOP count run single-threaded; tiny chains are
/// dominated by thread dispatch otherwise.
const MIN_PAR_FLOPS: u64 = 1 << 15;

/// Output column a sliced multiply writes slice `s` of factor column `q`
/// to: `q·S + s` where `S` is the slice count (`K/P`).
///
/// This single line is what makes the transpose unnecessary (paper §3):
/// the new factor index `q` lands in the slowest-varying position at write
/// time. Shared by the functional fused path and the thread-block-accurate
/// kernel emulation so the two layers cannot drift apart.
#[inline(always)]
pub fn fused_output_col(q: usize, slices: usize, s: usize) -> usize {
    q * slices + s
}

/// Reusable execution state for one [`KronProblem`]: two ping-pong buffers
/// sized once at construction.
///
/// Create once, call [`Workspace::execute`] or [`Workspace::execute_into`]
/// many times; after construction the fused path performs **zero heap
/// allocations per factor step** (asserted by a counting-allocator test).
/// Parallel dispatch goes to the persistent global [`ThreadPool`], whose
/// boxing-free task handoff keeps even multi-threaded executes
/// allocation-free once the pool's queue is warm.
pub struct Workspace<T> {
    problem: KronProblem,
    /// Row stride of both buffers (`max_intermediate_cols`).
    stride: usize,
    buf_a: Vec<T>,
    buf_b: Vec<T>,
    /// Forced `(row_groups, col_groups)` decomposition; `None` auto-selects
    /// from the pool width and problem size.
    partition: Option<(usize, usize)>,
}

/// How one execute is decomposed across the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecMode {
    /// One thread runs the whole chain.
    Serial,
    /// Rows are cut into this many tiles; each tile runs its entire chain
    /// on one pool task (no inter-step synchronization).
    RowTiles(usize),
    /// Every factor step broadcasts a `row_groups × col_groups` task grid,
    /// splitting the slice range within each row; the broadcast return is
    /// the inter-step barrier. This is what lets `M < threads` problems
    /// use the whole host.
    Wide {
        /// Row-range groups (≤ rows).
        row_groups: usize,
        /// Slice-range groups per row.
        col_groups: usize,
    },
}

impl<T: Element> Workspace<T> {
    /// Allocates the ping-pong buffers for `problem`.
    ///
    /// Single-factor problems need no intermediates; their buffers are
    /// empty and execution streams `X` straight to `Y`.
    pub fn new(problem: &KronProblem) -> Self {
        let (stride, elems) = if problem.num_factors() > 1 {
            (
                problem.max_intermediate_cols(),
                problem.max_intermediate_elems(),
            )
        } else {
            (0, 0)
        };
        Workspace {
            problem: problem.clone(),
            stride,
            buf_a: vec![T::ZERO; elems],
            buf_b: vec![T::ZERO; elems],
            partition: None,
        }
    }

    /// The problem this workspace was sized for.
    pub fn problem(&self) -> &KronProblem {
        &self.problem
    }

    /// Pins the parallel decomposition to `(row_groups, col_groups)`
    /// instead of auto-selecting from the host's thread count: `(1, 1)`
    /// forces the serial path, `(r, 1)` forces `r` row tiles, and
    /// `(r, c)` with `c > 1` forces the wide (column-splitting) mode.
    ///
    /// Intended for tests and benchmarks that must exercise a specific
    /// mode regardless of the machine they run on; `None` restores
    /// auto-selection.
    pub fn set_partition(&mut self, partition: Option<(usize, usize)>) {
        self.partition = partition;
    }

    /// Computes `Y = X · (F1 ⊗ … ⊗ FN)`, allocating only the result.
    ///
    /// # Errors
    /// Shape mismatches between the operands and the workspace's problem.
    pub fn execute(&mut self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        let mut y = Matrix::zeros(self.problem.m, self.problem.output_cols());
        self.execute_into(x, factors, &mut y)?;
        Ok(y)
    }

    /// Computes `Y = X · (F1 ⊗ … ⊗ FN)` into caller-provided storage —
    /// the fully allocation-free entry point.
    ///
    /// # Errors
    /// Shape mismatches between the operands and the workspace's problem.
    pub fn execute_into(
        &mut self,
        x: &Matrix<T>,
        factors: &[&Matrix<T>],
        y: &mut Matrix<T>,
    ) -> Result<()> {
        self.validate(x, factors, y)?;
        self.run(x.as_slice(), factors, y.as_mut_slice(), self.problem.m);
        Ok(())
    }

    /// Computes the first `rows` rows of `Y = X · (F1 ⊗ … ⊗ FN)`, where
    /// `rows` may be anything up to the workspace's planned capacity
    /// (`problem.m`) and `X`/`Y` may hold **at least** `rows` rows.
    ///
    /// This is the batched-serving entry point: a runtime sizes one
    /// workspace for its maximum batch and executes whatever number of
    /// request rows actually arrived, with no reallocation and no
    /// per-batch planning. `rows == 0` is a no-op.
    ///
    /// # Errors
    /// Shape mismatches: wrong factor shapes or column counts, fewer than
    /// `rows` rows in an operand, or `rows` above the planned capacity.
    pub fn execute_rows(
        &mut self,
        x: &Matrix<T>,
        factors: &[&Matrix<T>],
        y: &mut Matrix<T>,
        rows: usize,
    ) -> Result<()> {
        self.validate_factors(factors)?;
        if rows > self.problem.m {
            return Err(KronError::ShapeMismatch {
                expected: format!("at most {} rows (workspace capacity)", self.problem.m),
                found: format!("{rows} rows"),
            });
        }
        if x.rows() < rows || x.cols() != self.problem.input_cols() {
            return Err(KronError::ShapeMismatch {
                expected: format!("X with ≥{} rows × {}", rows, self.problem.input_cols()),
                found: format!("X {}×{}", x.rows(), x.cols()),
            });
        }
        if y.rows() < rows || y.cols() != self.problem.output_cols() {
            return Err(KronError::ShapeMismatch {
                expected: format!("Y with ≥{} rows × {}", rows, self.problem.output_cols()),
                found: format!("Y {}×{}", y.rows(), y.cols()),
            });
        }
        if rows == 0 {
            return Ok(());
        }
        self.run(x.as_slice(), factors, y.as_mut_slice(), rows);
        Ok(())
    }

    /// Dispatches `rows` rows over the selected execution mode. `x`/`y`
    /// are full row-major buffers with strides `input_cols()` and
    /// `output_cols()`.
    fn run(&mut self, x: &[T], factors: &[&Matrix<T>], y: &mut [T], rows: usize) {
        let k0 = self.problem.input_cols();
        let l = self.problem.output_cols();
        let stride = self.stride;

        // Execution order: last factor first (Algorithm 1 line 5).
        let chain = Chain { factors, k0 };

        match self.mode(rows) {
            ExecMode::Serial => run_tile(
                chain,
                TileBuffers {
                    x,
                    y,
                    a: &mut self.buf_a,
                    b: &mut self.buf_b,
                    stride,
                    rows,
                    l,
                },
            ),
            ExecMode::RowTiles(tiles) => {
                run_row_tiles(
                    chain,
                    x,
                    y,
                    &mut self.buf_a,
                    &mut self.buf_b,
                    stride,
                    rows,
                    l,
                    tiles,
                );
            }
            ExecMode::Wide {
                row_groups,
                col_groups,
            } => self.run_wide(chain, x, y, rows, l, row_groups, col_groups),
        }
    }

    /// Picks the decomposition for an execute over `rows` rows.
    fn mode(&self, rows: usize) -> ExecMode {
        if let Some((r, c)) = self.partition {
            let r = r.clamp(1, rows.max(1));
            let c = c.max(1);
            return if r * c <= 1 {
                ExecMode::Serial
            } else if c == 1 {
                ExecMode::RowTiles(r)
            } else {
                ExecMode::Wide {
                    row_groups: r,
                    col_groups: c,
                }
            };
        }
        // The global pool caches its width; querying available_parallelism
        // directly would allocate (it reads cgroup quota files), breaking
        // the zero-allocation contract.
        let threads = ThreadPool::global().threads();
        // FLOPs for the rows actually executing, not the full capacity.
        let flops = (self.problem.flops() / self.problem.m as u64) * rows as u64;
        if threads <= 1 || flops < MIN_PAR_FLOPS {
            ExecMode::Serial
        } else if rows >= threads {
            ExecMode::RowTiles(threads)
        } else {
            let col_groups = threads / rows;
            if col_groups <= 1 {
                ExecMode::RowTiles(rows)
            } else {
                ExecMode::Wide {
                    row_groups: rows,
                    col_groups,
                }
            }
        }
    }

    /// Wide mode: one pool broadcast per factor step over a
    /// `row_groups × col_groups` grid, each task computing the slice range
    /// `[s_lo, s_hi)` of its rows. The broadcast's completion is the
    /// barrier that lets the next step consume this step's output.
    #[allow(clippy::too_many_arguments)]
    fn run_wide(
        &mut self,
        chain: Chain<'_, T>,
        x: &[T],
        y: &mut [T],
        rows: usize,
        l: usize,
        row_groups: usize,
        col_groups: usize,
    ) {
        let stride = self.stride;
        let n = chain.factors.len();
        let pool = ThreadPool::global();
        let mut k_in = chain.k0;
        let mut cur = self.buf_a.as_mut_ptr();
        let mut nxt = self.buf_b.as_mut_ptr();
        for (step, f) in chain.factors.iter().rev().enumerate() {
            let (p, q) = (f.rows(), f.cols());
            debug_assert!(p > 0 && k_in.is_multiple_of(p));
            let slices = k_in / p;
            let k_out = slices * q;
            let first = step == 0;
            let last = step + 1 == n;
            let (src, src_stride) = if first {
                (x.as_ptr(), chain.k0)
            } else {
                (cur as *const T, stride)
            };
            // Mirrors `run_tile`'s buffer selection: the first step fills
            // `cur`, middle steps write `nxt` and swap, the last streams
            // into `Y`.
            let (dst, dst_stride) = if last {
                (y.as_mut_ptr(), l)
            } else if first {
                (cur, stride)
            } else {
                (nxt, stride)
            };

            let rows_per = rows.div_ceil(row_groups);
            let row_tasks = rows.div_ceil(rows_per);
            // Column chunks are multiples of RK so interior tiles stay full.
            let s_chunk = slices.div_ceil(col_groups).div_ceil(RK) * RK;
            let col_tasks = slices.div_ceil(s_chunk);

            let srcp = ConstPtr(src);
            let dstp = MutPtr(dst);
            let f_data = f.as_slice();
            pool.broadcast(row_tasks * col_tasks, &|t| {
                let rg = t / col_tasks;
                let cg = t % col_tasks;
                let r0 = rg * rows_per;
                let nr = rows_per.min(rows - r0);
                let s_lo = cg * s_chunk;
                let s_hi = (s_lo + s_chunk).min(slices);
                let mut panel = [T::ZERO; RK * PANEL_MAX_P];
                for r in r0..r0 + nr {
                    // SAFETY: tasks partition the (row, slice-range) grid
                    // disjointly; reads from `src` are shared, writes go to
                    // output columns `q·S + s` with `s ∈ [s_lo, s_hi)`,
                    // which no other task touches. The broadcast barrier
                    // sequences this step's writes before the next step's
                    // reads.
                    unsafe {
                        let x_row =
                            std::slice::from_raw_parts(srcp.ptr().add(r * src_stride), k_in);
                        let out_row = dstp.ptr().add(r * dst_stride);
                        sliced_multiply_row_range(
                            x_row, f_data, p, q, slices, s_lo, s_hi, out_row, &mut panel,
                        );
                    }
                }
            });

            if !first && !last {
                std::mem::swap(&mut cur, &mut nxt);
            }
            k_in = k_out;
        }
    }

    fn validate_factors(&self, factors: &[&Matrix<T>]) -> Result<()> {
        if factors.len() != self.problem.num_factors() {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} factors", self.problem.num_factors()),
                found: format!("{} factors", factors.len()),
            });
        }
        for (i, (f, s)) in factors.iter().zip(self.problem.factors.iter()).enumerate() {
            if f.rows() != s.p || f.cols() != s.q {
                return Err(KronError::ShapeMismatch {
                    expected: format!("factor {} of shape {s}", i + 1),
                    found: format!("{}×{}", f.rows(), f.cols()),
                });
            }
        }
        Ok(())
    }

    fn validate(&self, x: &Matrix<T>, factors: &[&Matrix<T>], y: &Matrix<T>) -> Result<()> {
        self.validate_factors(factors)?;
        if x.rows() != self.problem.m || x.cols() != self.problem.input_cols() {
            return Err(KronError::ShapeMismatch {
                expected: format!("X {}×{}", self.problem.m, self.problem.input_cols()),
                found: format!("X {}×{}", x.rows(), x.cols()),
            });
        }
        if y.rows() != self.problem.m || y.cols() != self.problem.output_cols() {
            return Err(KronError::ShapeMismatch {
                expected: format!("Y {}×{}", self.problem.m, self.problem.output_cols()),
                found: format!("Y {}×{}", y.rows(), y.cols()),
            });
        }
        Ok(())
    }
}

/// Caller-owned pack buffer for [`sliced_multiply_rows_into`]: the packed
/// slice panel the register-blocked microkernel stages slices through.
///
/// Hoisted into the caller so external engines (the distributed workers in
/// `kron-dist`) can keep one panel per simulated device and stay
/// allocation-free across calls, exactly like the fused path's row tiles.
pub struct PackPanel<T: Element> {
    buf: [T; RK * PANEL_MAX_P],
}

impl<T: Element> PackPanel<T> {
    /// A fresh (zeroed) panel. ~`RK · 160` elements, fine on the stack.
    pub fn new() -> Self {
        PackPanel {
            buf: [T::ZERO; RK * PANEL_MAX_P],
        }
    }
}

impl<T: Element> Default for PackPanel<T> {
    fn default() -> Self {
        PackPanel::new()
    }
}

/// One sliced multiplication over `rows` row-major rows, written through
/// caller-owned buffers: `out[r][q·S + s] = Σ_p x[r][s·P + p] · f[p][q]`
/// with `S = k_in / P` slices per row.
///
/// This is the allocation-free primitive external engines build on — the
/// distributed engine's per-GPU local multiply is exactly this on its
/// `TGM × TGK` block, `Nlocal` times between exchanges. `x` and `out` are
/// raw row-major buffers with row strides `x_stride` / `out_stride` (both
/// may exceed the logical widths `k_in` / `k_in/P·Q`), and `panel` is the
/// caller's reusable pack buffer.
///
/// Numerically identical to the fused path's serial row loop: it runs the
/// same microkernel ([`RK`]`×`[`RQ`] packed-panel tiles with the
/// [`fused_output_col`] epilogue), so engines layered on it agree
/// bit-for-bit with every single-device path.
///
/// # Errors
/// [`KronError::ShapeMismatch`] when `k_in` is not a multiple of the
/// factor's `P`, a stride is smaller than its row's logical width, or a
/// buffer cannot hold `rows` rows at its stride.
#[allow(clippy::too_many_arguments)]
pub fn sliced_multiply_rows_into<T: Element>(
    x: &[T],
    x_stride: usize,
    f: &Matrix<T>,
    rows: usize,
    k_in: usize,
    out: &mut [T],
    out_stride: usize,
    panel: &mut PackPanel<T>,
) -> Result<()> {
    let (p, q) = (f.rows(), f.cols());
    if p == 0 || k_in == 0 || !k_in.is_multiple_of(p) {
        return Err(KronError::ShapeMismatch {
            expected: format!("k_in a positive multiple of P = {p}"),
            found: format!("k_in = {k_in}"),
        });
    }
    let slices = k_in / p;
    let k_out = slices * q;
    if x_stride < k_in || out_stride < k_out {
        return Err(KronError::ShapeMismatch {
            expected: format!("strides ≥ row widths {k_in} / {k_out}"),
            found: format!("{x_stride} / {out_stride}"),
        });
    }
    if rows == 0 {
        return Ok(());
    }
    if x.len() < (rows - 1) * x_stride + k_in {
        return Err(KronError::ShapeMismatch {
            expected: format!("x holding {rows} rows at stride {x_stride}"),
            found: format!("{} elements", x.len()),
        });
    }
    if out.len() < (rows - 1) * out_stride + k_out {
        return Err(KronError::ShapeMismatch {
            expected: format!("out holding {rows} rows at stride {out_stride}"),
            found: format!("{} elements", out.len()),
        });
    }
    let f_data = f.as_slice();
    for r in 0..rows {
        sliced_multiply_row(
            &x[r * x_stride..r * x_stride + k_in],
            f_data,
            p,
            q,
            slices,
            &mut out[r * out_stride..r * out_stride + k_out],
            &mut panel.buf,
        );
    }
    Ok(())
}

/// Computes `Y = X · (F1 ⊗ … ⊗ FN)` on the fused path with a throwaway
/// [`Workspace`] — the drop-in replacement for the old per-step-allocating
/// `kron_matmul_fastkron` loop. Callers in a loop should hold a
/// [`Workspace`] instead and pay the buffer allocation once.
///
/// # Errors
/// Shape errors when `X.cols() != ∏Pᵢ` or `factors` is empty.
pub fn kron_matmul_fused<T: Element>(x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
    if factors.is_empty() {
        return Err(KronError::NoFactors);
    }
    let shapes = factors
        .iter()
        .map(|f| kron_core::FactorShape::new(f.rows(), f.cols()))
        .collect();
    let problem = KronProblem::new(x.rows().max(1), shapes)?;
    if x.cols() != problem.input_cols() {
        return Err(KronError::ShapeMismatch {
            expected: format!("X with ∏Pᵢ = {} cols", problem.input_cols()),
            found: format!("X with {} cols", x.cols()),
        });
    }
    if x.rows() == 0 {
        return Ok(Matrix::zeros(0, problem.output_cols()));
    }
    Workspace::new(&problem).execute(x, factors)
}

/// The factor chain one execute runs, shared read-only across row tiles.
#[derive(Clone, Copy)]
struct Chain<'a, T> {
    /// Factors in Kronecker-product order (`F1` first); iterated in
    /// reverse, as Algorithm 1 prescribes.
    factors: &'a [&'a Matrix<T>],
    /// Input columns (`∏Pᵢ`).
    k0: usize,
}

/// One row tile's disjoint slices of every buffer an execute touches.
struct TileBuffers<'a, T> {
    /// This tile's rows of `X` (row stride `k0`).
    x: &'a [T],
    /// This tile's rows of `Y` (row stride `l`).
    y: &'a mut [T],
    /// This tile's slice of ping-pong buffer A (row stride `stride`).
    a: &'a mut [T],
    /// This tile's slice of ping-pong buffer B (row stride `stride`).
    b: &'a mut [T],
    /// Row stride of the ping-pong buffers.
    stride: usize,
    /// Rows in this tile.
    rows: usize,
    /// Output columns (`∏Qᵢ`).
    l: usize,
}

/// Shared read pointer a pool task may dereference; disjointness of the
/// written regions is the caller's (documented) obligation.
#[derive(Clone, Copy)]
struct ConstPtr<T>(*const T);
// SAFETY: tasks only read through the pointer while the owning broadcast
// keeps the buffer borrowed.
unsafe impl<T: Send + Sync> Send for ConstPtr<T> {}
unsafe impl<T: Send + Sync> Sync for ConstPtr<T> {}

impl<T> ConstPtr<T> {
    /// Accessor (rather than field access) so closures capture the Sync
    /// wrapper, not the raw pointer field (edition-2021 disjoint capture).
    fn ptr(self) -> *const T {
        self.0
    }
}

/// Mutable base pointer a pool task writes disjoint regions through.
#[derive(Clone, Copy)]
struct MutPtr<T>(*mut T);
// SAFETY: see `ConstPtr`; every dispatch site partitions the written
// ranges disjointly across tasks.
unsafe impl<T: Send + Sync> Send for MutPtr<T> {}
unsafe impl<T: Send + Sync> Sync for MutPtr<T> {}

impl<T> MutPtr<T> {
    /// See [`ConstPtr::ptr`].
    fn ptr(self) -> *mut T {
        self.0
    }
}

/// Cuts `rows` into `tiles` contiguous blocks and runs each block's entire
/// factor chain as one task on the persistent pool. Each task reconstructs
/// its disjoint slices of `X`, `Y`, and both ping-pong buffers from base
/// pointers (the closure is shared across workers, so sequential
/// `split_at_mut` handoff is not possible).
#[allow(clippy::too_many_arguments)]
fn run_row_tiles<T: Element>(
    chain: Chain<'_, T>,
    x: &[T],
    y: &mut [T],
    buf_a: &mut [T],
    buf_b: &mut [T],
    stride: usize,
    rows: usize,
    l: usize,
    tiles: usize,
) {
    let rows_per_tile = rows.div_ceil(tiles);
    let tasks = rows.div_ceil(rows_per_tile);
    let xp = ConstPtr(x.as_ptr());
    let yp = MutPtr(y.as_mut_ptr());
    let ap = MutPtr(buf_a.as_mut_ptr());
    let bp = MutPtr(buf_b.as_mut_ptr());
    let k0 = chain.k0;
    ThreadPool::global().broadcast(tasks, &|t| {
        let r0 = t * rows_per_tile;
        let nr = rows_per_tile.min(rows - r0);
        // SAFETY: tile `t` owns rows [r0, r0+nr), a range no other task
        // touches, so the reconstructed slices are disjoint; the broadcast
        // blocks until every task finishes, keeping the borrows alive.
        unsafe {
            run_tile(
                chain,
                TileBuffers {
                    x: std::slice::from_raw_parts(xp.ptr().add(r0 * k0), nr * k0),
                    y: std::slice::from_raw_parts_mut(yp.ptr().add(r0 * l), nr * l),
                    a: std::slice::from_raw_parts_mut(ap.ptr().add(r0 * stride), nr * stride),
                    b: std::slice::from_raw_parts_mut(bp.ptr().add(r0 * stride), nr * stride),
                    stride,
                    rows: nr,
                    l,
                },
            );
        }
    });
}

/// Runs the entire factor chain for one row tile: step 0 reads from `X`,
/// the final step writes into `Y`, everything between ping-pongs through
/// the two workspace slices. No allocation anywhere in here.
fn run_tile<T: Element>(chain: Chain<'_, T>, bufs: TileBuffers<'_, T>) {
    let TileBuffers {
        x,
        y,
        a,
        b,
        stride,
        rows,
        l,
    } = bufs;
    // One packed-panel buffer per tile, reused by every row and factor
    // step; the pack loop fully overwrites the `p·rk` region it reads, so
    // this single zero-init is all the initialization it ever needs.
    let mut panel = [T::ZERO; RK * PANEL_MAX_P];
    let n = chain.factors.len();
    let (mut cur, mut nxt) = (a, b);
    let mut k_in = chain.k0;
    for (step, f) in chain.factors.iter().rev().enumerate() {
        let (p, q) = (f.rows(), f.cols());
        debug_assert!(p > 0 && k_in.is_multiple_of(p));
        let slices = k_in / p;
        let k_out = slices * q;
        let f_data = f.as_slice();
        let first = step == 0;
        let last = step + 1 == n;
        for r in 0..rows {
            // Distinct source/destination buffers in every arm, so the
            // borrows never alias.
            match (first, last) {
                (true, true) => sliced_multiply_row(
                    &x[r * chain.k0..r * chain.k0 + k_in],
                    f_data,
                    p,
                    q,
                    slices,
                    &mut y[r * l..r * l + k_out],
                    &mut panel,
                ),
                (true, false) => sliced_multiply_row(
                    &x[r * chain.k0..r * chain.k0 + k_in],
                    f_data,
                    p,
                    q,
                    slices,
                    &mut cur[r * stride..r * stride + k_out],
                    &mut panel,
                ),
                (false, true) => sliced_multiply_row(
                    &cur[r * stride..r * stride + k_in],
                    f_data,
                    p,
                    q,
                    slices,
                    &mut y[r * l..r * l + k_out],
                    &mut panel,
                ),
                (false, false) => sliced_multiply_row(
                    &cur[r * stride..r * stride + k_in],
                    f_data,
                    p,
                    q,
                    slices,
                    &mut nxt[r * stride..r * stride + k_out],
                    &mut panel,
                ),
            }
        }
        if !first && !last {
            std::mem::swap(&mut cur, &mut nxt);
        }
        k_in = k_out;
    }
}

/// One row's sliced multiply, `out[q·S + s] = Σ_p x[s·P + p] · F[p][q]`,
/// register-blocked [`RK`]`×`[`RQ`] with a packed slice panel.
///
/// `f` is the factor's row-major `P × Q` buffer. `x` must hold at least
/// `slices·p` elements and `out` at least `slices·q`. `panel` is the
/// caller's (zero-initialized) pack buffer — hoisted out so its init cost
/// is paid once per tile, not once per row per factor step.
fn sliced_multiply_row<T: Element>(
    x: &[T],
    f: &[T],
    p: usize,
    q: usize,
    slices: usize,
    out: &mut [T],
    panel: &mut [T; RK * PANEL_MAX_P],
) {
    debug_assert!(out.len() >= slices * q);
    // SAFETY: `out` is an exclusive borrow covering all `slices·q` writes,
    // and the full slice range is computed by this one call.
    unsafe { sliced_multiply_row_range(x, f, p, q, slices, 0, slices, out.as_mut_ptr(), panel) }
}

/// The slice-range form of [`sliced_multiply_row`]: computes only slices
/// `[s_lo, s_hi)`, writing output columns `q·S + s` for `s` in that range.
/// This is the unit the wide execution mode hands to each pool task —
/// several tasks write *interleaved but disjoint* columns of the same row,
/// which is why `out` is a raw base pointer rather than `&mut [T]`.
///
/// # Safety
/// `out` must be valid for `slices·q` element writes, `x` must hold at
/// least `s_hi·p` elements, `f` at least `p·q`, `s_lo ≤ s_hi ≤ slices`,
/// and no other thread may concurrently touch the output elements
/// `{q·slices + s | s ∈ [s_lo, s_hi), q ∈ [0, q)}`.
#[allow(clippy::too_many_arguments)]
unsafe fn sliced_multiply_row_range<T: Element>(
    x: &[T],
    f: &[T],
    p: usize,
    q: usize,
    slices: usize,
    s_lo: usize,
    s_hi: usize,
    out: *mut T,
    panel: &mut [T; RK * PANEL_MAX_P],
) {
    debug_assert!(s_lo <= s_hi && s_hi <= slices);
    debug_assert!(x.len() >= s_hi * p);
    debug_assert!(f.len() >= p * q);
    if p > PANEL_MAX_P {
        return sliced_multiply_row_tall(x, f, p, q, slices, s_lo, s_hi, out);
    }

    // Packed panel: panel[pi·rk + i] holds x[(s0+i)·P + pi], i.e. the
    // slice block transposed so the multiply reads unit-stride in `i`.
    let mut s0 = s_lo;
    while s0 < s_hi {
        let rk = RK.min(s_hi - s0);
        for i in 0..rk {
            let slice = &x[(s0 + i) * p..(s0 + i) * p + p];
            for (pi, &v) in slice.iter().enumerate() {
                panel[pi * rk + i] = v;
            }
        }
        let mut q0 = 0;
        while q0 < q {
            let rq = RQ.min(q - q0);
            if rk == RK && rq == RQ {
                // SAFETY: the debug_asserts above establish the bounds this
                // unchecked tile relies on: panel holds `p·RK` packed
                // elements, `f` holds `p·q` with `q0 + RQ <= q`, and `out`
                // covers `slices·q` elements with `s0 + RK <= slices`.
                full_tile(panel, f, p, q, q0, s0, slices, out);
            } else {
                edge_tile(panel, f, p, q, q0, rq, s0, rk, slices, out);
            }
            q0 += RQ;
        }
        s0 += RK;
    }
}

/// Full [`RK`]`×`[`RQ`] register tile over a packed panel; the hot loop of
/// the whole engine. Bounds checks are hoisted to the caller.
///
/// # Safety
/// Requires `panel.len() >= p·RK`, `f.len() >= p·q`, `q0 + RQ <= q`,
/// `s0 + RK <= slices`, and `out` valid for `slices·q` element writes with
/// the written columns owned by this thread.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
#[inline(always)]
unsafe fn full_tile<T: Element>(
    panel: &[T],
    f: &[T],
    p: usize,
    q: usize,
    q0: usize,
    s0: usize,
    slices: usize,
    out: *mut T,
) {
    let mut acc = [[T::ZERO; RQ]; RK];
    for pi in 0..p {
        let xs = panel.get_unchecked(pi * RK..pi * RK + RK);
        let fr = f.get_unchecked(pi * q + q0..pi * q + q0 + RQ);
        for i in 0..RK {
            let xv = *xs.get_unchecked(i);
            for j in 0..RQ {
                acc[i][j] = xv.mul_add(*fr.get_unchecked(j), acc[i][j]);
            }
        }
    }
    // Epilogue: column q0+j's slice block starts at (q0+j)·S + s0; the RK
    // results are consecutive there — one contiguous store per column.
    for j in 0..RQ {
        let base = fused_output_col(q0 + j, slices, s0);
        for i in 0..RK {
            *out.add(base + i) = acc[i][j];
        }
    }
}

/// Partial tile at the `slices`/`q` edges.
///
/// # Safety
/// `out` must be valid for `slices·q` element writes with the written
/// columns owned by this thread; panel/`f` bounds as in the caller.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn edge_tile<T: Element>(
    panel: &[T],
    f: &[T],
    p: usize,
    q: usize,
    q0: usize,
    rq: usize,
    s0: usize,
    rk: usize,
    slices: usize,
    out: *mut T,
) {
    let mut acc = [[T::ZERO; RQ]; RK];
    for pi in 0..p {
        let xs = &panel[pi * rk..pi * rk + rk];
        let fr = &f[pi * q + q0..pi * q + q0 + rq];
        for (i, &xv) in xs.iter().enumerate() {
            for (j, &fv) in fr.iter().enumerate() {
                acc[i][j] = xv.mul_add(fv, acc[i][j]);
            }
        }
    }
    for j in 0..rq {
        let base = fused_output_col(q0 + j, slices, s0);
        for i in 0..rk {
            *out.add(base + i) = acc[i][j];
        }
    }
}

/// Fallback for factors taller than [`PANEL_MAX_P`]: no packing (the panel
/// would not fit the stack), strided reads, still allocation-free and still
/// scattering through [`fused_output_col`].
///
/// # Safety
/// Same contract as [`sliced_multiply_row_range`].
#[allow(clippy::too_many_arguments)]
unsafe fn sliced_multiply_row_tall<T: Element>(
    x: &[T],
    f: &[T],
    p: usize,
    q: usize,
    slices: usize,
    s_lo: usize,
    s_hi: usize,
    out: *mut T,
) {
    for s in s_lo..s_hi {
        let slice = &x[s * p..(s + 1) * p];
        let mut q0 = 0;
        while q0 < q {
            let rq = RQ.min(q - q0);
            let mut acc = [T::ZERO; RQ];
            for (pi, &xv) in slice.iter().enumerate() {
                let fr = &f[pi * q + q0..pi * q + q0 + rq];
                for (j, &fv) in fr.iter().enumerate() {
                    acc[j] = xv.mul_add(fv, acc[j]);
                }
            }
            for (j, &v) in acc[..rq].iter().enumerate() {
                *out.add(fused_output_col(q0 + j, slices, s)) = v;
            }
            q0 += RQ;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::naive::kron_matmul_naive;
    use kron_core::shuffle::kron_matmul_shuffle;
    use kron_core::{assert_matrices_close, FactorShape};

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + 3 * r * cols + c) % 13) as f64 - 6.0
        })
    }

    fn check_problem(problem: &KronProblem, seed: usize) {
        let x = seq_matrix(problem.m, problem.input_cols(), seed);
        let fs: Vec<Matrix<f64>> = problem
            .factors
            .iter()
            .enumerate()
            .map(|(i, s)| seq_matrix(s.p, s.q, seed + 2 * i + 1))
            .collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let mut ws = Workspace::new(problem);
        let got = ws.execute(&x, &refs).unwrap();
        let naive = kron_matmul_naive(&x, &refs).unwrap();
        let shuffle = kron_matmul_shuffle(&x, &refs).unwrap();
        assert_matrices_close(&got, &naive, &format!("{problem} fused vs naive"));
        assert_matrices_close(&got, &shuffle, &format!("{problem} fused vs shuffle"));
    }

    #[test]
    fn single_factor_streams_straight_through() {
        check_problem(
            &KronProblem::new(3, vec![FactorShape::new(6, 4)]).unwrap(),
            1,
        );
    }

    #[test]
    fn uniform_chains() {
        for &(m, p, n) in &[(1usize, 2usize, 6usize), (3, 4, 3), (16, 8, 2), (2, 3, 4)] {
            check_problem(&KronProblem::uniform(m, p, n).unwrap(), m + p);
        }
    }

    #[test]
    fn rectangular_and_mixed_chains() {
        check_problem(
            &KronProblem::new(5, vec![FactorShape::new(2, 3), FactorShape::new(4, 2)]).unwrap(),
            2,
        );
        // Table 4 row 20 shape: 5×5 ⊗ 5×5 ⊗ 5×5 ⊗ 2×2.
        check_problem(
            &KronProblem::new(
                2,
                vec![
                    FactorShape::square(5),
                    FactorShape::square(5),
                    FactorShape::square(5),
                    FactorShape::square(2),
                ],
            )
            .unwrap(),
            3,
        );
        // Expanding then contracting intermediates.
        check_problem(
            &KronProblem::new(3, vec![FactorShape::new(2, 8), FactorShape::new(8, 2)]).unwrap(),
            4,
        );
    }

    #[test]
    fn edge_tiles_and_non_power_of_two_sizes() {
        // slices and q both indivisible by the register tile edges.
        check_problem(&KronProblem::uniform(3, 3, 3).unwrap(), 5);
        check_problem(
            &KronProblem::new(2, vec![FactorShape::new(7, 5), FactorShape::new(3, 9)]).unwrap(),
            6,
        );
    }

    #[test]
    fn tall_factor_takes_fallback_path() {
        // P = 200 > PANEL_MAX_P exercises sliced_multiply_row_tall.
        check_problem(
            &KronProblem::new(2, vec![FactorShape::new(200, 3)]).unwrap(),
            7,
        );
        check_problem(
            &KronProblem::new(1, vec![FactorShape::new(2, 2), FactorShape::new(200, 3)]).unwrap(),
            8,
        );
    }

    #[test]
    fn above_parallel_threshold_matches_oracle() {
        // Big enough that row_tiles() > 1 on multi-core hosts.
        let problem = KronProblem::uniform(32, 8, 3).unwrap();
        assert!(problem.flops() >= MIN_PAR_FLOPS);
        check_problem(&problem, 9);
    }

    #[test]
    fn workspace_is_reusable_across_calls() {
        let problem = KronProblem::uniform(4, 4, 3).unwrap();
        let mut ws = Workspace::<f64>::new(&problem);
        let mut y = Matrix::zeros(4, problem.output_cols());
        for seed in 0..4 {
            let x = seq_matrix(4, problem.input_cols(), seed);
            let fs: Vec<Matrix<f64>> = (0..3).map(|i| seq_matrix(4, 4, seed + i)).collect();
            let refs: Vec<&Matrix<f64>> = fs.iter().collect();
            ws.execute_into(&x, &refs, &mut y).unwrap();
            let oracle = kron_matmul_naive(&x, &refs).unwrap();
            assert_matrices_close(&y, &oracle, &format!("reuse seed {seed}"));
        }
    }

    #[test]
    fn f32_path_matches_oracle() {
        let problem = KronProblem::uniform(3, 8, 2).unwrap();
        let x = Matrix::<f32>::from_fn(3, 64, |r, c| ((r * 64 + c) % 7) as f32 - 3.0);
        let fs: Vec<Matrix<f32>> = (0..2)
            .map(|i| Matrix::from_fn(8, 8, |r, c| ((i + r * 8 + c) % 5) as f32 - 2.0))
            .collect();
        let refs: Vec<&Matrix<f32>> = fs.iter().collect();
        let got = Workspace::new(&problem).execute(&x, &refs).unwrap();
        let oracle = kron_matmul_naive(&x, &refs).unwrap();
        assert_matrices_close(&got, &oracle, "f32 fused");
    }

    #[test]
    fn epilogue_matches_figure2_by_hand() {
        // Paper Figure 2's worked single iteration: row [1,2,3,4] sliced
        // into (1,2) and (3,4) against F = [[10,20],[30,40]]. Column 0
        // lands at out[0..2], column 1 at out[2..4] — already shuffled.
        let x = [1.0f64, 2.0, 3.0, 4.0];
        let f = [10.0f64, 20.0, 30.0, 40.0];
        let mut out = [0.0f64; 4];
        let mut panel = [0.0f64; RK * PANEL_MAX_P];
        sliced_multiply_row(&x, &f, 2, 2, 2, &mut out, &mut panel);
        assert_eq!(out, [70.0, 150.0, 100.0, 220.0]);
    }

    #[test]
    fn fused_output_col_is_the_kernel_epilogue_map() {
        // q varies slowest, slice fastest — no transpose needed afterwards.
        assert_eq!(fused_output_col(0, 4, 0), 0);
        assert_eq!(fused_output_col(0, 4, 3), 3);
        assert_eq!(fused_output_col(1, 4, 0), 4);
        assert_eq!(fused_output_col(2, 4, 1), 9);
    }

    #[test]
    fn rows_into_matches_sliced_multiply_and_validates() {
        use crate::algorithm::sliced_multiply;
        let x = seq_matrix(3, 12, 2);
        let f = seq_matrix(4, 5, 7);
        let expected = sliced_multiply(&x, &f).unwrap();
        // Strided buffers wider than the logical rows.
        let (xs, os) = (16, 20);
        let mut xbuf = vec![0.0f64; 3 * xs];
        for r in 0..3 {
            xbuf[r * xs..r * xs + 12].copy_from_slice(x.row(r));
        }
        let mut out = vec![-1.0f64; 3 * os];
        let mut panel = PackPanel::new();
        sliced_multiply_rows_into(&xbuf, xs, &f, 3, 12, &mut out, os, &mut panel).unwrap();
        for r in 0..3 {
            assert_eq!(&out[r * os..r * os + 15], expected.row(r), "row {r}");
        }
        // Validation: k_in not a multiple of P, short strides, short buffers.
        let err = |r| -> bool { matches!(r, Err(kron_core::KronError::ShapeMismatch { .. })) };
        let mut o = vec![0.0f64; 60];
        assert!(err(sliced_multiply_rows_into(
            &xbuf, xs, &f, 3, 10, &mut o, os, &mut panel
        )));
        assert!(err(sliced_multiply_rows_into(
            &xbuf, 8, &f, 3, 12, &mut o, os, &mut panel
        )));
        assert!(err(sliced_multiply_rows_into(
            &xbuf, xs, &f, 3, 12, &mut o, 10, &mut panel
        )));
        assert!(err(sliced_multiply_rows_into(
            &xbuf[..20],
            xs,
            &f,
            3,
            12,
            &mut o,
            os,
            &mut panel
        )));
        assert!(err(sliced_multiply_rows_into(
            &xbuf,
            xs,
            &f,
            3,
            12,
            &mut o[..40],
            os,
            &mut panel
        )));
        // rows == 0 is a no-op.
        sliced_multiply_rows_into(&xbuf, xs, &f, 0, 12, &mut o, os, &mut panel).unwrap();
    }

    #[test]
    fn convenience_wrapper_validates() {
        let x = Matrix::<f64>::zeros(2, 9);
        let f = Matrix::<f64>::identity(2);
        assert!(kron_matmul_fused(&x, &[&f, &f]).is_err());
        assert!(kron_matmul_fused::<f64>(&x, &[]).is_err());
        let ok = seq_matrix(2, 4, 0);
        assert!(kron_matmul_fused(&ok, &[&f, &f]).is_ok());
    }

    #[test]
    fn workspace_validates_operands() {
        let problem = KronProblem::uniform(2, 4, 2).unwrap();
        let mut ws = Workspace::<f64>::new(&problem);
        let x = seq_matrix(2, 16, 0);
        let f = seq_matrix(4, 4, 1);
        let wrong_f = seq_matrix(2, 4, 1);
        assert!(ws.execute(&x, &[&f]).is_err());
        assert!(ws.execute(&x, &[&f, &wrong_f]).is_err());
        let wrong_x = seq_matrix(2, 8, 0);
        assert!(ws.execute(&wrong_x, &[&f, &f]).is_err());
        let mut wrong_y = Matrix::zeros(2, 8);
        assert!(ws.execute_into(&x, &[&f, &f], &mut wrong_y).is_err());
        assert!(ws.execute(&x, &[&f, &f]).is_ok());
    }
}
