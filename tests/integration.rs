//! Cross-crate integration tests: every engine in the workspace must
//! produce identical results on shared inputs, and the simulated-time
//! relationships the paper reports must hold end to end.

use fastkron::baselines::{CuTensorEngine, Engine, FastKronEngine, FtmmtEngine, ShuffleEngine};
use fastkron::dist::DistFastKron;
use fastkron::kron::FastKron;
use fastkron::prelude::*;
use kron_core::naive::kron_matmul_naive;
use kron_core::{FactorShape, Matrix};

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 11 * r * cols + c) % 19) as f64 - 9.0
    })
}

fn problem_inputs(problem: &KronProblem, seed: usize) -> (Matrix<f64>, Vec<Matrix<f64>>) {
    let x = seq_matrix(problem.m, problem.input_cols(), seed);
    let fs = problem
        .factors
        .iter()
        .enumerate()
        .map(|(i, s)| seq_matrix(s.p, s.q, seed + 3 * i + 1))
        .collect();
    (x, fs)
}

#[test]
fn all_engines_agree_on_uniform_problem() {
    let problem = KronProblem::uniform(6, 4, 4).unwrap();
    let (x, fs) = problem_inputs(&problem, 5);
    let refs: Vec<&Matrix<f64>> = fs.iter().collect();
    let oracle = kron_matmul_naive(&x, &refs).unwrap();

    let engines: Vec<Box<dyn Engine<f64>>> = vec![
        Box::new(FastKronEngine::new(&V100)),
        Box::new(FastKronEngine::without_fusion(&V100)),
        Box::new(ShuffleEngine::new(&V100)),
        Box::new(FtmmtEngine::new(&V100)),
        Box::new(CuTensorEngine::new(&V100)),
    ];
    for engine in engines {
        let y = engine.execute(&x, &refs).unwrap();
        assert_matrices_close(&y, &oracle, engine.name());
    }
}

#[test]
fn all_engines_agree_on_mixed_rectangular_problem() {
    let problem = KronProblem::new(
        5,
        vec![
            FactorShape::new(3, 2),
            FactorShape::new(2, 5),
            FactorShape::new(4, 3),
        ],
    )
    .unwrap();
    let (x, fs) = problem_inputs(&problem, 9);
    let refs: Vec<&Matrix<f64>> = fs.iter().collect();
    let oracle = kron_matmul_naive(&x, &refs).unwrap();
    for engine in [
        Box::new(FastKronEngine::new(&V100)) as Box<dyn Engine<f64>>,
        Box::new(ShuffleEngine::new(&V100)),
        Box::new(FtmmtEngine::new(&V100)),
    ] {
        let y = engine.execute(&x, &refs).unwrap();
        assert_matrices_close(&y, &oracle, engine.name());
    }
}

#[test]
fn emulated_kernels_match_functional_plan_end_to_end() {
    for (m, p, n) in [(4usize, 4usize, 3usize), (3, 8, 2), (2, 16, 2)] {
        let problem = KronProblem::uniform(m, p, n).unwrap();
        let (x, fs) = problem_inputs(&problem, m + p);
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let plan = FastKron::plan::<f64>(&problem, &V100).unwrap();
        let fast = plan.execute(&x, &refs).unwrap();
        let emulated = plan.execute_emulated(&x, &refs).unwrap();
        assert_matrices_close(&emulated, &fast, &format!("emulated {p}^{n}"));
    }
}

#[test]
fn distributed_matches_every_other_engine() {
    let problem = KronProblem::uniform(8, 4, 4).unwrap();
    let (x, fs) = problem_inputs(&problem, 2);
    let refs: Vec<&Matrix<f64>> = fs.iter().collect();
    let oracle = kron_matmul_naive(&x, &refs).unwrap();
    for gpus in [1usize, 2, 4, 8, 16] {
        let engine = DistFastKron::new(&V100, gpus).unwrap();
        let y = engine.execute(&x, &refs).unwrap();
        assert_matrices_close(&y, &oracle, &format!("distributed on {gpus} GPUs"));
    }
}

#[test]
fn figure9_ordering_holds_at_all_sizes() {
    // GPyTorch < FTMMT engines < FastKron in simulated throughput.
    for (p, n) in [(8usize, 4usize), (16, 3), (32, 3)] {
        let problem = KronProblem::uniform(256, p, n).unwrap();
        let t_gp = Engine::<f32>::simulate(&ShuffleEngine::new(&V100), &problem)
            .unwrap()
            .seconds;
        let t_co = Engine::<f32>::simulate(&FtmmtEngine::new(&V100), &problem)
            .unwrap()
            .seconds;
        let t_fk = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem)
            .unwrap()
            .seconds;
        assert!(t_fk <= t_co, "{p}^{n}: FastKron {t_fk} vs COGENT {t_co}");
        assert!(t_co < t_gp, "{p}^{n}: COGENT {t_co} vs GPyTorch {t_gp}");
    }
}

#[test]
fn fusion_helps_small_p_not_large_p() {
    // Paper Figure 9: fusion gives 2.20x at 8^5, nothing at P >= 64.
    let small = KronProblem::uniform(512, 8, 4).unwrap();
    let t_f = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &small)
        .unwrap()
        .seconds;
    let t_u = Engine::<f32>::simulate(&FastKronEngine::without_fusion(&V100), &small)
        .unwrap()
        .seconds;
    let gain = t_u / t_f;
    assert!(gain > 1.3, "fusion gain at 8^4 only {gain}");

    let large = KronProblem::uniform(64, 64, 2).unwrap();
    let plan = FastKron::plan::<f32>(&large, &V100).unwrap();
    assert!(plan.stages.iter().all(|s| !s.fused), "P=64 must not fuse");
}

#[test]
fn double_precision_runs_at_half_throughput() {
    let problem = KronProblem::uniform(1024, 64, 2).unwrap();
    let engine = FastKronEngine::new(&V100);
    let t32 = Engine::<f32>::simulate(&engine, &problem).unwrap().seconds;
    let t64 = Engine::<f64>::simulate(&engine, &problem).unwrap().seconds;
    let ratio = t64 / t32;
    assert!((1.2..=2.6).contains(&ratio), "f64/f32 ratio {ratio}");
}

#[test]
fn gp_training_pipeline_end_to_end() {
    use fastkron::gp::{Dataset, InducingGrid, SkiGp, UciDataset};
    let data = Dataset::synthesize_subsampled(UciDataset::ThreeDRoad, 3, 80);
    let grid = InducingGrid::new(3, 4, 0.35).unwrap();
    let gp = SkiGp::<f64>::new(grid, &data.features, 0.3).unwrap();
    let mut b = Matrix::<f64>::zeros(16, data.len());
    for i in 0..16 {
        for (j, &t) in data.targets.iter().enumerate() {
            b[(i, j)] = t * ((i + 1) as f64 / 16.0);
        }
    }
    let solve = gp.solve(&b, 80, 1e-9).unwrap();
    assert!(solve.iterations > 0);
    // Solutions scale linearly with the RHS scaling we applied.
    for j in 0..data.len() {
        let z1 = solve.z[(0, j)];
        let z16 = solve.z[(15, j)];
        assert!(
            (z16 - 16.0 * z1).abs() < 1e-5 * (1.0 + z16.abs()),
            "row scaling at col {j}: {z16} vs 16×{z1}"
        );
    }
}
