//! Model-check suites for the lock-free primitives in this shim. Built
//! and run only under `RUSTFLAGS="--cfg kron_loom"`, where the
//! `crossbeam::sync` facade resolves to `kron-modelcheck`'s deterministic
//! primitives:
//!
//! ```sh
//! RUSTFLAGS="--cfg kron_loom" cargo test -p crossbeam --test modelcheck
//! ```
//!
//! The suites drive the *production* `ArrayQueue` and ring-channel code
//! (not simplified replicas) through every schedule within the preemption
//! bound, plus mutation-validation tests that re-introduce a historical
//! bug shape (a dropped sleeper-handshake fence) and assert the checker
//! still catches it — if these fail, the checker has gone blind.
#![cfg(kron_loom)]

use crossbeam::channel::bounded;
use crossbeam::queue::ArrayQueue;
use crossbeam::sync::atomic::{fence, AtomicUsize, Ordering};
use crossbeam::sync::{Arc, Condvar, Mutex};
use kron_modelcheck::{model, thread, Builder, FailureKind};

fn explorer() -> Builder {
    Builder {
        preemption_bound: 2,
        max_iterations: 400_000,
        max_branches: 20_000,
        random_walks: 2_000,
        ..Builder::default()
    }
}

fn check_pass(name: &str, f: impl Fn() + Send + Sync + 'static) {
    let report = explorer()
        .check(f)
        .unwrap_or_else(|failure| panic!("{name}: {failure}"));
    eprintln!(
        "{name}: {} iterations (exhaustive: {})",
        report.iterations, report.exhaustive
    );
}

// ---------------------------------------------------------------- ArrayQueue

#[test]
fn array_queue_seq_lap_protocol_single_thread() {
    // Lap arithmetic under the model primitives: full ring rejects,
    // wraparound preserves FIFO.
    model(|| {
        let q = ArrayQueue::new(2);
        q.push(1u32).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    });
}

#[test]
fn array_queue_spsc_no_loss_no_reorder() {
    check_pass("spsc", || {
        let q = Arc::new(ArrayQueue::new(2));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            q2.push(10u32).unwrap();
            q2.push(20).unwrap();
        });
        let mut got = Vec::new();
        while got.len() < 2 {
            match q.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        // FIFO per producer: exactly the sent values, in order.
        assert_eq!(got, vec![10, 20]);
        assert_eq!(q.pop(), None);
        producer.join().unwrap();
    });
}

#[test]
fn array_queue_mpsc_no_loss_no_duplication() {
    check_pass("mpsc", || {
        let q = Arc::new(ArrayQueue::new(2));
        let producers: Vec<_> = [1u32, 2]
            .into_iter()
            .map(|v| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push(v).unwrap())
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 2 {
            match q.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        got.sort_unstable();
        // Linearizable MPMC: every pushed value popped exactly once.
        assert_eq!(got, vec![1, 2]);
        for p in producers {
            p.join().unwrap();
        }
    });
}

#[test]
fn array_queue_contended_push_never_overfills() {
    check_pass("contended-push", || {
        let q = Arc::new(ArrayQueue::new(2));
        let pushers: Vec<_> = (0..3u32)
            .map(|v| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push(v).is_ok())
            })
            .collect();
        let oks = pushers
            .into_iter()
            .map(|p| p.join().unwrap())
            .filter(|ok| *ok)
            .count();
        // Capacity 2: under every interleaving exactly one contender is
        // turned away and both stored values survive.
        assert_eq!(oks, 2);
        let mut got = vec![q.pop().unwrap(), q.pop().unwrap()];
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 2, "duplicated value escaped the ring");
        assert_eq!(q.pop(), None);
    });
}

// ------------------------------------------------------- sleeper handshake

#[test]
fn ring_channel_no_lost_wakeup() {
    // The production handshake: consumer registers as a sleeper and
    // re-checks under SeqCst fences; producer fences before deciding
    // whether anyone needs a wakeup. A lost wakeup parks the consumer
    // forever, which the explorer reports as a deadlock — so this test
    // passing means no schedule loses the wakeup.
    check_pass("no-lost-wakeup", || {
        let (s, r) = bounded::<u32>(2);
        let producer = thread::spawn(move || {
            s.send(7).unwrap();
        });
        assert_eq!(r.recv(), Ok(7));
        // The sender dropped at the end of the producer thread; the
        // disconnect wakeup must also never be lost.
        assert!(r.recv().is_err());
        producer.join().unwrap();
    });
}

#[test]
fn ring_channel_two_messages_fifo() {
    check_pass("ring-fifo", || {
        let (s, r) = bounded::<u32>(2);
        let producer = thread::spawn(move || {
            s.send(1).unwrap();
            s.send(2).unwrap();
        });
        assert_eq!(r.recv(), Ok(1));
        assert_eq!(r.recv(), Ok(2));
        producer.join().unwrap();
    });
}

// ----------------------------------------------------- mutation validation

/// `#[cfg(test)]`-only mutant replica of `RingShared`'s sleeper
/// handshake, with the producer-side `SeqCst` fence made optional. The
/// code shape deliberately mirrors `channel::RingShared::{notify}` and
/// the parking section of `Receiver::recv` line for line.
struct SleeperHandshake {
    ring: ArrayQueue<u32>,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    ready: Condvar,
    producer_fence: bool,
}

impl SleeperHandshake {
    fn new(producer_fence: bool) -> Self {
        SleeperHandshake {
            ring: ArrayQueue::new(2),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            ready: Condvar::new(),
            producer_fence,
        }
    }

    fn send(&self, v: u32) {
        self.ring.push(v).unwrap();
        if self.producer_fence {
            fence(Ordering::SeqCst);
        }
        // MUTANT SITE: without the fence above, this relaxed read may
        // miss a registration that raced the push, and the wakeup is
        // lost.
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.ready.notify_all();
        }
    }

    fn recv(&self) -> u32 {
        loop {
            if let Some(v) = self.ring.pop() {
                return v;
            }
            let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if !self.ring.is_empty() {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                drop(guard);
                thread::yield_now();
                continue;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
            drop(guard);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn run_handshake(
    producer_fence: bool,
) -> Result<kron_modelcheck::Report, kron_modelcheck::Failure> {
    explorer().check(move || {
        let hs = Arc::new(SleeperHandshake::new(producer_fence));
        let hs2 = Arc::clone(&hs);
        let producer = thread::spawn(move || hs2.send(7));
        assert_eq!(hs.recv(), 7);
        producer.join().unwrap();
    })
}

#[test]
fn handshake_replica_with_fence_is_sound() {
    // Baseline: the replica with the fence intact must verify, proving
    // the mutant test below fails for the *fence* and not some other
    // artifact of the replica.
    run_handshake(true).expect("fenced handshake must never lose a wakeup");
}

#[test]
fn checker_catches_dropped_fence_lost_wakeup() {
    // Mutation validation: dropping the producer-side fence must be
    // caught as a lost wakeup (consumer parked forever). If this test
    // fails, the model checker has gone blind to the bug class PR 9's
    // sleeper handshake exists to prevent.
    let failure = run_handshake(false)
        .expect_err("the dropped-fence mutant must lose a wakeup under some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock),
        "expected a lost-wakeup deadlock, got: {failure}"
    );
}
