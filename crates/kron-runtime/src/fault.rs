//! The scripted chaos plane: deterministic fault injection for the
//! serving runtime.
//!
//! PR 3's [`crate::Runtime::inject_device_fault`] armed exactly one panic
//! on the next sharded execute. Chaos drills need more vocabulary: fault
//! device *g* on the *N*th sharded batch, or at clock time *T*; fire the
//! same fault `repeat` consecutive times (how breaker-trip scenarios are
//! scripted); or stall a device instead of panicking it, exercising the
//! watchdog path ([`kron_core::KronError::DeviceTimeout`]). A
//! [`FaultPlan`] scripts any mix of these; the runtime consumes events
//! one per firing opportunity, deterministically under a manual clock.
//!
//! The plane is observable but never on the hot path: a disarmed plane
//! costs one atomic load plus one atomic increment per sharded execute —
//! no lock, no allocation — preserving the zero-allocation steady-state
//! contract with retry and chaos machinery compiled in.

use crate::metrics::MetricsHub;
use crate::trace::ServeEventKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// When a scripted fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// On the `n`th sharded execute of the runtime's lifetime (0-based,
    /// counted across models, dtypes, and retries) — or the first
    /// opportunity after it, if the `n`th has already passed when the
    /// plan is installed.
    OnShardedBatch(u64),
    /// At or after the given absolute time, in microseconds on the
    /// runtime's [`crate::clock::Clock`] (see
    /// [`crate::Runtime::now_us`]).
    AtTimeUs(u64),
}

/// What a scripted fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The target device raises (and catches) a panic mid-batch — the
    /// classic injected device fault, now scriptable. The batch fails
    /// with [`kron_core::KronError::DeviceFailure`].
    Panic,
    /// The target device parks for `stall_us` of clock time at batch
    /// start. Within the runtime's watchdog budget
    /// ([`crate::RuntimeConfig::device_watchdog_us`]) this is a latency
    /// blip; past it, the batch fails with the bounded
    /// [`kron_core::KronError::DeviceTimeout`].
    Stall {
        /// How long the device stalls, in clock microseconds.
        stall_us: u64,
    },
    /// The scheduler thread itself panics at the top of its next serve
    /// cycle (the `gpu` field is ignored). Drills the panic-containment
    /// path: pending tickets fail with
    /// [`kron_core::KronError::Shutdown`] and the runtime is poisoned.
    SchedulerPanic,
}

/// One scripted fault event of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Target simulated device (linear id on the configured machine;
    /// ignored by [`FaultKind::SchedulerPanic`]).
    pub gpu: usize,
    /// When the event becomes due.
    pub trigger: FaultTrigger,
    /// How many consecutive firing opportunities the event fires on once
    /// due (clamped to at least 1). `repeat > 1` is how a breaker trip is
    /// scripted: the same device fails again on each retry.
    pub repeat: u32,
    /// What the event does.
    pub kind: FaultKind,
}

/// A deterministic fault script for chaos drills, installed with
/// [`crate::Runtime::install_fault_plan`]. Events are consumed in script
/// order among those due at a firing opportunity; device events whose
/// target lies outside the currently-degraded grid stay pending until a
/// grid containing the device executes again — so a quarantined device
/// stops burning scripted faults (and retry budget) exactly like the real
/// machine it models.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted events, in priority order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (installing it disarms the plane).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends an arbitrary event.
    pub fn event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Panic device `gpu` on sharded batch `batch` (once).
    pub fn panic_on_batch(self, gpu: usize, batch: u64) -> Self {
        self.event(FaultEvent {
            gpu,
            trigger: FaultTrigger::OnShardedBatch(batch),
            repeat: 1,
            kind: FaultKind::Panic,
        })
    }

    /// Panic device `gpu` on sharded batch `batch` and the next
    /// `repeat - 1` firing opportunities after it (retries included).
    pub fn panic_on_batch_repeat(self, gpu: usize, batch: u64, repeat: u32) -> Self {
        self.event(FaultEvent {
            gpu,
            trigger: FaultTrigger::OnShardedBatch(batch),
            repeat,
            kind: FaultKind::Panic,
        })
    }

    /// Panic device `gpu` on the first sharded execute at or after clock
    /// time `at_us`.
    pub fn panic_at_time(self, gpu: usize, at_us: u64) -> Self {
        self.event(FaultEvent {
            gpu,
            trigger: FaultTrigger::AtTimeUs(at_us),
            repeat: 1,
            kind: FaultKind::Panic,
        })
    }

    /// Stall device `gpu` for `stall_us` of clock time on sharded batch
    /// `batch`.
    pub fn stall_on_batch(self, gpu: usize, batch: u64, stall_us: u64) -> Self {
        self.event(FaultEvent {
            gpu,
            trigger: FaultTrigger::OnShardedBatch(batch),
            repeat: 1,
            kind: FaultKind::Stall { stall_us },
        })
    }

    /// Panic the scheduler thread at its first serve cycle at or after
    /// clock time `at_us`.
    pub fn scheduler_panic_at_time(self, at_us: u64) -> Self {
        self.event(FaultEvent {
            gpu: 0,
            trigger: FaultTrigger::AtTimeUs(at_us),
            repeat: 1,
            kind: FaultKind::SchedulerPanic,
        })
    }
}

/// Whether an event's trigger is due at the given batch number / time.
fn due(trigger: FaultTrigger, batch: u64, now_us: u64) -> bool {
    match trigger {
        FaultTrigger::OnShardedBatch(n) => batch >= n,
        FaultTrigger::AtTimeUs(t) => now_us >= t,
    }
}

/// Mutable script state behind the plane's mutex.
#[derive(Default)]
struct PlaneState {
    events: Vec<FaultEvent>,
}

/// The runtime side of the chaos plane, shared between the [`crate::Runtime`]
/// handle (install/inject) and the scheduler (consume). The `armed` flag
/// keeps the disarmed fast path to one atomic load; `sharded_seq` is the
/// lifetime sharded-execute counter [`FaultTrigger::OnShardedBatch`]
/// triggers index.
pub(crate) struct FaultPlane {
    armed: AtomicBool,
    sharded_seq: AtomicU64,
    state: Mutex<PlaneState>,
    hub: Arc<MetricsHub>,
}

impl FaultPlane {
    /// A disarmed plane; injected faults are recorded into `hub`'s
    /// flight recorder when they fire.
    pub(crate) fn new(hub: Arc<MetricsHub>) -> Self {
        FaultPlane {
            armed: AtomicBool::new(false),
            sharded_seq: AtomicU64::new(0),
            state: Mutex::new(PlaneState::default()),
            hub,
        }
    }

    /// Replaces the script wholesale (an empty plan disarms).
    pub(crate) fn install(&self, plan: FaultPlan) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.events = plan.events;
        for ev in &mut st.events {
            ev.repeat = ev.repeat.max(1);
        }
        self.armed.store(!st.events.is_empty(), Ordering::SeqCst);
    }

    /// Appends one event to the live script (how the one-shot
    /// `inject_device_fault` compatibility path arms).
    pub(crate) fn push(&self, mut event: FaultEvent) {
        event.repeat = event.repeat.max(1);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.events.push(event);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Remaining scripted firing opportunities (the sum of every pending
    /// event's `repeat`): `0` once the script has fully played out.
    pub(crate) fn pending(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .iter()
            .map(|ev| ev.repeat as usize)
            .sum()
    }

    /// The sharded-execute number the *next* execute will carry — the
    /// batch an `OnShardedBatch` event must target to fire "next".
    pub(crate) fn current_batch(&self) -> u64 {
        self.sharded_seq.load(Ordering::SeqCst)
    }

    /// Called once per sharded execute (this is what advances the batch
    /// counter): returns the device fault to arm for this execute, if one
    /// is due and its target lies inside the executing grid's `gpus`
    /// devices. Scheduler-panic events are never returned here (see
    /// [`Self::scheduler_panic_due`]).
    pub(crate) fn next_device_fault(&self, now_us: u64, gpus: usize) -> Option<(usize, FaultKind)> {
        let batch = self.sharded_seq.fetch_add(1, Ordering::SeqCst);
        if !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let idx = st.events.iter().position(|ev| {
            !matches!(ev.kind, FaultKind::SchedulerPanic)
                && ev.gpu < gpus
                && due(ev.trigger, batch, now_us)
        })?;
        let fired = (st.events[idx].gpu, st.events[idx].kind);
        st.events[idx].repeat -= 1;
        if st.events[idx].repeat == 0 {
            st.events.swap_remove(idx);
        }
        if st.events.is_empty() {
            self.armed.store(false, Ordering::SeqCst);
        }
        self.hub.event(
            now_us,
            ServeEventKind::FaultInjected {
                gpu: fired.0 as u32,
                kind: fired.1,
            },
        );
        Some(fired)
    }

    /// Called at the top of each serve cycle: consumes and reports a due
    /// scheduler-panic event.
    pub(crate) fn scheduler_panic_due(&self, now_us: u64) -> bool {
        if !self.armed.load(Ordering::SeqCst) {
            return false;
        }
        let batch = self.sharded_seq.load(Ordering::SeqCst);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let Some(idx) = st.events.iter().position(|ev| {
            matches!(ev.kind, FaultKind::SchedulerPanic) && due(ev.trigger, batch, now_us)
        }) else {
            return false;
        };
        st.events[idx].repeat -= 1;
        if st.events[idx].repeat == 0 {
            st.events.swap_remove(idx);
        }
        if st.events.is_empty() {
            self.armed.store(false, Ordering::SeqCst);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> FaultPlane {
        FaultPlane::new(Arc::new(MetricsHub::new(0)))
    }

    #[test]
    fn disarmed_plane_counts_batches_but_fires_nothing() {
        let plane = plane();
        assert_eq!(plane.current_batch(), 0);
        assert!(plane.next_device_fault(0, 4).is_none());
        assert!(plane.next_device_fault(0, 4).is_none());
        assert_eq!(plane.current_batch(), 2);
        assert!(!plane.scheduler_panic_due(u64::MAX));
    }

    #[test]
    fn batch_triggers_fire_at_or_after_their_batch_and_repeat() {
        let plane = plane();
        plane.install(FaultPlan::new().panic_on_batch_repeat(1, 2, 2));
        assert!(plane.next_device_fault(0, 4).is_none()); // batch 0
        assert!(plane.next_device_fault(0, 4).is_none()); // batch 1
        assert_eq!(plane.next_device_fault(0, 4), Some((1, FaultKind::Panic)));
        assert_eq!(plane.next_device_fault(0, 4), Some((1, FaultKind::Panic)));
        assert!(plane.next_device_fault(0, 4).is_none()); // exhausted
        assert_eq!(plane.pending(), 0);
    }

    #[test]
    fn time_triggers_and_stalls_fire_on_the_clock() {
        let plane = plane();
        plane.install(
            FaultPlan::new()
                .stall_on_batch(0, 0, 700)
                .panic_at_time(2, 5_000),
        );
        assert_eq!(
            plane.next_device_fault(0, 4),
            Some((0, FaultKind::Stall { stall_us: 700 }))
        );
        assert!(plane.next_device_fault(4_999, 4).is_none());
        assert_eq!(
            plane.next_device_fault(5_000, 4),
            Some((2, FaultKind::Panic))
        );
    }

    #[test]
    fn faults_outside_a_degraded_grid_stay_pending() {
        let plane = plane();
        plane.install(FaultPlan::new().panic_on_batch(3, 0));
        // Degraded to 2 devices: the device-3 fault cannot fire.
        assert!(plane.next_device_fault(0, 2).is_none());
        assert_eq!(plane.pending(), 1);
        // Back on the full grid it fires.
        assert_eq!(plane.next_device_fault(0, 4), Some((3, FaultKind::Panic)));
    }

    #[test]
    fn scheduler_panic_events_only_fire_through_their_own_probe() {
        let plane = plane();
        plane.install(FaultPlan::new().scheduler_panic_at_time(100));
        assert!(plane.next_device_fault(500, 4).is_none());
        assert!(!plane.scheduler_panic_due(99));
        assert!(plane.scheduler_panic_due(100));
        assert!(!plane.scheduler_panic_due(100), "one-shot");
    }
}
