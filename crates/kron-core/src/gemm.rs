//! Blocked, rayon-parallel reference matrix multiplication.
//!
//! Every baseline engine ultimately multiplies a tall-skinny reshape of the
//! input with a small factor. The blocked kernel here is cache-friendly
//! enough to make the functional path usable at the paper's problem sizes
//! while remaining obviously correct (it is also cross-checked against a
//! naive triple loop in tests).

use crate::element::Element;
use crate::error::{KronError, Result};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Cache-block edge used by [`gemm`]; 64×64 f64 blocks fit comfortably in L1.
const BLOCK: usize = 64;

/// Row-count threshold below which [`gemm`] stays single-threaded; tiny
/// multiplies are dominated by rayon dispatch otherwise.
const PAR_ROW_THRESHOLD: usize = 64;

/// Computes `C = A × B` for row-major dense matrices.
///
/// # Errors
/// Returns [`KronError::ShapeMismatch`] when `A.cols() != B.rows()`.
pub fn gemm<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    if a.cols() != b.rows() {
        return Err(KronError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("B with {} rows", b.rows()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);

    let a_data = a.as_slice();
    let b_data = b.as_slice();

    let body = |(row_block_idx, c_chunk): (usize, &mut [T])| {
        let r0 = row_block_idx * BLOCK;
        let r1 = (r0 + BLOCK).min(m);
        let rows_here = r1 - r0;
        for kb in (0..k).step_by(BLOCK) {
            let k1 = (kb + BLOCK).min(k);
            for r in 0..rows_here {
                let a_row = &a_data[(r0 + r) * k..(r0 + r) * k + k];
                let c_row = &mut c_chunk[r * n..(r + 1) * n];
                for kk in kb..k1 {
                    let aval = a_row[kk];
                    if aval == T::ZERO {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv = aval.mul_add(*bv, *cv);
                    }
                }
            }
        }
    };

    if m >= PAR_ROW_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(BLOCK * n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(BLOCK * n)
            .enumerate()
            .for_each(body);
    }
    Ok(c)
}

/// Naive triple-loop `C = A × B`; the oracle for [`gemm`] itself.
pub fn gemm_naive<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    if a.cols() != b.rows() {
        return Err(KronError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("B with {} rows", b.rows()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for kk in 0..k {
                acc = a[(i, kk)].mul_add(b[(kk, j)], acc);
            }
            c[(i, j)] = acc;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_matrices_close;

    fn arb_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        // Small deterministic pseudo-random values; integers over a small
        // range keep f64 arithmetic exact so blocked == naive bit-for-bit.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 17) as f64 - 8.0
        })
    }

    #[test]
    fn blocked_matches_naive_square() {
        let a = arb_matrix(37, 41, 1);
        let b = arb_matrix(41, 29, 2);
        let fast = gemm(&a, &b).unwrap();
        let slow = gemm_naive(&a, &b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn blocked_matches_naive_tall_skinny() {
        // The shuffle algorithm's shape: very tall A, tiny B.
        let a = arb_matrix(512, 8, 3);
        let b = arb_matrix(8, 8, 4);
        assert_eq!(gemm(&a, &b).unwrap(), gemm_naive(&a, &b).unwrap());
    }

    #[test]
    fn blocked_matches_naive_above_parallel_threshold() {
        let a = arb_matrix(PAR_ROW_THRESHOLD * 2 + 3, 33, 5);
        let b = arb_matrix(33, 17, 6);
        assert_eq!(gemm(&a, &b).unwrap(), gemm_naive(&a, &b).unwrap());
    }

    #[test]
    fn identity_is_noop() {
        let a = arb_matrix(13, 13, 7);
        let i = Matrix::<f64>::identity(13);
        assert_matrices_close(&gemm(&a, &i).unwrap(), &a, "A·I");
        assert_matrices_close(&gemm(&i, &a).unwrap(), &a, "I·A");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(4, 2);
        assert!(matches!(gemm(&a, &b), Err(KronError::ShapeMismatch { .. })));
        assert!(gemm_naive(&a, &b).is_err());
    }

    #[test]
    fn single_element() {
        let a = Matrix::<f64>::from_vec(1, 1, vec![3.0]).unwrap();
        let b = Matrix::<f64>::from_vec(1, 1, vec![-2.0]).unwrap();
        assert_eq!(gemm(&a, &b).unwrap()[(0, 0)], -6.0);
    }
}
