//! Scalar element types accepted by every engine in the workspace.
//!
//! The paper evaluates `float` and `double` (Table 3); [`Element`] abstracts
//! over the two so each algorithm is written once. The trait also carries the
//! metadata the GPU cost model needs: byte width and which peak-FLOPS figure
//! of the simulated device applies.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Data type tag used by the performance model to select the correct peak
/// arithmetic throughput (e.g. 15.7 TFLOPS f32 vs 7.8 TFLOPS f64 on a V100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE-754 binary32 (`float` in the paper).
    F32,
    /// IEEE-754 binary64 (`double` in the paper).
    F64,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }

    /// Human-readable name matching the paper's terminology.
    pub const fn name(self) -> &'static str {
        match self {
            DType::F32 => "float",
            DType::F64 => "double",
        }
    }

    /// The Rust type name (`"f32"` / `"f64"`) — used when generating
    /// copy-pasteable regression literals.
    pub const fn rust_name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
        }
    }
}

impl Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A floating-point scalar usable in every Kron-Matmul engine.
///
/// Implemented for `f32` and `f64` only; the bound list is exactly what the
/// blocked GEMM, the kernel emulation, and the CG solver need.
pub trait Element:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon widened to `f64` (used for tolerances).
    const EPSILON_F64: f64;
    /// Data type tag for the performance model.
    const DTYPE: DType;

    /// Lossy conversion from `f64` (the widest type we use).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from `usize`, for integer-valued test data.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root (CG and RBF kernels need it).
    fn sqrt(self) -> Self;
    /// `e^self` (RBF kernels).
    fn exp(self) -> Self;
    /// Fused multiply-add `self * a + b`; mirrors the FMA every GPU kernel
    /// in the paper is built from.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON_F64: f64 = f32::EPSILON as f64;
    const DTYPE: DType = DType::F32;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
}

impl Element for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON_F64: f64 = f64::EPSILON;
    const DTYPE: DType = DType::F64;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_metadata() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::F64.bytes(), 8);
        assert_eq!(DType::F32.name(), "float");
        assert_eq!(DType::F64.name(), "double");
        assert_eq!(<f32 as Element>::DTYPE, DType::F32);
        assert_eq!(<f64 as Element>::DTYPE, DType::F64);
    }

    #[test]
    fn roundtrip_conversions() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_f64(-2.25), -2.25);
        assert_eq!(f32::from_usize(7), 7.0);
        assert_eq!(f64::from_usize(1 << 20), (1 << 20) as f64);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let x = 3.0_f64;
        assert_eq!(x.mul_add(2.0, 1.0), 7.0);
        let y = 3.0_f32;
        assert_eq!(y.mul_add(2.0, 1.0), 7.0);
    }

    #[test]
    fn math_helpers() {
        assert_eq!((-4.0_f64).abs(), 4.0);
        assert_eq!(9.0_f32.sqrt(), 3.0);
        assert!((1.0_f64.exp() - std::f64::consts::E).abs() < 1e-15);
    }
}
