//! Problem-shape descriptors and the size/FLOP arithmetic shared by every
//! engine and by the performance model.

use crate::error::{KronError, Result};
use std::fmt;

/// Shape of one Kronecker factor `Fᵢ` (`Pᵢ` rows × `Qᵢ` columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FactorShape {
    /// Rows of the factor (the slice length in FastKron's algorithm).
    pub p: usize,
    /// Columns of the factor.
    pub q: usize,
}

impl FactorShape {
    /// Convenience constructor.
    pub const fn new(p: usize, q: usize) -> Self {
        FactorShape { p, q }
    }

    /// Square factor `n × n` (the common case in the paper's evaluation).
    pub const fn square(n: usize) -> Self {
        FactorShape { p: n, q: n }
    }
}

impl fmt::Display for FactorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}", self.p, self.q)
    }
}

/// Shapes for one iteration of a Kron-Matmul engine.
///
/// Iterations run over factors from the **last** (`FN`) to the **first**
/// (`F1`); this ordering is what makes the factor's index the
/// fastest-varying dimension of the intermediate at its turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationShape {
    /// 0-based index of the factor this iteration multiplies with
    /// (`N-1` first, `0` last).
    pub factor_index: usize,
    /// Shape of that factor.
    pub factor: FactorShape,
    /// Columns of the input intermediate (`K` in the paper).
    pub input_cols: usize,
    /// Columns of the output intermediate (`L = K/P·Q` in the paper).
    pub output_cols: usize,
    /// Number of row slices (`K / P`).
    pub slices: usize,
}

/// A complete Kron-Matmul problem: `Y[M × ∏Qᵢ] = X[M × ∏Pᵢ] · (F1 ⊗ … ⊗ FN)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KronProblem {
    /// Rows of the input matrix `X`.
    pub m: usize,
    /// Factor shapes, in Kronecker-product order (`F1` outermost).
    pub factors: Vec<FactorShape>,
}

impl KronProblem {
    /// Builds and validates a problem description.
    ///
    /// # Errors
    /// [`KronError::NoFactors`] when `factors` is empty and
    /// [`KronError::EmptyDimension`] when any dimension is zero.
    pub fn new(m: usize, factors: Vec<FactorShape>) -> Result<Self> {
        if factors.is_empty() {
            return Err(KronError::NoFactors);
        }
        if m == 0 {
            return Err(KronError::EmptyDimension {
                what: "M = 0".into(),
            });
        }
        for (i, f) in factors.iter().enumerate() {
            if f.p == 0 || f.q == 0 {
                return Err(KronError::EmptyDimension {
                    what: format!("factor {} has shape {}", i + 1, f),
                });
            }
        }
        Ok(KronProblem { m, factors })
    }

    /// Problem with `n` identical square `p × p` factors — the paper's
    /// microbenchmark family `P^N` (Figures 9/11, Tables 1–3).
    pub fn uniform(m: usize, p: usize, n: usize) -> Result<Self> {
        KronProblem::new(m, vec![FactorShape::square(p); n])
    }

    /// Number of factors `N`.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// Columns of the input matrix, `∏ᵢ Pᵢ`.
    pub fn input_cols(&self) -> usize {
        self.factors.iter().map(|f| f.p).product()
    }

    /// Columns of the result, `∏ᵢ Qᵢ`.
    pub fn output_cols(&self) -> usize {
        self.factors.iter().map(|f| f.q).product()
    }

    /// Largest intermediate column count across iterations (line 3 of
    /// Algorithm 1 generalizes to this for mixed shapes): sizing for the
    /// double-buffered intermediates.
    pub fn max_intermediate_cols(&self) -> usize {
        self.iterations()
            .map(|it| it.output_cols)
            .max()
            .unwrap_or(0)
            .max(self.input_cols())
    }

    /// Elements of the largest intermediate any iteration produces or
    /// consumes, `M · max_intermediate_cols()` — the size each of the fused
    /// execution path's two ping-pong workspace buffers is allocated at
    /// once, so that no factor step ever allocates.
    pub fn max_intermediate_elems(&self) -> usize {
        self.m * self.max_intermediate_cols()
    }

    /// Iterator over the `N` iteration shapes, last factor first.
    pub fn iterations(&self) -> impl Iterator<Item = IterationShape> + '_ {
        let mut input_cols = self.input_cols();
        (0..self.factors.len()).rev().map(move |factor_index| {
            let factor = self.factors[factor_index];
            debug_assert_eq!(input_cols % factor.p, 0);
            let slices = input_cols / factor.p;
            let output_cols = slices * factor.q;
            let it = IterationShape {
                factor_index,
                factor,
                input_cols,
                output_cols,
                slices,
            };
            input_cols = output_cols;
            it
        })
    }

    /// Total floating-point operations performed by the iterative
    /// algorithms (shuffle, FTMMT and FastKron all share this count):
    /// `Σ_f 2 · M · K_out(f) · P_f`, counting one multiply and one add per
    /// inner step — the figure all TFLOPS numbers in the paper are based on.
    pub fn flops(&self) -> u64 {
        self.iterations()
            .map(|it| 2 * self.m as u64 * it.output_cols as u64 * it.factor.p as u64)
            .sum()
    }

    /// Total element reads+writes of intermediates across iterations,
    /// `Σ_f M · (K_in(f) + K_out(f))` — the `O(M Σᵢ Q^{N-i} P^i)` term the
    /// paper attributes the transpose/fusion savings to.
    pub fn intermediate_accesses(&self) -> u64 {
        self.iterations()
            .map(|it| self.m as u64 * (it.input_cols as u64 + it.output_cols as u64))
            .sum()
    }

    /// FLOPs of the naive algorithm (materialize `⊗Fᵢ` then GEMM):
    /// `2·M·∏Pᵢ·∏Qᵢ` — the `O(M·Pᴺ·Qᴺ)` the paper contrasts against.
    pub fn naive_flops(&self) -> u64 {
        2 * self.m as u64 * self.input_cols() as u64 * self.output_cols() as u64
    }

    /// True when all factors share one `P×Q` shape (enables the fused
    /// kernel's `log_P` arithmetic).
    pub fn is_uniform(&self) -> bool {
        self.factors.windows(2).all(|w| w[0] == w[1])
    }

    /// Compact display like `M=1024, 8⁶ (8×8 ×6)` used in reports.
    pub fn describe(&self) -> String {
        if self.is_uniform() {
            let f = self.factors[0];
            if f.p == f.q {
                return format!("M={}, {}^{}", self.m, f.p, self.factors.len());
            }
            return format!("M={}, ({})^{}", self.m, f, self.factors.len());
        }
        let fs: Vec<String> = self.factors.iter().map(|f| f.to_string()).collect();
        format!("M={}, {}", self.m, fs.join(" ⊗ "))
    }
}

impl fmt::Display for KronProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Where a planned execution runs: one device, or a `{GM, GK}` grid of
/// simulated devices (§5 of the paper's SUMMA-style partitioning).
///
/// Plans for the same problem on different backends are **not**
/// interchangeable — a sharded plan owns per-device blocks, a fabric, and
/// a communication schedule a single-device plan has no use for — so this
/// is part of [`PlanKey`] and any plan cache keyed on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecBackend {
    /// The whole problem executes on one device.
    #[default]
    SingleDevice,
    /// Rows are sharded `GM`-ways and columns `GK`-ways across a grid of
    /// simulated devices with grouped exchanges (Algorithm 2).
    Grid {
        /// Row groups (partition of `M`).
        gm: usize,
        /// Column groups (partition of `K`).
        gk: usize,
    },
}

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecBackend::SingleDevice => f.write_str("single"),
            ExecBackend::Grid { gm, gk } => write!(f, "grid{{{gm}×{gk}}}"),
        }
    }
}

/// Cache key identifying one planned execution: everything that makes two
/// [`crate::Matrix`]-level executions interchangeable — the problem shape,
/// the scalar type, the target device, and the execution backend (single
/// device or a device grid).
///
/// [`KronProblem`] (and [`FactorShape`]) derive `Hash`/`Eq` exactly so this
/// key can index a plan/workspace cache: a serving runtime that keys its
/// cache on `PlanKey` does zero planning and zero workspace allocation for
/// any request shape it has seen before.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The full problem shape (row count and factor shapes).
    pub problem: KronProblem,
    /// Scalar type the plan was specialized for.
    pub dtype: crate::DType,
    /// Name of the device the plan was tuned for (e.g. a
    /// `gpu_sim::DeviceSpec::name` or `"cpu"`).
    pub device: &'static str,
    /// Execution backend the plan targets.
    pub backend: ExecBackend,
}

impl PlanKey {
    /// Single-device plan key.
    pub fn new(problem: KronProblem, dtype: crate::DType, device: &'static str) -> Self {
        PlanKey {
            problem,
            dtype,
            device,
            backend: ExecBackend::SingleDevice,
        }
    }

    /// Plan key for an execution sharded across a `{gm, gk}` device grid.
    pub fn sharded(
        problem: KronProblem,
        dtype: crate::DType,
        device: &'static str,
        gm: usize,
        gk: usize,
    ) -> Self {
        PlanKey {
            problem,
            dtype,
            device,
            backend: ExecBackend::Grid { gm, gk },
        }
    }

    /// Estimated resident bytes of the execution state a cache entry for
    /// this key holds — the basis for byte-accounted cache budgets.
    ///
    /// Covers the three allocations that dominate an entry's footprint:
    ///
    /// * **workspace** — the fused path's two ping-pong intermediate
    ///   buffers (`2 · max_intermediate_elems`, zero for single-factor
    ///   chains); under a device grid, the per-device `local`/`next`
    ///   blocks tile the same two intermediates plus up to four more
    ///   intermediates' worth of pre-seeded and circulating exchange-part
    ///   buffers (the engine seeds `4·(GK−1)` parts per worker so
    ///   exchanges never allocate in steady state),
    /// * **staging** — the row-stacked batch input/output buffers
    ///   (`m · (K + L)`),
    ///
    /// all scaled by the dtype's element width. It is an accounting
    /// estimate (plans, channels, and thread stacks are not counted), so
    /// budgets should treat it as a sizing signal, not an allocator
    /// ledger.
    pub fn estimated_bytes(&self) -> usize {
        let p = &self.problem;
        let intermediates = if p.num_factors() > 1 {
            p.max_intermediate_elems()
        } else {
            0
        };
        let workspace = match self.backend {
            // Two ping-pong buffers.
            ExecBackend::SingleDevice => 2 * intermediates,
            // Per-device local/next blocks tile 2 intermediates across the
            // grid; the seeded exchange freelists (4·(GK−1) parts of
            // 1/GK of a block per worker) plus in-flight parts bound
            // another 4.
            ExecBackend::Grid { .. } => 6 * p.m * p.max_intermediate_cols(),
        };
        let staging = p.m * (p.input_cols() + p.output_cols());
        (workspace + staging) * self.dtype.bytes()
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} · {} · {} · {}",
            self.problem, self.dtype, self.device, self.backend
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimated_bytes_scales_with_dtype_backend_and_shape() {
        let p = KronProblem::uniform(8, 4, 2).unwrap(); // K = L = 16, inter = 8·16
        let single32 = PlanKey::new(p.clone(), crate::DType::F32, "v100");
        // workspace 2·128 + staging 8·32 = 512 elems · 4 bytes.
        assert_eq!(single32.estimated_bytes(), 512 * 4);
        // f64 doubles it.
        let single64 = PlanKey::new(p.clone(), crate::DType::F64, "v100");
        assert_eq!(single64.estimated_bytes(), 512 * 8);
        // A grid entry accounts more (distributed blocks + exchange).
        let grid = PlanKey::sharded(p, crate::DType::F32, "v100", 2, 2);
        assert!(grid.estimated_bytes() > single32.estimated_bytes());
        // Single-factor chains hold no intermediates, only staging.
        let one = KronProblem::new(4, vec![FactorShape::square(3)]).unwrap();
        let key = PlanKey::new(one, crate::DType::F32, "v100");
        assert_eq!(key.estimated_bytes(), 4 * (3 + 3) * 4);
    }

    #[test]
    fn uniform_sizes() {
        let p = KronProblem::uniform(1024, 8, 6).unwrap();
        assert_eq!(p.input_cols(), 8usize.pow(6));
        assert_eq!(p.output_cols(), 8usize.pow(6));
        assert_eq!(p.num_factors(), 6);
        assert!(p.is_uniform());
        assert_eq!(p.describe(), "M=1024, 8^6");
    }

    #[test]
    fn validation() {
        assert!(matches!(
            KronProblem::new(4, vec![]),
            Err(KronError::NoFactors)
        ));
        assert!(KronProblem::new(0, vec![FactorShape::square(2)]).is_err());
        assert!(KronProblem::new(4, vec![FactorShape::new(0, 2)]).is_err());
    }

    #[test]
    fn iteration_shapes_uniform() {
        let p = KronProblem::uniform(2, 4, 3).unwrap();
        let its: Vec<_> = p.iterations().collect();
        assert_eq!(its.len(), 3);
        // All intermediates stay at 64 columns for square factors.
        for (step, it) in its.iter().enumerate() {
            assert_eq!(it.factor_index, 2 - step);
            assert_eq!(it.input_cols, 64);
            assert_eq!(it.output_cols, 64);
            assert_eq!(it.slices, 16);
        }
    }

    #[test]
    fn iteration_shapes_rectangular() {
        // F1: 2×3, F2: 4×5 — X: M×8, Y: M×15.
        let p = KronProblem::new(1, vec![FactorShape::new(2, 3), FactorShape::new(4, 5)]).unwrap();
        assert_eq!(p.input_cols(), 8);
        assert_eq!(p.output_cols(), 15);
        let its: Vec<_> = p.iterations().collect();
        // First iteration: factor 2 (4×5): slices = 8/4 = 2, out = 2*5 = 10.
        assert_eq!(its[0].factor_index, 1);
        assert_eq!(its[0].slices, 2);
        assert_eq!(its[0].output_cols, 10);
        // Second: factor 1 (2×3): slices = 10/2 = 5, out = 15.
        assert_eq!(its[1].factor_index, 0);
        assert_eq!(its[1].slices, 5);
        assert_eq!(its[1].output_cols, 15);
        assert_eq!(p.max_intermediate_cols(), 15);
        assert_eq!(p.max_intermediate_elems(), 15);
    }

    #[test]
    fn max_intermediate_elems_scales_with_m() {
        let p = KronProblem::uniform(7, 4, 3).unwrap();
        assert_eq!(p.max_intermediate_elems(), 7 * 64);
        // Expanding factors: the input is not the largest intermediate.
        let q = KronProblem::new(3, vec![FactorShape::new(2, 8), FactorShape::new(2, 8)]).unwrap();
        assert_eq!(q.max_intermediate_cols(), 64);
        assert_eq!(q.max_intermediate_elems(), 3 * 64);
    }

    #[test]
    fn flops_uniform_matches_closed_form() {
        // For square P factors: flops = N · 2·M·P^N·P.
        let p = KronProblem::uniform(1024, 8, 6).unwrap();
        let expected = 6 * 2 * 1024u64 * 8u64.pow(6) * 8;
        assert_eq!(p.flops(), expected);
    }

    #[test]
    fn flops_match_paper_table1_scale() {
        // Sanity anchor from the paper: FastKron runs 64^3, M=1024 at
        // ~11.8 TFLOPS in 8.74 ms ⇒ ~1.0e11 FLOPs.
        let p = KronProblem::uniform(1024, 64, 3).unwrap();
        let gf = p.flops() as f64;
        assert!((0.9e11..1.2e11).contains(&gf), "flops = {gf:e}");
    }

    #[test]
    fn naive_flops_dominate() {
        let p = KronProblem::uniform(16, 8, 4).unwrap();
        assert!(p.naive_flops() > p.flops());
    }

    #[test]
    fn intermediate_accesses_uniform() {
        let p = KronProblem::uniform(4, 4, 2).unwrap();
        // Two iterations, each reading M*16 and writing M*16.
        assert_eq!(p.intermediate_accesses(), 2 * 4 * (16 + 16));
    }

    #[test]
    fn plan_keys_are_collision_free_across_distinct_shapes() {
        use crate::DType;
        use std::collections::HashSet;
        // A family of deliberately confusable shapes: same element counts,
        // same products, different decompositions. Every one must key
        // distinctly, plus the same shape must differ by dtype and device.
        let problems = vec![
            KronProblem::uniform(4, 4, 2).unwrap(),
            KronProblem::uniform(4, 2, 4).unwrap(),
            KronProblem::uniform(2, 4, 4).unwrap(),
            KronProblem::uniform(16, 4, 1).unwrap(),
            KronProblem::new(4, vec![FactorShape::new(2, 8), FactorShape::new(8, 2)]).unwrap(),
            KronProblem::new(4, vec![FactorShape::new(8, 2), FactorShape::new(2, 8)]).unwrap(),
            KronProblem::new(4, vec![FactorShape::new(16, 16)]).unwrap(),
        ];
        let mut keys = HashSet::new();
        for p in &problems {
            for dtype in [DType::F32, DType::F64] {
                for device in ["V100", "A100"] {
                    for (gm, gk) in [(1, 2), (2, 2), (2, 4)] {
                        assert!(
                            keys.insert(PlanKey::sharded(p.clone(), dtype, device, gm, gk)),
                            "duplicate key for {p} / {dtype} / {device} / {gm}x{gk}"
                        );
                    }
                    assert!(
                        keys.insert(PlanKey::new(p.clone(), dtype, device)),
                        "duplicate key for {p} / {dtype} / {device}"
                    );
                }
            }
        }
        assert_eq!(keys.len(), problems.len() * 4 * 4);
    }

    #[test]
    fn plan_key_equality_is_structural() {
        use crate::DType;
        let a = PlanKey::new(KronProblem::uniform(8, 4, 3).unwrap(), DType::F32, "V100");
        let b = PlanKey::new(KronProblem::uniform(8, 4, 3).unwrap(), DType::F32, "V100");
        assert_eq!(a, b);
        let mut hasher_input = std::collections::HashSet::new();
        hasher_input.insert(a);
        assert!(hasher_input.contains(&b));
        assert_eq!(b.to_string(), "M=8, 4^3 · float · V100 · single");
        let s = PlanKey::sharded(
            KronProblem::uniform(8, 4, 3).unwrap(),
            DType::F32,
            "V100",
            2,
            4,
        );
        assert_ne!(s, b);
        assert_eq!(s.to_string(), "M=8, 4^3 · float · V100 · grid{2×4}");
        assert_eq!(s.backend, ExecBackend::Grid { gm: 2, gk: 4 });
        assert_eq!(ExecBackend::default(), ExecBackend::SingleDevice);
    }

    #[test]
    fn describe_mixed() {
        let p = KronProblem::new(10, vec![FactorShape::new(5, 2), FactorShape::new(6, 5)]).unwrap();
        assert_eq!(p.describe(), "M=10, 5×2 ⊗ 6×5");
        let r = KronProblem::new(3, vec![FactorShape::new(4, 6); 2]).unwrap();
        assert_eq!(r.describe(), "M=3, (4×6)^2");
    }
}
