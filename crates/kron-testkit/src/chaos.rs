//! Seed-derived chaos serving traces: a mixed-dtype [`MixedServePlan`]
//! with a deterministic [`FaultPlan`] of scripted device faults
//! interleaved into the serve, plus the oracle that proves the
//! self-healing contract over both runtime backends.
//!
//! The contract under fault injection is the same bit-exact contract the
//! fault-free sweeps hold: every request the client submits resolves
//! `Ok` and equals its per-request planned execution **bit-for-bit** —
//! transient device faults are the runtime's problem (evict, rebuild,
//! retry, degrade), never the client's. Determinism comes from both ends:
//! the trace and the fault script derive from one seed, device events
//! fire on scripted sharded-batch sequence numbers, and the degrade
//! ladder bounds any storm (with the default [`RetryPolicy`], repeated
//! faults converge to single-device execution before the retry budget
//! runs out, so no scripted storm can surface to a client).
//!
//! [`RetryPolicy`]: kron_runtime::RetryPolicy

use crate::diff::DIST_GPUS;
use crate::gen::splitmix;
use crate::serve::{check_mixed_on_runtime, MixedServePlan};
use kron_runtime::{
    Backend, FaultEvent, FaultKind, FaultPlan, FaultTrigger, Runtime, RuntimeConfig,
};

/// A deterministic chaos drill: a mixed-dtype serving trace plus the
/// fault script to run against it, both derived from `seed` alone.
#[derive(Debug, Clone)]
pub struct ChaosServePlan {
    /// The serving trace (see [`MixedServePlan::deterministic`]).
    pub plan: MixedServePlan,
    /// The scripted faults, installed before the trace is served.
    pub faults: FaultPlan,
    /// The seed everything was derived from.
    pub seed: u64,
}

impl ChaosServePlan {
    /// Builds the drill for `seed` — fully deterministic. The script
    /// holds 2–4 device events on sharded-batch triggers within the
    /// trace's opening window: mostly panics (repeat 1–2, so some drills
    /// hammer one device toward its breaker), with an occasional
    /// zero-length stall (fires the slow-device machinery as a pure
    /// latency blip). The first event is always a panic, so every drill
    /// scripts at least one real fault.
    pub fn deterministic(seed: u64) -> Self {
        let plan = MixedServePlan::deterministic(seed);
        let mut state = seed ^ 0xc4a0_5f1d_e2b7_39ac;
        let n_events = 2 + (splitmix(&mut state) % 3) as usize;
        let mut faults = FaultPlan::new();
        for i in 0..n_events {
            let gpu = (splitmix(&mut state) % DIST_GPUS as u64) as usize;
            let trigger = FaultTrigger::OnShardedBatch(splitmix(&mut state) % 6);
            let repeat = 1 + (splitmix(&mut state) % 2) as u32;
            let kind = if i > 0 && splitmix(&mut state).is_multiple_of(4) {
                FaultKind::Stall { stall_us: 0 }
            } else {
                FaultKind::Panic
            };
            faults = faults.event(FaultEvent {
                gpu,
                trigger,
                repeat,
                kind,
            });
        }
        ChaosServePlan { plan, faults, seed }
    }

    /// Total scripted firing opportunities (`Σ repeat`).
    pub fn scheduled_repeats(&self) -> u64 {
        self.faults.events.iter().map(|e| u64::from(e.repeat)).sum()
    }

    fn panic_repeats(&self) -> u64 {
        self.faults
            .events
            .iter()
            .filter(|e| e.kind == FaultKind::Panic)
            .map(|e| u64::from(e.repeat))
            .sum()
    }
}

/// What a chaos drill observed on the distributed backend, for tests
/// that pin stronger expectations onto a known seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// Scripted firing opportunities consumed during the serve.
    pub fired: u64,
    /// `RuntimeStats::retries` after the serve.
    pub retries: u64,
    /// `RuntimeStats::recovered_requests` after the serve.
    pub recovered_requests: u64,
    /// `RuntimeStats::breaker_trips` after the serve.
    pub breaker_trips: u64,
}

fn fresh_runtime(backend: Backend) -> Runtime {
    // Mirrors the shared differential runtimes' shape, but fresh per
    // drill: fault plans and breaker state must never leak between
    // drills (or into the fault-free sweeps' shared runtimes).
    Runtime::new(RuntimeConfig {
        max_batch_rows: 64,
        batch_max_m: 16,
        max_queue: 256,
        backend,
        ..RuntimeConfig::default()
    })
}

/// The chaos differential oracle. Serves the drill's trace through a
/// fresh runtime per backend with the fault script installed:
///
/// * **Single-node** — device events are inert there (no sharded
///   executes), which is itself asserted: the script stays fully
///   pending, and the trace matches the planned execution bit-for-bit.
/// * **Distributed** — scripted faults fire mid-trace; every request
///   must still resolve `Ok` bit-for-bit (transparent recovery), every
///   fired panic must be visible as a retry in the stats ledger, and
///   recovery accounting must be consistent.
///
/// Returns the distributed backend's [`ChaosOutcome`] so pinned-seed
/// tests can assert the drill actually drew blood.
pub fn check_chaos_serve_plan(drill: &ChaosServePlan) -> Result<ChaosOutcome, String> {
    let seed = drill.seed;
    let scheduled = drill.scheduled_repeats();

    // Single-node: the armed plan must be inert and value-invisible.
    let single = fresh_runtime(Backend::SingleNode);
    single
        .install_fault_plan(drill.faults.clone())
        .map_err(|e| format!("chaos {seed}: single-node install failed: {e}"))?;
    check_mixed_on_runtime("chaos-single", &single, &drill.plan)?;
    let pending = single.pending_fault_events() as u64;
    if pending != scheduled {
        return Err(format!(
            "chaos {seed}: device faults must be inert on single-node, but \
             {} of {scheduled} scripted repeats fired",
            scheduled - pending,
        ));
    }

    // Distributed: faults fire, clients must never notice.
    let dist = fresh_runtime(Backend::Distributed {
        gpus: DIST_GPUS,
        p2p: false,
    });
    dist.install_fault_plan(drill.faults.clone())
        .map_err(|e| format!("chaos {seed}: dist install failed: {e}"))?;
    check_mixed_on_runtime("chaos-dist", &dist, &drill.plan)?;

    let stats = dist.stats();
    let fired = scheduled - dist.pending_fault_events() as u64;
    let stall_repeats = scheduled - drill.panic_repeats();
    let min_retries = fired.saturating_sub(stall_repeats);
    if stats.retries < min_retries {
        return Err(format!(
            "chaos {seed}: {fired} scripted repeats fired (≥ {min_retries} \
             panics) but the ledger shows only {} retries — a fault was \
             absorbed without being recorded",
            stats.retries,
        ));
    }
    if min_retries > 0 && stats.recovered_requests == 0 {
        return Err(format!(
            "chaos {seed}: panics fired and every request resolved Ok, yet \
             recovered_requests is 0 — recovery went unaccounted"
        ));
    }
    if stats.recovered_requests > stats.served {
        return Err(format!(
            "chaos {seed}: recovered_requests {} exceeds served {}",
            stats.recovered_requests, stats.served,
        ));
    }
    Ok(ChaosOutcome {
        fired,
        retries: stats.retries,
        recovered_requests: stats.recovered_requests,
        breaker_trips: stats.breaker_trips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drills_are_deterministic_and_vary_by_seed() {
        let a = ChaosServePlan::deterministic(11);
        let b = ChaosServePlan::deterministic(11);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.plan.requests.len(), b.plan.requests.len());
        let c = ChaosServePlan::deterministic(12);
        assert!(
            a.faults != c.faults || a.plan.requests.len() != c.plan.requests.len(),
            "different seeds must differ"
        );
    }

    #[test]
    fn every_drill_scripts_a_real_fault_on_a_real_device() {
        for seed in 0..32 {
            let drill = ChaosServePlan::deterministic(seed);
            assert!(
                (2..=4).contains(&drill.faults.events.len()),
                "seed {seed}: {} events",
                drill.faults.events.len()
            );
            assert_eq!(drill.faults.events[0].kind, FaultKind::Panic);
            for e in &drill.faults.events {
                assert!(
                    e.gpu < DIST_GPUS,
                    "seed {seed}: device {} off-machine",
                    e.gpu
                );
                assert!((1..=2).contains(&e.repeat));
                assert!(matches!(e.trigger, FaultTrigger::OnShardedBatch(n) if n < 6));
            }
        }
    }

    #[test]
    fn known_drill_recovers_transparently() {
        let outcome = check_chaos_serve_plan(&ChaosServePlan::deterministic(1)).unwrap();
        assert!(outcome.fired >= 1, "outcome: {outcome:?}");
        assert!(outcome.retries >= 1, "outcome: {outcome:?}");
    }
}
