//! A line-oriented Rust source scanner for the `analyze` lint pass: a
//! small lexer that separates code from comments and string literals
//! (so tokens inside either never trip a rule), plus region analyses —
//! `#[cfg(test)]` / `#[test]` item extents and named-function body
//! extents — built on brace depth over the code channel.
//!
//! Deliberately not a full parser: the workspace's style (rustfmt'd,
//! one item per line) makes line granularity exact in practice, and the
//! allowlist absorbs any corner the heuristics miss.

use std::collections::HashSet;

/// One source line, split into channels by the lexer.
pub struct Line {
    /// The original text (allowlist matching runs on this).
    pub raw: String,
    /// Code only: comments and string-literal contents blanked out.
    pub code: String,
    /// Comment text only (line, block, and doc comments).
    pub comment: String,
    /// Inside a `#[cfg(test)]` / `#[cfg(all(test, ..))]` / `#[test]`
    /// item, the attribute line itself included.
    pub in_test_region: bool,
}

pub struct FileScan {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl FileScan {
    pub fn new(source: &str) -> Self {
        let mut lines = lex(source);
        mark_test_regions(&mut lines);
        FileScan { lines }
    }

    /// Whether the line's code channel has the `unsafe` keyword.
    pub fn has_unsafe_token(&self, idx: usize) -> bool {
        contains_word(&self.lines[idx].code, "unsafe")
    }

    /// Line indices (0-based) inside the bodies of the named functions.
    pub fn function_body_lines(&self, names: &[&str]) -> HashSet<usize> {
        let mut out = HashSet::new();
        if names.is_empty() {
            return out;
        }
        for (idx, line) in self.lines.iter().enumerate() {
            let is_decl = names.iter().any(|n| {
                line.code.find(&format!("fn {n}")).is_some_and(|at| {
                    match line.code[at..].chars().nth(3 + n.len()) {
                        // Exact-name match: `fn record(` must not claim
                        // `fn record_all(`.
                        Some(c) => c == '(' || c == '<',
                        None => false,
                    }
                })
            });
            if !is_decl {
                continue;
            }
            // Walk forward to the body's opening brace, then match it.
            let mut depth = 0u32;
            let mut opened = false;
            for (j, l) in self.lines.iter().enumerate().skip(idx) {
                for c in l.code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth = depth.saturating_sub(1),
                        // A semicolon before any brace is a bodyless
                        // declaration (trait method, extern) — no body
                        // region to mark.
                        ';' if !opened => return out,
                        _ => {}
                    }
                }
                out.insert(j);
                if opened && depth == 0 {
                    break;
                }
            }
        }
        out
    }
}

/// Keyword search that respects identifier boundaries (`unsafe` must
/// not match `unsafe_code`).
fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(at) = code[start..].find(word) {
        let abs = start + at;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !code[abs + word.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

fn lex(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut state = State::Normal;
    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        // A line comment never survives a newline.
        if state == State::LineComment {
            state = State::Normal;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Normal => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.extend(&chars[i..]);
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' | 'b'
                        if raw_string_hashes(&chars[i..]).is_some()
                            // Identifier chars before `r"` mean this `r`
                            // is the tail of a name, not a prefix.
                            && (i == 0
                                || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')) =>
                    {
                        let hashes = raw_string_hashes(&chars[i..]).expect("checked above");
                        state = State::RawStr(hashes);
                        // Skip prefix + hashes + opening quote.
                        let prefix = chars[i..]
                            .iter()
                            .take_while(|&&c| c == 'r' || c == 'b' || c == '#')
                            .count();
                        code.push('"');
                        i += prefix + 1;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes
                        // within a few chars or starts with a backslash.
                        if next == Some('\\') {
                            // Escaped char literal: consume to the
                            // closing quote.
                            code.push('\'');
                            i += 1;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push('\'');
                            i += 3;
                        } else {
                            // A lifetime — keep the tick, lex on.
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => unreachable!("consumed to end of line above"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Normal
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        state = State::Normal;
                        code.push('"');
                        i += 1;
                    }
                    _ => i += 1,
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars[i + 1..], hashes) {
                        state = State::Normal;
                        code.push('"');
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        lines.push(Line {
            raw: raw.to_string(),
            code,
            comment,
            in_test_region: false,
        });
    }
    lines
}

/// If `chars` starts a raw string literal (`r"`, `r#"`, `br"` …),
/// returns its hash count.
fn raw_string_hashes(chars: &[char]) -> Option<u32> {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    (chars.get(i) == Some(&'"')).then_some(hashes)
}

fn closes_raw_string(after_quote: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| after_quote.get(k) == Some(&'#'))
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items: from the
/// attribute line to the close of the item's brace block.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim().to_string();
        let is_test_attr = code.starts_with("#[cfg(test)]")
            || code.starts_with("#[cfg(all(test")
            || code.starts_with("#[test]")
            || code.starts_with("#[cfg(all(test,");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Mark from the attribute through the attached item's block.
        let mut depth = 0u32;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            lines[j].in_test_region = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            if opened && depth == 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_channel() {
        let scan = FileScan::new(
            "let s = \"unsafe { x.unwrap() }\"; // SAFETY: not really code\n\
             /* unsafe in a block comment */ let t = 1;\n",
        );
        assert!(!scan.has_unsafe_token(0));
        assert!(!scan.lines[0].code.contains("unwrap"));
        assert!(scan.lines[0].comment.contains("SAFETY:"));
        assert!(!scan.has_unsafe_token(1));
        assert!(scan.lines[1].code.contains("let t"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let scan = FileScan::new("let s = r#\"panic!(\"inside\")\"#; f();\n");
        assert!(!scan.lines[0].code.contains("panic!"));
        assert!(scan.lines[0].code.contains("f();"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let scan = FileScan::new("fn f<'a>(x: &'a str) -> &'a str { unsafe { g(x) } }\n");
        assert!(scan.has_unsafe_token(0));
    }

    #[test]
    fn unsafe_word_boundary() {
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("unsafe_code", "unsafe"));
        assert!(!contains_word("deny_unsafe", "unsafe"));
    }

    #[test]
    fn test_regions_cover_the_attached_block() {
        let scan = FileScan::new(
            "fn hot() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { assert!(true); }\n\
             }\n\
             fn also_hot() {}\n",
        );
        assert!(!scan.lines[0].in_test_region);
        assert!(scan.lines[1].in_test_region);
        assert!(scan.lines[4].in_test_region);
        assert!(scan.lines[5].in_test_region);
        assert!(!scan.lines[6].in_test_region);
    }

    #[test]
    fn function_bodies_are_located_by_name() {
        let scan = FileScan::new(
            "impl R {\n\
                 pub fn record(&self) {\n\
                     touch();\n\
                 }\n\
                 pub fn record_all(&self) {\n\
                     other();\n\
                 }\n\
             }\n",
        );
        let body = scan.function_body_lines(&["record"]);
        assert!(body.contains(&1) && body.contains(&2) && body.contains(&3));
        assert!(!body.contains(&5), "matched the wrong function by prefix");
    }
}
