//! Analytic performance models for the library building blocks the
//! baseline systems call into: cuBLAS GEMM and the batched 3-D inner
//! transpose. FastKron's own kernels are *traced*, not modelled — these
//! closed forms exist because GPyTorch/PyKronecker call opaque vendor
//! kernels whose behaviour the paper characterizes only externally
//! (Table 1), so we model them at that same granularity.

use crate::device::DeviceSpec;
use kron_core::DType;

/// cuBLAS-like GEMM timing for `C[m×n] = A[m×k] · B[k×n]`.
///
/// The paper's observation (§2.1, Table 1) is that cuBLAS is slow for the
/// shuffle algorithm's shape — a very tall `A` against a tiny `B` — because
/// its kernels tile the output in ≥64-column panels; with only `n = Q`
/// useful columns, arithmetic utilization collapses proportionally to
/// `n/64`. Calibration against Table 1 (V100, f32):
///
/// | (P,N)  | paper cuBLAS | this model |
/// |--------|--------------|------------|
/// | (8,6)  | 26 ms        | ~19 ms     |
/// | (16,5) | 64 ms        | ~58 ms     |
/// | (32,4) | 44 ms        | ~47 ms     |
/// | (64,3) | 8.7 ms       | ~8.8 ms    |
#[derive(Debug, Clone)]
pub struct CublasModel {
    device: DeviceSpec,
    /// Best-case fraction of peak cuBLAS sustains on large square GEMMs.
    pub max_efficiency: f64,
    /// Output-panel width the efficiency argument is relative to.
    pub tile_n: usize,
    /// Fraction of DRAM bandwidth streaming GEMM operands sustains.
    pub mem_efficiency: f64,
}

impl CublasModel {
    /// Model with constants calibrated against Table 1 of the paper.
    pub fn new(device: &DeviceSpec) -> Self {
        CublasModel {
            device: device.clone(),
            max_efficiency: 0.78,
            tile_n: 64,
            mem_efficiency: 0.75,
        }
    }

    /// Simulated seconds for one GEMM call.
    pub fn gemm_time(&self, m: usize, k: usize, n: usize, dtype: DType) -> f64 {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let n_eff = (n as f64 / self.tile_n as f64).min(1.0);
        let compute = flops / (self.device.peak_flops(dtype) * self.max_efficiency * n_eff);
        let bytes = ((m * k + k * n + m * n) * dtype.bytes()) as f64;
        let memory = bytes / (self.device.dram_bw * self.mem_efficiency);
        compute.max(memory) + self.device.kernel_launch_overhead
    }

    /// Bytes of DRAM traffic one GEMM call moves (for report counters).
    pub fn gemm_bytes(&self, m: usize, k: usize, n: usize, dtype: DType) -> u64 {
        ((m * k + k * n + m * n) * dtype.bytes()) as u64
    }
}

/// Batched inner-transpose timing: `M × d1 × d2 → M × d2 × d1`.
///
/// GPyTorch/PyKronecker realize step (b) of the shuffle algorithm with a
/// strided copy kernel (`.transpose(1,2).contiguous()`); it is purely
/// memory-bound and sustains well below copy bandwidth because one side of
/// the access is strided at `d2`-element granularity. The paper measures
/// the resulting step at 178–285 GB/s on a 900 GB/s V100 (Table 1);
/// `efficiency = 0.30` reproduces that band.
#[derive(Debug, Clone)]
pub struct TransposeModel {
    device: DeviceSpec,
    /// Sustained fraction of DRAM bandwidth.
    pub efficiency: f64,
}

impl TransposeModel {
    /// Model with constants calibrated against Table 1 of the paper.
    pub fn new(device: &DeviceSpec) -> Self {
        TransposeModel {
            device: device.clone(),
            efficiency: 0.30,
        }
    }

    /// Simulated seconds to transpose the two inner dimensions of an
    /// `m × d1 × d2` tensor.
    pub fn transpose_time(&self, m: usize, d1: usize, d2: usize, dtype: DType) -> f64 {
        let bytes = self.transpose_bytes(m, d1, d2, dtype) as f64;
        bytes / (self.device.dram_bw * self.efficiency) + self.device.kernel_launch_overhead
    }

    /// Bytes moved (read + write).
    pub fn transpose_bytes(&self, m: usize, d1: usize, d2: usize, dtype: DType) -> u64 {
        2 * (m * d1 * d2 * dtype.bytes()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::V100;

    #[test]
    fn cublas_table1_calibration() {
        // Table 1, f32, M=1024: per-iteration GEMM is (M·K/P × P)·(P×P),
        // N iterations. Paper's measured cuBLAS totals below.
        let model = CublasModel::new(&V100);
        let cases: &[(usize, usize, f64)] = &[
            (8, 6, 26e-3),
            (16, 5, 64e-3),
            (32, 4, 44e-3),
            (64, 3, 8.7e-3),
        ];
        for &(p, n, paper_s) in cases {
            let k: usize = p.pow(n as u32);
            let rows = 1024 * k / p;
            let t: f64 = (0..n)
                .map(|_| model.gemm_time(rows, p, p, DType::F32))
                .sum();
            let ratio = t / paper_s;
            assert!(
                (0.5..=1.5).contains(&ratio),
                "P={p} N={n}: model {t:.4}s vs paper {paper_s}s (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn cublas_efficiency_grows_with_n() {
        let model = CublasModel::new(&V100);
        // Same FLOPs, wider panel → faster.
        let t8 = model.gemm_time(1 << 22, 8, 8, DType::F32);
        let t64 = model.gemm_time(1 << 16, 64, 64, DType::F32);
        let f8 = 2.0 * (1u64 << 22) as f64 * 64.0;
        let f64_ = 2.0 * (1u64 << 16) as f64 * 4096.0;
        assert!(
            f64_ / t64 > 3.0 * f8 / t8,
            "skinny GEMM should be ≫ slower per FLOP"
        );
    }

    #[test]
    fn transpose_table1_calibration() {
        // Table 1 transpose totals: N iterations over M×(K/P)×P tensors.
        let model = TransposeModel::new(&V100);
        let cases: &[(usize, usize, f64)] = &[
            (8, 6, 45e-3),
            (16, 5, 169e-3),
            (32, 4, 159e-3),
            (64, 3, 36e-3),
        ];
        for &(p, n, paper_s) in cases {
            let k: usize = p.pow(n as u32);
            let t: f64 = (0..n)
                .map(|_| model.transpose_time(1024, k / p, p, DType::F32))
                .sum();
            let ratio = t / paper_s;
            assert!(
                (0.4..=1.6).contains(&ratio),
                "P={p} N={n}: model {t:.4}s vs paper {paper_s}s (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn transpose_dominates_skinny_shuffle_iteration() {
        // The paper's headline: transpose ≈ 60–80% of GPyTorch time for
        // small P. Check P=8 proportions.
        let cb = CublasModel::new(&V100);
        let tr = TransposeModel::new(&V100);
        let k = 8usize.pow(6);
        let gemm: f64 = (0..6)
            .map(|_| cb.gemm_time(1024 * k / 8, 8, 8, DType::F32))
            .sum();
        let trans: f64 = (0..6)
            .map(|_| tr.transpose_time(1024, k / 8, 8, DType::F32))
            .sum();
        let frac = trans / (gemm + trans);
        assert!((0.55..=0.85).contains(&frac), "transpose fraction {frac}");
    }

    #[test]
    fn byte_counters() {
        let cb = CublasModel::new(&V100);
        assert_eq!(cb.gemm_bytes(10, 4, 2, DType::F32), (40 + 8 + 20) * 4);
        let tr = TransposeModel::new(&V100);
        assert_eq!(tr.transpose_bytes(2, 3, 4, DType::F64), 2 * 24 * 8);
    }
}
