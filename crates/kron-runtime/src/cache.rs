//! The shape-keyed plan + workspace cache: the reason steady-state serving
//! does zero planning and zero allocation per request.
//!
//! Entries are indexed by `(model id, row capacity)` — a hash over two
//! integers, so lookups themselves are allocation-free — and each entry
//! carries the full [`PlanKey`] (problem shape × dtype × device) for
//! introspection and as the structural identity the integer key stands in
//! for. A capacity-`max_batch_rows` entry serves every small-`M` request
//! and batch of its model; solo large-`M` requests get entries at
//! power-of-two capacities so nearby sizes share workspaces instead of
//! fragmenting the cache.

use crate::runtime::{ModelInner, StatsInner};
use fastkron_core::{FastKron, KronPlan, Workspace};
use gpu_sim::device::DeviceSpec;
use kron_core::{Element, KronProblem, Matrix, PlanKey, Result};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::Ordering;

/// One cached execution state: the autotuned plan, the reusable ping-pong
/// workspace, and (for batch-capacity entries) the gather/scatter buffers.
pub(crate) struct CachedPlan<T: Element> {
    /// Structural identity of this entry.
    pub(crate) key: PlanKey,
    /// The autotuned plan (kept for launch counts / simulated pricing; the
    /// CPU fused path's numbers do not depend on tile choices).
    #[allow(dead_code)]
    pub(crate) plan: KronPlan<T>,
    /// Reusable execution workspace sized for the entry's row capacity.
    pub(crate) workspace: Workspace<T>,
    /// Row-stacked input/output staging for multi-request batches,
    /// allocated on first batched use.
    batch: Option<(Matrix<T>, Matrix<T>)>,
}

impl<T: Element> CachedPlan<T> {
    /// The batch staging buffers, allocating them on first use.
    pub(crate) fn batch_buffers(&mut self) -> &mut (Matrix<T>, Matrix<T>) {
        if self.batch.is_none() {
            let problem = &self.key.problem;
            self.batch = Some((
                Matrix::zeros(problem.m, problem.input_cols()),
                Matrix::zeros(problem.m, problem.output_cols()),
            ));
        }
        self.batch.as_mut().expect("just ensured")
    }

    /// Runs the workspace over the staged batch's first `rows` rows.
    pub(crate) fn run_batch(&mut self, factors: &[&Matrix<T>], rows: usize) -> Result<()> {
        let (bx, by) = self.batch.as_mut().expect("gather before run");
        self.workspace.execute_rows(bx, factors, by, rows)
    }

    /// Read access to the staged batch output (after [`Self::run_batch`]).
    pub(crate) fn batch_y(&self) -> &Matrix<T> {
        &self.batch.as_ref().expect("gather before scatter").1
    }
}

/// Plan/workspace cache keyed by `(model id, row capacity)`.
pub struct PlanCache<T: Element> {
    device: DeviceSpec,
    entries: HashMap<(u64, usize), CachedPlan<T>>,
}

impl<T: Element> PlanCache<T> {
    /// Creates an empty cache tuning plans for `device`.
    pub fn new(device: DeviceSpec) -> Self {
        PlanCache {
            device,
            entries: HashMap::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The structural identities of every cached entry.
    pub fn keys(&self) -> impl Iterator<Item = &PlanKey> {
        self.entries.values().map(|e| &e.key)
    }

    /// Looks up (or plans, tunes, and allocates) the execution state for
    /// `model` at `capacity` rows, counting the hit or miss.
    pub(crate) fn get_or_create(
        &mut self,
        model: &ModelInner<T>,
        capacity: usize,
        stats: &StatsInner,
    ) -> Result<&mut CachedPlan<T>> {
        match self.entries.entry((model.id, capacity)) {
            Entry::Occupied(e) => {
                stats.plan_hits.fetch_add(1, Ordering::Relaxed);
                Ok(e.into_mut())
            }
            Entry::Vacant(v) => {
                stats.plan_misses.fetch_add(1, Ordering::Relaxed);
                let problem = KronProblem::new(capacity, model.shapes.clone())?;
                let plan = FastKron::plan::<T>(&problem, &self.device)?;
                let workspace = plan.workspace();
                let key = PlanKey::new(problem, T::DTYPE, self.device.name);
                Ok(v.insert(CachedPlan {
                    key,
                    plan,
                    workspace,
                    batch: None,
                }))
            }
        }
    }
}
