//! Kronecker graphs (Table 4 rows 17–19): the adjacency structure of a
//! stochastic Kronecker graph is the N-fold Kronecker power of a small
//! initiator matrix; seed-vector propagation through the graph is a
//! Kron-Matmul. This example propagates a batch of indicator vectors
//! through a 3×3-initiator graph and reports the simulated-GPU speedup of
//! FastKron over the shuffle algorithm for the workload.
//!
//! Run with `cargo run --release --example kron_graphs`.

use fastkron::baselines::{Engine, FastKronEngine, ShuffleEngine};
use fastkron::prelude::*;
use kron_core::Matrix;

fn main() {
    // Leskovec-style initiator: probabilities of edge blocks.
    let initiator =
        Matrix::<f64>::from_vec(3, 3, vec![0.9, 0.5, 0.1, 0.5, 0.3, 0.2, 0.1, 0.2, 0.8])
            .expect("initiator");
    let levels = 7; // 3^7 = 2187 vertices
    let problem = KronProblem::uniform(8, 3, levels).expect("shape");
    let vertices = problem.input_cols();

    // A batch of 8 seed distributions over the vertices.
    let seeds = Matrix::<f64>::from_fn(8, vertices, |r, c| {
        if c % (r + 2) == 0 {
            1.0 / vertices as f64
        } else {
            0.0
        }
    });
    let factors: Vec<&Matrix<f64>> = (0..levels).map(|_| &initiator).collect();

    // One step of probability propagation: s' = s · (⊗ initiator).
    let engine = FastKronEngine::new(&V100);
    let propagated = engine.execute(&seeds, &factors).expect("propagate");
    let mass: f64 = propagated.row(0).iter().sum();
    println!("Propagated 8 seed vectors over a 3^{levels} = {vertices}-vertex Kronecker graph");
    println!("Row-0 probability mass after one step: {mass:.4}");

    // Simulated device comparison for this exact workload (Table 4 id 17).
    let big = KronProblem::uniform(1024, 3, 7).expect("table-4 case");
    let t_fk = Engine::<f64>::simulate(&engine, &big).unwrap().seconds;
    let t_gp = Engine::<f64>::simulate(&ShuffleEngine::new(&V100), &big)
        .unwrap()
        .seconds;
    println!(
        "Table 4 id 17 (M=1024, 3^7): FastKron {:.2} ms vs GPyTorch {:.2} ms ({:.1}x)",
        t_fk * 1e3,
        t_gp * 1e3,
        t_gp / t_fk
    );
}
