//! The shape-keyed plan + workspace cache: the reason steady-state serving
//! does zero planning and zero allocation per request — now dtype-erased
//! and byte-accounted.
//!
//! Entries are indexed by `(DType, factor-shape-chain hash, row capacity)`
//! — a hash over three small values, so lookups themselves are
//! allocation-free — and each entry carries the full [`PlanKey`] (problem
//! shape × dtype × device × backend/grid) for introspection and as the
//! structural identity the integer key stands in for (every hit
//! re-verifies the full chain against the entry's key, so a 64-bit hash
//! collision costs one rebuild, never a wrong-shape workspace). Keying on
//! *shapes* rather than model identity means same-shape models — the
//! multi-tenant case — share plans, workspaces, and sharded engines:
//! execution state depends only on shapes; factor values arrive with each
//! execute. A capacity-`max_batch_rows` entry serves every small-`M`
//! request and batch of its shape; solo large-`M` requests get entries at
//! power-of-two capacities so nearby sizes share workspaces instead of
//! fragmenting the cache.
//!
//! ## One cache for both dtypes
//!
//! The map stores [`ErasedPlan`] — an `f32`/`f64` enum over the typed
//! [`CachedPlan<T>`] — so one cache, one [`CachePolicy`], and one LRU
//! order span all traffic a mixed-dtype runtime serves. Eviction
//! pressure from a burst of `f64` models can reclaim idle `f32` entries
//! and vice versa: the bounds are global, which is the point of serving
//! both dtypes through one runtime. Typed access in and out goes through
//! the sealed [`crate::runtime::sealed::ErasedDtype`] hooks — enum
//! dispatch, no `Box<dyn>` anywhere near the hot path.
//!
//! ## Bounded lifecycle
//!
//! Left unbounded, a many-model deployment leaks: every `Distributed`
//! entry pins `GM·GK` parked simulated-device threads plus per-device
//! buffers forever. [`CachePolicy`] bounds the cache three ways:
//!
//! * **LRU capacity** (`max_entries`) — before building an entry that
//!   would exceed the bound, the least-recently-used unpinned entry is
//!   evicted, so the number of live engines never exceeds the bound (the
//!   lifecycle tests assert this by counting live simulated-device
//!   threads through [`kron_dist::live_sim_worker_threads`]).
//! * **Byte budget** (`max_bytes`) — every entry is accounted at its
//!   [`PlanKey::estimated_bytes`] (workspace + batch staging + engine
//!   footprint), and LRU eviction also runs until the new entry's
//!   estimate fits the budget *before* it builds. An entry whose estimate
//!   alone exceeds the whole budget fails with the documented
//!   [`KronError::CacheBudgetExceeded`] — no amount of eviction could
//!   admit it. The resident total is the
//!   [`crate::RuntimeStats::cached_bytes`] gauge.
//! * **Idle timeout** (`max_idle_us`) — [`PlanCache::sweep_idle`] evicts
//!   unpinned entries whose last use is older than the timeout on the
//!   runtime's [`Clock`]; the scheduler sweeps at the start of every
//!   serve cycle, and [`crate::Runtime::sweep`] does it on demand.
//!
//! Dropping an entry's last reference tears its state down synchronously:
//! a `Sharded` entry's [`kron_dist::ShardedEngine`] joins all `GM·GK`
//! worker threads in its `Drop`.
//!
//! ## Pinning
//!
//! Lookups hand out a [`PinnedEntry`] — an `Arc` to the entry plus a pin
//! count — so an in-flight batch can never have its engine dropped
//! underneath it: policy eviction (LRU, bytes, and idle) skips pinned
//! entries entirely, and the targeted post-`DeviceFailure` eviction
//! ([`PlanCache::evict_failed`]) merely detaches the entry from the map —
//! the engine lives until the last pin drops. [`crate::Runtime::pin_model`]
//! exposes the same mechanism to clients for keeping a hot model resident.
//!
//! Evictions and rebuilds are counted in [`crate::RuntimeStats`]
//! (`evictions`, `rebuilds`, and the `cached_entries` / `cached_bytes`
//! gauges).

use crate::clock::Clock;
use crate::metrics::MetricsHub;
use crate::runtime::sealed::ErasedDtype;
use crate::runtime::{Backend, ModelInner, StatsInner};
use crate::trace::{EvictReason, ServeEventKind};
use crossbeam::sync::atomic::{AtomicUsize, Ordering};
use fastkron_core::{FastKron, KronPlan, Workspace};
use gpu_sim::device::DeviceSpec;
use gpu_sim::ExecSummary;
use kron_core::{DType, Element, KronError, KronProblem, Matrix, PlanKey, Result};
use kron_dist::{CommModel, GpuGrid, ShardedEngine, Watchdog};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

/// The scheduler lane a plan identity hashes to — the per-shard pinning
/// rule: every request for one `(dtype, shape_key)` plan identity lands
/// on one lane, so a model's whole batch window (and its cache-entry
/// locality) stays on one service thread. A Fibonacci multiplicative
/// mix spreads the shape-key bits (shape keys of related models differ
/// in few bits) and folds the dtype in, so mixed-dtype traffic over the
/// same shapes still splits across lanes.
///
/// Pure and stable for a given lane count — the submit path, the bypass
/// eligibility claim, and [`crate::Runtime::lane_for`] all agree on it.
pub(crate) fn lane_of(dtype: DType, shape_key: u64, lanes: usize) -> usize {
    if lanes <= 1 {
        return 0;
    }
    const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let h = (shape_key ^ (dtype as u64).wrapping_mul(MIX)).wrapping_mul(MIX);
    ((h >> 32) % lanes as u64) as usize
}

/// Bounds on the plan cache's resident entries (and therefore on live
/// engines, workspaces, staging buffers, and — under the `Distributed`
/// backend — parked simulated-device threads). One policy spans every
/// dtype the runtime serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Maximum resident entries. When a build would exceed this, the
    /// least-recently-used unpinned entry is evicted first. Pinned
    /// entries are never evicted, so a fully-pinned cache may temporarily
    /// exceed the bound — an explicit client override, not a leak.
    pub max_entries: usize,
    /// Evict entries idle longer than this many microseconds on the
    /// runtime's clock (`None` disables idle eviction). Enforced at the
    /// start of every scheduler cycle and by [`crate::Runtime::sweep`].
    pub max_idle_us: Option<u64>,
    /// Byte budget over every resident entry's estimated footprint
    /// ([`PlanKey::estimated_bytes`]: workspace + batch staging + engine
    /// blocks), across both dtypes (`None` disables byte accounting).
    /// LRU eviction runs until a new entry's estimate fits *before* it
    /// builds; an entry larger than the whole budget fails with
    /// [`KronError::CacheBudgetExceeded`]. As with `max_entries`, pinned
    /// entries may hold the total over budget until released.
    pub max_bytes: Option<usize>,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy {
            max_entries: usize::MAX,
            max_idle_us: None,
            max_bytes: None,
        }
    }
}

/// The execution state behind one cache entry.
pub(crate) enum Compute<T: Element> {
    /// Single-device fused path: the autotuned plan (kept for launch
    /// counts / simulated pricing) and its reusable workspace.
    Local {
        /// The autotuned plan the workspace was derived from (boxed to
        /// keep the variant lean; it is introspection-only).
        #[allow(dead_code)]
        plan: Box<KronPlan<T>>,
        /// Reusable ping-pong execution workspace.
        workspace: Workspace<T>,
    },
    /// Sharded across the simulated GPU grid (boxed: the engine carries
    /// its device spec, grid state, and lazy report, dwarfing a
    /// workspace; it prices its own simulation internally).
    Sharded(Box<ShardedEngine<T>>),
}

/// One cached execution state: the structural key, the compute state, and
/// (for batch-capacity entries) the gather/scatter staging buffers.
pub(crate) struct CachedPlan<T: Element> {
    /// Structural identity of this entry.
    pub(crate) key: PlanKey,
    /// The compute state requests execute through.
    pub(crate) compute: Compute<T>,
    /// Row-stacked input/output staging for multi-request batches (and for
    /// sharded solos, which need padding), allocated on first use.
    batch: Option<(Matrix<T>, Matrix<T>)>,
}

impl<T: Element> CachedPlan<T> {
    /// Whether requests through this entry execute sharded.
    pub(crate) fn is_sharded(&self) -> bool {
        matches!(self.compute, Compute::Sharded(_))
    }

    /// The batch staging buffers, allocating them on first use.
    pub(crate) fn batch_buffers(&mut self) -> &mut (Matrix<T>, Matrix<T>) {
        if self.batch.is_none() {
            let problem = &self.key.problem;
            self.batch = Some((
                Matrix::zeros(problem.m, problem.input_cols()),
                Matrix::zeros(problem.m, problem.output_cols()),
            ));
        }
        self.batch.as_mut().expect("just ensured")
    }

    /// Arms a one-shot device fault on a sharded entry; returns whether
    /// the entry could take it (Local entries have no devices to fault).
    pub(crate) fn arm_fault(&mut self, gpu: usize) -> bool {
        match &mut self.compute {
            Compute::Sharded(engine) => engine.inject_fault(gpu).is_ok(),
            Compute::Local { .. } => false,
        }
    }

    /// Arms a one-shot `stall_us` stall on device `gpu` of a sharded
    /// entry (the engine's watchdog converts a stall past its budget into
    /// [`KronError::DeviceTimeout`]); returns whether the entry could
    /// take it.
    pub(crate) fn arm_stall(&mut self, gpu: usize, stall_us: u64) -> bool {
        match &mut self.compute {
            Compute::Sharded(engine) => engine.inject_stall(gpu, stall_us).is_ok(),
            Compute::Local { .. } => false,
        }
    }

    /// The `{GM, GK}` grid a sharded entry executes over; `None` for
    /// local entries. Reveals degraded builds to receipts and tests.
    pub(crate) fn grid(&self) -> Option<GpuGrid> {
        match &self.compute {
            Compute::Sharded(engine) => Some(engine.grid()),
            Compute::Local { .. } => None,
        }
    }

    /// Runs the compute state over the staged batch's first `rows` rows.
    /// Sharded entries zero-pad up to the next `GM` multiple (the padding
    /// always fits: the capacity is a `GM` multiple ≥ `rows`).
    pub(crate) fn run_batch(&mut self, factors: &[&Matrix<T>], rows: usize) -> Result<()> {
        let (bx, by) = self.batch.as_mut().expect("gather before run");
        match &mut self.compute {
            Compute::Local { workspace, .. } => workspace.execute_rows(bx, factors, by, rows),
            Compute::Sharded(engine) => {
                let gm = engine.grid().gm;
                let padded = rows.div_ceil(gm) * gm;
                if padded > rows {
                    let k = engine.problem().input_cols();
                    bx.as_mut_slice()[rows * k..padded * k].fill(T::ZERO);
                }
                engine.execute_rows(bx, factors, by, padded)
            }
        }
    }

    /// Read access to the staged batch output (after [`Self::run_batch`]).
    pub(crate) fn batch_y(&self) -> &Matrix<T> {
        &self.batch.as_ref().expect("gather before scatter").1
    }

    /// Executes directly from/to the caller's buffers — the staging-free
    /// solo path. Local entries only; sharded solos go through the staged
    /// batch path (they may need row padding).
    pub(crate) fn run_rows(
        &mut self,
        x: &Matrix<T>,
        factors: &[&Matrix<T>],
        y: &mut Matrix<T>,
        rows: usize,
    ) -> Result<()> {
        match &mut self.compute {
            Compute::Local { workspace, .. } => workspace.execute_rows(x, factors, y, rows),
            Compute::Sharded(_) => unreachable!("sharded solos use the staged batch path"),
        }
    }

    /// Simulated-execution digest for `rows` of this entry's capacity,
    /// prorated from the engine's capacity-rows simulation. `None` on
    /// Local entries (no communication to attribute) and when the cost
    /// model cannot cover the per-GPU block shape.
    pub(crate) fn shard_summary(&self, rows: usize) -> Option<ExecSummary> {
        match &self.compute {
            Compute::Sharded(engine) => engine
                .summary()
                .map(|s| s.prorated(rows, engine.capacity())),
            Compute::Local { .. } => None,
        }
    }
}

/// A dtype-erased cache entry: the typed [`CachedPlan`] behind one of two
/// enum arms. The map key carries the same [`DType`], so an entry's arm
/// always matches its key — the typed lanes unwrap with the sealed
/// [`ErasedDtype::plan_mut`] hook after the lookup verified the dtype.
pub(crate) enum ErasedPlan {
    /// `f32` execution state.
    F32(CachedPlan<f32>),
    /// `f64` execution state.
    F64(CachedPlan<f64>),
}

impl ErasedPlan {
    /// The structural identity of the entry, whichever dtype it holds.
    pub(crate) fn key(&self) -> &PlanKey {
        match self {
            ErasedPlan::F32(p) => &p.key,
            ErasedPlan::F64(p) => &p.key,
        }
    }
}

/// A pinned reference to one cache entry. While any pin is alive the
/// entry is exempt from policy eviction, and the `Arc` guarantees the
/// engine outlives every in-flight use even if the entry is detached from
/// the map (post-failure eviction). Dropping the pin releases both.
pub(crate) struct PinnedEntry {
    entry: Arc<Mutex<ErasedPlan>>,
    pins: Arc<AtomicUsize>,
}

impl PinnedEntry {
    fn new(slot: &Slot) -> Self {
        slot.pins.fetch_add(1, Ordering::SeqCst);
        PinnedEntry {
            entry: Arc::clone(&slot.entry),
            pins: Arc::clone(&slot.pins),
        }
    }

    /// Locks the entry for exclusive use (the scheduler holds this for
    /// the duration of one gather/execute/scatter). The guard yields the
    /// erased enum; the lookup that produced this pin already verified
    /// the dtype, so the lane's typed unwrap cannot fail.
    pub(crate) fn lock(&self) -> MutexGuard<'_, ErasedPlan> {
        self.entry.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for PinnedEntry {
    fn drop(&mut self) {
        self.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Map value: the shared erased entry, its pin count, recency
/// bookkeeping, and the byte footprint it is accounted at.
struct Slot {
    entry: Arc<Mutex<ErasedPlan>>,
    pins: Arc<AtomicUsize>,
    /// Monotonic touch sequence — the LRU order (deterministic even when
    /// a manual clock never advances).
    last_used_seq: u64,
    /// Clock time of the last touch — the idle-timeout basis.
    last_used_us: u64,
    /// [`PlanKey::estimated_bytes`] of the built entry — the byte-budget
    /// accounting unit.
    bytes: usize,
    /// The device limit the entry was built under (see
    /// [`PlanCache::get_or_create`]'s `limit`): a hit must match the
    /// current limit, so a degraded entry is rebuilt at full width once
    /// the grid heals (and vice versa) instead of serving degraded
    /// forever.
    built_limit: usize,
}

impl Slot {
    fn pinned(&self) -> bool {
        self.pins.load(Ordering::SeqCst) > 0
    }
}

/// Resolved backend state: `None` means single-node, `Some` carries the
/// grid and fabric model sharded entries are built against.
type BackendState = std::result::Result<Option<(GpuGrid, CommModel)>, KronError>;

/// Map key: `(dtype, factor-shape-chain hash, row capacity)`.
type MapKey = (DType, u64, usize);

/// Bound on the evicted-key memory behind `rebuilds` attribution. Past
/// this many distinct evicted keys the set resets (rebuild counting is
/// observability, not correctness) so unbounded model churn cannot leak
/// through the very subsystem that bounds the cache.
const EVICTED_KEYS_CAP: usize = 4096;

/// Records an evicted key for later rebuild attribution, resetting the
/// set at [`EVICTED_KEYS_CAP`] instead of growing forever.
fn note_evicted(evicted_keys: &mut HashSet<MapKey>, key: MapKey) {
    if evicted_keys.len() >= EVICTED_KEYS_CAP {
        evicted_keys.clear();
    }
    evicted_keys.insert(key);
}

/// Dtype-spanning plan/workspace cache keyed by `(dtype, factor-shape
/// chain, row capacity)`, bounded by a [`CachePolicy`]. See the module
/// docs for the lifecycle.
pub struct PlanCache {
    device: DeviceSpec,
    backend: BackendState,
    policy: CachePolicy,
    clock: Clock,
    entries: HashMap<MapKey, Slot>,
    /// Keys that were evicted at some point — a later build for one of
    /// them counts as a `rebuild` (cache thrash observability). Keys
    /// only, and capped at [`EVICTED_KEYS_CAP`] (the set resets past
    /// that), so it stays small however long the runtime serves.
    evicted_keys: HashSet<MapKey>,
    use_seq: u64,
    /// Sum of every resident slot's `bytes` — the budget's ledger and the
    /// `cached_bytes` gauge.
    total_bytes: usize,
    /// Watchdog budget installed on every engine this cache builds: a
    /// device stalled past this many clock microseconds fails its batch
    /// with [`KronError::DeviceTimeout`] instead of hanging the fabric.
    watchdog_us: u64,
    /// Metrics plane evictions and per-model plan lookups are recorded
    /// into. A standalone cache gets its own private hub.
    hub: Arc<MetricsHub>,
}

impl PlanCache {
    /// Creates an empty cache building entries for `backend` plans tuned
    /// against `device`, bounded by `policy`, with idle ages measured on
    /// `clock`. An invalid distributed configuration (e.g. a
    /// non-power-of-two GPU count) is captured here and surfaces as the
    /// documented [`KronError::InvalidGrid`] on every subsequent request.
    pub fn new(
        device: DeviceSpec,
        backend: &Backend,
        policy: CachePolicy,
        clock: Clock,
        watchdog_us: u64,
    ) -> Self {
        Self::with_hub(
            device,
            backend,
            policy,
            clock,
            watchdog_us,
            Arc::new(MetricsHub::new(0)),
        )
    }

    /// [`Self::new`], recording evictions and per-model plan lookups
    /// into the runtime's shared metrics `hub`.
    pub(crate) fn with_hub(
        device: DeviceSpec,
        backend: &Backend,
        policy: CachePolicy,
        clock: Clock,
        watchdog_us: u64,
        hub: Arc<MetricsHub>,
    ) -> Self {
        let backend = match backend {
            Backend::SingleNode => Ok(None),
            Backend::Distributed { gpus, p2p } => GpuGrid::for_gpus(*gpus).map(|grid| {
                let comm = if *p2p {
                    CommModel::p2p(&device)
                } else {
                    CommModel::nccl(&device)
                };
                Some((grid, comm))
            }),
        };
        PlanCache {
            device,
            backend,
            policy,
            clock,
            entries: HashMap::new(),
            evicted_keys: HashSet::new(),
            use_seq: 0,
            total_bytes: 0,
            watchdog_us: watchdog_us.max(1),
            hub,
        }
    }

    /// Number of cached entries (across both dtypes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated bytes resident across every cached entry (the
    /// byte-budget ledger; see [`PlanKey::estimated_bytes`]).
    pub fn resident_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The structural identities of every cached entry (snapshot).
    pub fn keys(&self) -> Vec<PlanKey> {
        self.entries
            .values()
            .map(|s| {
                s.entry
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .key()
                    .clone()
            })
            .collect()
    }

    /// Removes one slot from the map and the byte ledger, recording it
    /// for rebuild attribution and into the flight recorder. Returns
    /// whether it was present.
    fn remove_slot(&mut self, key: MapKey, reason: EvictReason) -> bool {
        if let Some(slot) = self.entries.remove(&key) {
            self.total_bytes -= slot.bytes;
            note_evicted(&mut self.evicted_keys, key);
            self.hub.event(
                self.clock.now_us(),
                ServeEventKind::Eviction {
                    dtype: key.0,
                    capacity: key.2 as u32,
                    reason,
                },
            );
            true
        } else {
            false
        }
    }

    /// Evicts the entry after a device failure, so the next batch of the
    /// shape rebuilds a fresh engine instead of trusting a possibly
    /// inconsistent fabric. Unconditional: a pinned (in-flight) entry is
    /// detached from the map and lives until its last pin drops — it is
    /// never handed out again.
    pub(crate) fn evict_failed(
        &mut self,
        dtype: DType,
        shape_key: u64,
        capacity: usize,
        stats: &StatsInner,
    ) {
        if self.remove_slot((dtype, shape_key, capacity), EvictReason::Failed) {
            stats.evictions.fetch_add(1, Ordering::Relaxed);
            self.update_gauges(stats);
        }
    }

    /// Evicts unpinned entries idle longer than the policy's
    /// `max_idle_us`; returns how many were evicted. A no-op when idle
    /// eviction is disabled.
    pub(crate) fn sweep_idle(&mut self, stats: &StatsInner) -> usize {
        let Some(max_idle) = self.policy.max_idle_us else {
            return 0;
        };
        let now = self.clock.now_us();
        let before = self.entries.len();
        let evicted_keys = &mut self.evicted_keys;
        let total_bytes = &mut self.total_bytes;
        let hub = &self.hub;
        self.entries.retain(|key, slot| {
            let keep = slot.pinned() || now.saturating_sub(slot.last_used_us) <= max_idle;
            if !keep {
                *total_bytes -= slot.bytes;
                note_evicted(evicted_keys, *key);
                hub.event(
                    now,
                    ServeEventKind::Eviction {
                        dtype: key.0,
                        capacity: key.2 as u32,
                        reason: EvictReason::Idle,
                    },
                );
            }
            keep
        });
        let evicted = before - self.entries.len();
        if evicted > 0 {
            stats.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
            self.update_gauges(stats);
        }
        evicted
    }

    /// The device limit an entry actually builds under for a requested
    /// `limit` (from the health ledger / retry ladder): clamped to the
    /// configured grid and floored to a power of two so it always maps to
    /// a valid [`GpuGrid`]. `1` on a single-node (or misconfigured)
    /// backend, where every entry is local anyway.
    fn effective_limit(&self, limit: usize) -> usize {
        match self.backend.as_ref() {
            Ok(Some((grid, _))) => {
                let clamped = limit.clamp(1, grid.gpus());
                if clamped.is_power_of_two() {
                    clamped
                } else {
                    clamped.next_power_of_two() / 2
                }
            }
            _ => 1,
        }
    }

    /// Looks up (or plans, tunes, and allocates) the execution state for
    /// `model`'s shape chain at `capacity` rows, counting the hit or miss
    /// (and the local fallback when the grid cannot shard the model).
    /// `limit` caps how many simulated devices the entry may span (the
    /// breaker's quarantine and the retry ladder's degradation both pass
    /// fewer than the configured grid; pass `usize::MAX` for "whatever
    /// the backend has") — a resident entry built under a different
    /// effective limit is rebuilt in place, so healing and degradation
    /// both converge. Returns the entry pinned; the pin must outlive
    /// every use of the entry this serve. The lookup verifies the dtype
    /// and the full shape chain, so a later [`ErasedDtype::plan_mut`] on
    /// the pinned entry is infallible.
    pub(crate) fn get_or_create<T: ErasedDtype>(
        &mut self,
        model: &ModelInner<T>,
        capacity: usize,
        limit: usize,
        stats: &StatsInner,
    ) -> Result<PinnedEntry> {
        let eff_limit = self.effective_limit(limit);
        let map_key = (T::DTYPE, model.shape_key, capacity);
        self.use_seq += 1;
        let (seq, now) = (self.use_seq, self.clock.now_us());
        if let Some(slot) = self.entries.get_mut(&map_key) {
            let fresh = slot.built_limit == eff_limit && {
                let mut entry = slot.entry.lock().unwrap_or_else(|e| e.into_inner());
                T::plan_mut(&mut entry).is_some_and(|p| p.key.problem.factors == model.shapes)
            };
            slot.last_used_seq = seq;
            slot.last_used_us = now;
            if fresh {
                stats.plan_hits.fetch_add(1, Ordering::Relaxed);
                self.hub
                    .record_plan_lookup(T::DTYPE, model.shape_key, capacity, true);
                return Ok(PinnedEntry::new(slot));
            }
            // 64-bit shape-hash collision, or a device-limit transition
            // (degraded ↔ full width): rebuild for the new chain/limit
            // rather than ever serving a wrong-shape or wrong-width
            // state. The old entry's Arc is replaced, so an in-flight pin
            // keeps the old engine alive until it drops.
            stats.plan_misses.fetch_add(1, Ordering::Relaxed);
            self.hub
                .record_plan_lookup(T::DTYPE, model.shape_key, capacity, false);
            let built = self.build_entry(model, capacity, eff_limit, stats)?;
            let bytes = built.key.estimated_bytes();
            let slot = self.entries.get_mut(&map_key).expect("present above");
            self.total_bytes = self.total_bytes - slot.bytes + bytes;
            slot.bytes = bytes;
            slot.built_limit = eff_limit;
            slot.entry = Arc::new(Mutex::new(T::wrap_plan(built)));
            slot.pins = Arc::new(AtomicUsize::new(0));
            let pinned = PinnedEntry::new(slot);
            self.update_gauges(stats);
            return Ok(pinned);
        }

        stats.plan_misses.fetch_add(1, Ordering::Relaxed);
        self.hub
            .record_plan_lookup(T::DTYPE, model.shape_key, capacity, false);
        // A misconfigured backend (e.g. non-power-of-two grid) fails
        // every build, forever: surface it before evicting anyone, so a
        // stream of doomed requests cannot flush healthy entries.
        self.backend.as_ref().map_err(Clone::clone)?;
        // Make room *before* building, so live engines never exceed the
        // entry bound (the new engine's threads only spawn after the
        // evicted one's joined) and the byte ledger never exceeds the
        // budget even transiently. The estimate is conservative for a
        // grid backend whose model later falls back to a (smaller) local
        // entry; the ledger records the actual built footprint.
        let estimate = self.estimate_bytes::<T>(model, capacity, eff_limit)?;
        if let Some(max_bytes) = self.policy.max_bytes {
            if estimate > max_bytes {
                return Err(KronError::CacheBudgetExceeded {
                    required_bytes: estimate,
                    max_bytes,
                });
            }
        }
        self.make_room(estimate, stats);
        let built = self.build_entry(model, capacity, eff_limit, stats)?;
        let bytes = built.key.estimated_bytes();
        if self.evicted_keys.remove(&map_key) {
            stats.rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        self.total_bytes += bytes;
        let slot = self.entries.entry(map_key).or_insert(Slot {
            entry: Arc::new(Mutex::new(T::wrap_plan(built))),
            pins: Arc::new(AtomicUsize::new(0)),
            last_used_seq: seq,
            last_used_us: now,
            bytes,
            built_limit: eff_limit,
        });
        let pinned = PinnedEntry::new(slot);
        self.update_gauges(stats);
        Ok(pinned)
    }

    /// Hit-only lookup for the inline bypass lane: returns the pinned
    /// entry iff `model`'s plan key is already resident, built at the
    /// full effective device limit, shape-verified, and **local**
    /// (non-sharded) — the bypass lane never drives the staged sharded
    /// path. Counts the plan hit and touches recency exactly as
    /// [`Self::get_or_create`] would on a hit, but a cold, degraded, or
    /// sharded entry counts nothing here: the request falls back to the
    /// scheduler, which performs — and accounts — its own lookup.
    pub(crate) fn get_warm<T: ErasedDtype>(
        &mut self,
        model: &ModelInner<T>,
        capacity: usize,
        stats: &StatsInner,
    ) -> Option<PinnedEntry> {
        let eff_limit = self.effective_limit(usize::MAX);
        let map_key = (T::DTYPE, model.shape_key, capacity);
        let slot = self.entries.get_mut(&map_key)?;
        let fresh = slot.built_limit == eff_limit && {
            let mut entry = slot.entry.lock().unwrap_or_else(|e| e.into_inner());
            T::plan_mut(&mut entry)
                .is_some_and(|p| p.key.problem.factors == model.shapes && !p.is_sharded())
        };
        if !fresh {
            return None;
        }
        self.use_seq += 1;
        slot.last_used_seq = self.use_seq;
        slot.last_used_us = self.clock.now_us();
        stats.plan_hits.fetch_add(1, Ordering::Relaxed);
        self.hub
            .record_plan_lookup(T::DTYPE, model.shape_key, capacity, true);
        Some(PinnedEntry::new(slot))
    }

    /// The prospective [`PlanKey::estimated_bytes`] of an entry for
    /// `model` at `capacity` rows under this cache's backend — computed
    /// *before* building, so eviction can make room first. Mirrors
    /// [`Self::build_entry`] exactly, including the documented
    /// local-fallback for shapes the grid cannot shard (probed with
    /// [`kron_dist::DistFastKron::shardable_over`], pure arithmetic), so
    /// the budget check never rejects a model whose actual entry would
    /// fit.
    fn estimate_bytes<T: ErasedDtype>(
        &self,
        model: &ModelInner<T>,
        capacity: usize,
        limit: usize,
    ) -> Result<usize> {
        if let Some(grid) = self.grid_for_limit(limit)? {
            let cap = capacity.div_ceil(grid.gm) * grid.gm;
            let problem = KronProblem::new(cap, model.shapes.clone())?;
            if kron_dist::DistFastKron::shardable_over(grid, &problem).is_ok() {
                let key = PlanKey::sharded(problem, T::DTYPE, self.device.name, grid.gm, grid.gk);
                return Ok(key.estimated_bytes());
            }
            // build_entry will serve this shape through a local entry.
        }
        let problem = KronProblem::new(capacity, model.shapes.clone())?;
        Ok(PlanKey::new(problem, T::DTYPE, self.device.name).estimated_bytes())
    }

    /// Evicts least-recently-used unpinned entries until there is room
    /// for one more entry under `max_entries` *and* `incoming_bytes` more
    /// under `max_bytes`. Stops early if everything left is pinned (pins
    /// are an explicit override of both bounds).
    fn make_room(&mut self, incoming_bytes: usize, stats: &StatsInner) {
        let over = |cache: &Self| {
            cache.entries.len() >= cache.policy.max_entries
                || cache
                    .policy
                    .max_bytes
                    .is_some_and(|b| cache.total_bytes + incoming_bytes > b)
        };
        while over(self) {
            let lru = self
                .entries
                .iter()
                .filter(|(_, slot)| !slot.pinned())
                .min_by_key(|(_, slot)| slot.last_used_seq)
                .map(|(key, _)| *key);
            let Some(key) = lru else { break };
            self.remove_slot(key, EvictReason::Capacity);
            stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.update_gauges(stats);
    }

    fn update_gauges(&self, stats: &StatsInner) {
        stats
            .cached_entries
            .store(self.entries.len() as u64, Ordering::Relaxed);
        stats
            .cached_bytes
            .store(self.total_bytes as u64, Ordering::Relaxed);
    }

    /// The grid an entry at effective device limit `limit` shards over:
    /// the configured grid at full limit, a [`GpuGrid::for_gpus`] prefix
    /// grid when degraded, `None` when the limit is 1 (single-device
    /// fallback — local execution) or the backend is single-node.
    fn grid_for_limit(&self, limit: usize) -> Result<Option<GpuGrid>> {
        match self.backend.as_ref().map_err(Clone::clone)? {
            Some((grid, _)) if limit >= grid.gpus() => Ok(Some(*grid)),
            Some(_) if limit > 1 => Ok(Some(GpuGrid::for_gpus(limit)?)),
            _ => Ok(None),
        }
    }

    fn build_entry<T: ErasedDtype>(
        &self,
        model: &ModelInner<T>,
        capacity: usize,
        limit: usize,
        stats: &StatsInner,
    ) -> Result<CachedPlan<T>> {
        let device = &self.device;
        match self.grid_for_limit(limit)? {
            Some(grid) => {
                let comm = match self.backend.as_ref() {
                    Ok(Some((_, comm))) => comm.clone(),
                    _ => unreachable!("grid_for_limit returned Some"),
                };
                // Round the capacity up so any row count ≤ capacity can
                // zero-pad to a GM multiple and shard.
                let cap = capacity.div_ceil(grid.gm) * grid.gm;
                let problem = KronProblem::new(cap, model.shapes.clone())?;
                match ShardedEngine::new(device, grid, comm, &problem) {
                    Ok(mut engine) => {
                        let clock = self.clock.clone();
                        engine.set_watchdog(Watchdog::new(
                            self.watchdog_us,
                            Box::new(move || clock.now_us()),
                        ));
                        Ok(CachedPlan {
                            key: PlanKey::sharded(problem, T::DTYPE, device.name, grid.gm, grid.gk),
                            compute: Compute::Sharded(Box::new(engine)),
                            batch: None,
                        })
                    }
                    Err(KronError::InvalidGrid { .. }) => {
                        // The grid cannot shard this shape (mixed or
                        // rectangular factors, indivisible K): serve it
                        // locally rather than failing.
                        stats.local_fallbacks.fetch_add(1, Ordering::Relaxed);
                        Self::local_entry(device, model, capacity)
                    }
                    Err(other) => Err(other),
                }
            }
            None => Self::local_entry(device, model, capacity),
        }
    }

    fn local_entry<T: ErasedDtype>(
        device: &DeviceSpec,
        model: &ModelInner<T>,
        capacity: usize,
    ) -> Result<CachedPlan<T>> {
        let problem = KronProblem::new(capacity, model.shapes.clone())?;
        let plan = FastKron::plan::<T>(&problem, device)?;
        let workspace = plan.workspace();
        let key = PlanKey::new(problem, T::DTYPE, device.name);
        Ok(CachedPlan {
            key,
            compute: Compute::Local {
                plan: Box::new(plan),
                workspace,
            },
            batch: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::V100;

    #[test]
    fn lane_of_is_stable_in_range_and_dtype_sensitive() {
        // Single lane short-circuits to 0 for every identity.
        assert_eq!(lane_of(DType::F32, 0xDEAD_BEEF, 1), 0);
        assert_eq!(lane_of(DType::F64, u64::MAX, 0), 0);
        for lanes in [2usize, 3, 4, 8] {
            let mut hit = vec![false; lanes];
            for key in 0..256u64 {
                let a = lane_of(DType::F32, key, lanes);
                // Stable: the submit path and the bypass claim must agree.
                assert_eq!(a, lane_of(DType::F32, key, lanes));
                assert!(a < lanes);
                hit[a] = true;
            }
            // The mix spreads near-identical shape keys across lanes.
            assert!(
                hit.iter().all(|&h| h),
                "some lane never hit at lanes={lanes}"
            );
        }
        // Mixed-dtype traffic over one shape still splits somewhere: the
        // dtype folds into the hash (identical keys, any lane count).
        let diverges =
            (0..64u64).any(|key| lane_of(DType::F32, key, 4) != lane_of(DType::F64, key, 4));
        assert!(diverges, "dtype never changed the lane");
    }

    fn model(shapes: &[(usize, usize)], id: u64) -> ModelInner<f64> {
        let factors = shapes
            .iter()
            .map(|&(p, q)| Matrix::from_fn(p, q, |r, c| (r * q + c) as f64))
            .collect();
        ModelInner::build(id, factors).unwrap()
    }

    fn model_f32(shapes: &[(usize, usize)], id: u64) -> ModelInner<f32> {
        let factors = shapes
            .iter()
            .map(|&(p, q)| Matrix::from_fn(p, q, |r, c| (r * q + c) as f32))
            .collect();
        ModelInner::build(id, factors).unwrap()
    }

    fn cache(policy: CachePolicy, clock: Clock) -> (PlanCache, StatsInner) {
        (
            PlanCache::new(V100.clone(), &Backend::SingleNode, policy, clock, 2_000_000),
            StatsInner::default(),
        )
    }

    #[test]
    fn pinned_entry_survives_lru_and_idle_eviction_while_in_flight() {
        let clock = Clock::manual();
        let handle = clock.manual_handle().unwrap();
        let (mut cache, stats) = cache(
            CachePolicy {
                max_entries: 1,
                max_idle_us: Some(100),
                max_bytes: None,
            },
            clock,
        );
        let a = model(&[(2, 2), (2, 2)], 0);
        let b = model(&[(3, 3)], 1);

        // Hold A's pin — the in-flight state during a batch execute.
        let pin_a = cache.get_or_create(&a, 8, usize::MAX, &stats).unwrap();

        // Idle sweep far past the timeout must not touch the pinned entry.
        handle.advance_us(10_000);
        assert_eq!(cache.sweep_idle(&stats), 0);
        assert_eq!(cache.len(), 1);

        // Capacity pressure must also route around it: B builds, the
        // cache overflows to 2 (explicit pin override), A survives.
        let pin_b = cache.get_or_create(&b, 8, usize::MAX, &stats).unwrap();
        assert_eq!(cache.len(), 2);
        drop(pin_b);

        // Once A's batch lands (pin dropped), the same pressures evict
        // the LRU unpinned entry again.
        drop(pin_a);
        let c = model(&[(4, 4)], 2);
        let _pin_c = cache.get_or_create(&c, 8, usize::MAX, &stats).unwrap();
        assert!(cache.len() <= 2);
        assert!(stats.evictions.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn failed_entry_detaches_but_lives_until_pin_drops() {
        let (mut cache, stats) = cache(CachePolicy::default(), Clock::manual());
        let a = model(&[(2, 2)], 0);
        let pin = cache.get_or_create(&a, 4, usize::MAX, &stats).unwrap();
        cache.evict_failed(DType::F64, a.shape_key, 4, &stats);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.resident_bytes(), 0);
        // The detached entry is still usable through the pin.
        let mut guard = pin.lock();
        assert!(!<f64 as ErasedDtype>::plan_mut(&mut guard)
            .expect("f64 entry")
            .is_sharded());
        drop(guard);
        drop(pin);
        // And the next lookup is a rebuild.
        let _pin = cache.get_or_create(&a, 4, usize::MAX, &stats).unwrap();
        assert_eq!(stats.rebuilds.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn one_cache_holds_both_dtypes_under_one_policy() {
        let (mut cache, stats) = cache(CachePolicy::default(), Clock::manual());
        // Same shape chain, both dtypes: two distinct entries (the key
        // includes the dtype), one ledger.
        let a64 = model(&[(4, 4), (4, 4)], 0);
        let a32 = model_f32(&[(4, 4), (4, 4)], 1);
        let p64 = cache.get_or_create(&a64, 8, usize::MAX, &stats).unwrap();
        let p32 = cache.get_or_create(&a32, 8, usize::MAX, &stats).unwrap();
        assert_eq!(cache.len(), 2);
        // f64 state accounts twice the bytes of the same-shape f32 state.
        let keys = cache.keys();
        let b64 = keys
            .iter()
            .find(|k| k.dtype == DType::F64)
            .unwrap()
            .estimated_bytes();
        let b32 = keys
            .iter()
            .find(|k| k.dtype == DType::F32)
            .unwrap()
            .estimated_bytes();
        assert_eq!(b64, 2 * b32);
        assert_eq!(cache.resident_bytes(), b64 + b32);
        // A second f64 lookup is a hit (4 ops: 2 misses + 2 re-lookups).
        drop(p64);
        drop(p32);
        let _again = cache.get_or_create(&a64, 8, usize::MAX, &stats).unwrap();
        assert_eq!(stats.plan_hits.load(Ordering::Relaxed), 1);
        assert_eq!(stats.plan_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn byte_budget_evicts_lru_across_dtypes_before_building() {
        let a32 = model_f32(&[(4, 4), (4, 4)], 0);
        let a64 = model(&[(4, 4), (4, 4)], 1);
        // Budget sized to hold either entry alone, but not both: the f64
        // build must evict the idle f32 entry first.
        let one64 = {
            let (mut probe, stats) = cache(CachePolicy::default(), Clock::manual());
            let _p = probe.get_or_create(&a64, 8, usize::MAX, &stats).unwrap();
            probe.resident_bytes()
        };
        let (mut cache, stats) = cache(
            CachePolicy {
                max_entries: usize::MAX,
                max_idle_us: None,
                max_bytes: Some(one64),
            },
            Clock::manual(),
        );
        let p32 = cache.get_or_create(&a32, 8, usize::MAX, &stats).unwrap();
        drop(p32);
        assert_eq!(cache.len(), 1);
        let _p64 = cache.get_or_create(&a64, 8, usize::MAX, &stats).unwrap();
        assert_eq!(cache.len(), 1, "f32 entry evicted to fit the budget");
        assert_eq!(cache.keys()[0].dtype, DType::F64);
        assert_eq!(stats.evictions.load(Ordering::Relaxed), 1);
        assert!(cache.resident_bytes() <= one64);
        assert_eq!(
            stats.cached_bytes.load(Ordering::Relaxed) as usize,
            cache.resident_bytes()
        );
    }

    #[test]
    fn entry_larger_than_the_whole_budget_is_a_clean_error() {
        let (mut cache, stats) = cache(
            CachePolicy {
                max_entries: usize::MAX,
                max_idle_us: None,
                max_bytes: Some(64),
            },
            Clock::manual(),
        );
        let a = model(&[(8, 8), (8, 8)], 0);
        match cache.get_or_create(&a, 32, usize::MAX, &stats).map(|_| ()) {
            Err(KronError::CacheBudgetExceeded {
                required_bytes,
                max_bytes,
            }) => {
                assert!(required_bytes > max_bytes);
                assert_eq!(max_bytes, 64);
            }
            other => panic!("expected CacheBudgetExceeded, got {other:?}"),
        }
        assert!(cache.is_empty(), "nothing was built or leaked");
    }
}
