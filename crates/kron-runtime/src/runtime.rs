//! The public runtime: models, request submission, tickets, sessions, and
//! graceful shutdown — dtype-erased, so **one** runtime serves mixed
//! `f32`/`f64` traffic through sharded scheduler lanes and one plan
//! cache. Admission is lock-free: each lane is a bounded MPMC ring
//! (`crossbeam::channel::bounded`) guarded by an atomic [`LaneGate`]
//! (a striped sender-count gate, not a mutex), requests hash to a lane by
//! plan identity (`(dtype, shape_key)`, see [`crate::cache`]'s
//! `lane_of`), and idle lanes steal queued work from busy siblings. The
//! per-lane scheduler threads live in [`crate::scheduler`].
//!
//! The erasure boundary is the request channel: typed entry points
//! (`submit`, `Session::call`, …) wrap their [`Request<T>`] into the
//! two-armed [`ErasedRequest`] enum via the sealed [`sealed::ErasedDtype`]
//! hooks, and the scheduler unwraps into fully-typed per-dtype lanes.
//! Enum dispatch only — no trait objects, no `Box<dyn>`, and no
//! allocation on the wrap/unwrap — so the zero-allocation steady-state
//! contract survives the redesign unchanged.

use crate::cache::{CachePolicy, PinnedEntry, PlanCache};
use crate::clock::Clock;
use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultPlane, FaultTrigger};
use crate::health::{BreakerPolicy, DeviceHealth, DeviceHealthReport};
use crate::metrics::{MetricsHub, MetricsSnapshot, ModelStats, Outcome, Stage};
use crate::scheduler::{arm_scripted_fault, Scheduler, ServeCtx};
use crate::trace::{ServeEvent, ServeEventKind, StageTimings};
use crossbeam::channel::{bounded, Receiver, Sender};
use gpu_sim::device::{DeviceSpec, V100};
use gpu_sim::ExecSummary;
use kron_core::{DType, Element, FactorShape, KronError, KronProblem, Matrix, PlanKey, Result};
// Atomics come through the `crossbeam::sync` facade so the admission
// protocol (LaneGate, bypass claim, inflight gauges) can be model-checked
// under `--cfg kron_loom`; in normal builds these are re-exports of the
// `std` types. `Mutex`/`Condvar`/`Arc` stay `std`: model executions here
// only exercise the atomic protocols, and the blocking paths are not
// driven inside model threads.
use crossbeam::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Where a runtime executes its batches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Backend {
    /// Everything runs on one device through the fused-path
    /// [`fastkron_core::Workspace`] — the classic serving configuration.
    #[default]
    SingleNode,
    /// Batches shard across a simulated multi-GPU machine: rows split
    /// `GM`-ways and columns `GK`-ways over a SUMMA-style grid, with
    /// Algorithm 2's grouped exchanges between factor groups
    /// ([`kron_dist::ShardedEngine`]).
    ///
    /// Models the grid cannot shard (mixed or rectangular factors, `K`
    /// not divisible by the grid) transparently fall back to single-node
    /// execution, counted in [`RuntimeStats::local_fallbacks`]. A GPU
    /// count the SUMMA rule cannot arrange (not a power of two) is a
    /// configuration error: every request then fails with the documented
    /// [`KronError::InvalidGrid`].
    Distributed {
        /// Number of simulated GPUs (must be a power of two).
        gpus: usize,
        /// Use the single-kernel P2P communication path instead of NCCL
        /// (§5's peer-access optimization; lower per-message latency).
        p2p: bool,
    },
}

impl Backend {
    /// The configured device count: the machine size under
    /// [`Backend::Distributed`], `1` on a single node.
    pub fn gpus(&self) -> usize {
        match self {
            Backend::SingleNode => 1,
            Backend::Distributed { gpus, .. } => *gpus,
        }
    }
}

/// Transparent batch-retry policy ([`RuntimeConfig::retry`]).
///
/// On a device fault ([`KronError::DeviceFailure`] /
/// [`KronError::DeviceTimeout`]) the scheduler evicts the broken entry
/// and re-executes the failed batch instead of surfacing the error: first
/// on a freshly rebuilt full grid, then — with [`RetryPolicy::degrade`] —
/// halving the grid toward the single-device fallback. Retried results
/// are *value-invisible*: every grid shape and the local path compute the
/// same bits on integer-valued data (the workspace's differential spine),
/// so a recovered client can't tell a retry happened except by reading
/// its [`ServeReceipt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum re-executions of a failed batch. `0` disables retry: a
    /// device fault surfaces to the client as the raw error (PR 3's
    /// behavior).
    pub max_attempts: u32,
    /// Wait between attempts, in microseconds on the runtime's clock
    /// (`0` retries immediately). A member whose deadline the retry
    /// would land past is shed with [`KronError::DeadlineExceeded`]
    /// instead of being retried — a batch never silently retries past
    /// its deadlines.
    pub backoff_us: u64,
    /// After the first same-size rebuild retry, halve the grid on each
    /// further attempt toward single-device execution. `false` rebuilds
    /// at full size every attempt.
    pub degrade: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_us: 0,
            degrade: true,
        }
    }
}

/// Tuning knobs for a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Maximum rows one batched execute covers; also the row capacity the
    /// cached batch workspaces are sized for.
    pub max_batch_rows: usize,
    /// Requests with `M` at or below this are eligible for cross-request
    /// batching; larger requests are served solo (they already saturate
    /// the fused path on their own). Clamped to `max_batch_rows`.
    pub batch_max_m: usize,
    /// Maximum requests drained from the queue per scheduling cycle (the
    /// batch window), across both dtypes.
    pub max_queue: usize,
    /// Upper bound on how long the scheduler lingers after the first
    /// request of a cycle to let more requests arrive and coalesce
    /// (microseconds; `0` disables lingering). Trades per-request latency
    /// for batch occupancy — most useful on hosts where clients and the
    /// scheduler contend for cores, where serving would otherwise
    /// degenerate into lockstep one-request cycles. With
    /// [`RuntimeConfig::adaptive_linger`] (the default) this is a *cap*:
    /// the effective linger shrinks toward zero when the queue is shallow
    /// and grows toward the cap under load (see
    /// [`crate::adaptive_linger_us`]; the current value is the
    /// [`RuntimeStats::current_linger_us`] gauge).
    pub batch_linger_us: u64,
    /// Scale the effective linger with observed load instead of always
    /// lingering the full `batch_linger_us`. `false` restores the fixed
    /// window.
    pub adaptive_linger: bool,
    /// Microseconds of queue age per effective-priority step (see
    /// [`crate::aged_priority`]): a request that has waited `n ×
    /// priority_aging_us` is served as if its priority were `n` higher,
    /// so sustained high-priority traffic can delay low-priority work but
    /// never starve it. `0` disables aging (strict static priorities).
    pub priority_aging_us: u64,
    /// Bounds on the plan cache (LRU capacity, byte budget, and idle
    /// timeout), spanning both dtypes. The default is unbounded —
    /// production deployments serving many model shapes should set
    /// [`CachePolicy::max_entries`] and/or [`CachePolicy::max_bytes`],
    /// since every cached `Distributed` entry pins `GM·GK` parked worker
    /// threads plus its buffers.
    pub cache: CachePolicy,
    /// The clock deadlines, queue ages, idle ages, and linger windows are
    /// measured on. [`Clock::real`] (the default) in production;
    /// [`Clock::manual`] makes scheduler timing decisions deterministic
    /// in tests.
    pub clock: Clock,
    /// Device model plans are tuned against (used for plan caching and
    /// simulated pricing; CPU execution is unaffected numerically).
    pub device: DeviceSpec,
    /// Execution backend batches run on.
    pub backend: Backend,
    /// Transparent retry of device-faulted batches (see [`RetryPolicy`]).
    /// On by default; set `max_attempts: 0` for fail-fast serving.
    pub retry: RetryPolicy,
    /// Per-device circuit breaker quarantining repeatedly-failing devices
    /// (see [`BreakerPolicy`] and [`Runtime::device_health`]).
    pub breaker: BreakerPolicy,
    /// Watchdog budget for a hung simulated device, in microseconds on
    /// the runtime's clock: a sharded execute whose device stalls longer
    /// fails with the bounded [`KronError::DeviceTimeout`] instead of
    /// hanging the scheduler.
    pub device_watchdog_us: u64,
    /// The low-latency lane (on by default): when the runtime is idle —
    /// no admitted request has an unclaimed result — and the request's
    /// plan is warm, local, and at full device width, `submit` and
    /// `Session::call` execute inline on the submitting thread instead
    /// of crossing the scheduler channel, eliminating the channel hop,
    /// linger window, and scheduler wake at queue depth 1. The moment
    /// load appears (results in flight, a cold or sharded plan, an open
    /// breaker's degraded rebuild) requests flow through the batching
    /// scheduler as before. `false` pins every request to the scheduler
    /// lane (useful for tests that assert scheduler-side behavior).
    pub inline_bypass: bool,
    /// Number of scheduler lanes (service threads), clamped to
    /// `1..=`[`MAX_LANES`]. Each lane owns a bounded lock-free admission
    /// ring and serves both dtypes; requests hash to a lane by plan
    /// identity (`(dtype, shape_key)`), so one model's traffic always
    /// lands on one lane (preserving cross-request batching) while
    /// distinct models spread across lanes. Idle lanes steal queued
    /// requests from busy siblings, so one hot model cannot starve the
    /// rest. The default `1` keeps the classic single-scheduler
    /// behavior: one global service order across every model and dtype
    /// (what the deterministic admission tests pin). Multi-lane runtimes
    /// order service *per lane*; the global serve-sequence counter stays
    /// coherent but interleaves across lanes.
    pub scheduler_lanes: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_batch_rows: 256,
            batch_max_m: 32,
            max_queue: 1024,
            batch_linger_us: 0,
            adaptive_linger: true,
            priority_aging_us: 1_000,
            cache: CachePolicy::default(),
            clock: Clock::default(),
            device: V100.clone(),
            backend: Backend::SingleNode,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            device_watchdog_us: 2_000_000,
            inline_bypass: true,
            scheduler_lanes: 1,
        }
    }
}

/// Upper bound on [`RuntimeConfig::scheduler_lanes`]. Fixed so per-lane
/// counters can live in `Copy` arrays inside [`RuntimeStats`] — snapshots
/// stay allocation-free and the stats struct stays `Copy`.
pub const MAX_LANES: usize = 8;

/// Per-lane serving counters (see [`RuntimeStats::lanes`]): the
/// flight-deck view of the sharded scheduler topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneStats {
    /// Gauge: requests sitting in this lane's admission ring right now
    /// (admitted, not yet drained by a scheduler thread).
    pub depth: u64,
    /// Gauge: admitted requests on this lane whose results have not been
    /// claimed — the lane's bypass-eligibility signal (a request bypasses
    /// only when its lane reads zero; see [`RuntimeConfig::inline_bypass`]).
    pub inflight: u64,
    /// Requests this lane completed (its throughput counter), including
    /// requests it stole from siblings and inline bypasses it hosted.
    pub served: u64,
    /// Requests this lane served through a multi-request batch.
    pub batched_requests: u64,
    /// Requests this lane served by a dedicated execute.
    pub solo_requests: u64,
    /// Requests served inline on the submitting thread against this
    /// lane's claim.
    pub bypassed_requests: u64,
    /// Requests this lane completed with an error reply. Per lane,
    /// `served == batched_requests + solo_requests + bypassed_requests +
    /// error_replies` — the same decomposition the global counters obey.
    pub error_replies: u64,
    /// Requests this lane stole from a sibling's admission ring while it
    /// was idle and the sibling was backlogged.
    pub steals: u64,
}

/// Counters describing what a runtime has done so far, across every
/// dtype it serves (the per-dtype split is `requests_f32`/`requests_f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Requests accepted by `submit`/`execute`/`Session::call`.
    pub submitted: u64,
    /// Accepted requests carrying `f32` data.
    pub requests_f32: u64,
    /// Accepted requests carrying `f64` data.
    pub requests_f64: u64,
    /// Requests completed (successfully or with an error reply).
    pub served: u64,
    /// Multi-request fused executes performed.
    pub batches: u64,
    /// Requests served through a multi-request batch.
    pub batched_requests: u64,
    /// Requests served by a dedicated execute (large `M`, or a batch
    /// window containing a single request).
    pub solo_requests: u64,
    /// Requests served inline on the submitting thread by the
    /// low-latency bypass lane (see [`RuntimeConfig::inline_bypass`]) —
    /// they never crossed the scheduler channel.
    pub bypassed_requests: u64,
    /// Requests that completed with an error reply (deadline sheds,
    /// execution errors, shutdown poisoning). Every served request is
    /// counted exactly once across `batched_requests`, `solo_requests`,
    /// `bypassed_requests`, and this counter:
    /// `served == batched + solo + bypassed + error_replies`.
    pub error_replies: u64,
    /// Requests whose plan/workspace came from the cache.
    pub plan_hits: u64,
    /// Cache misses (a plan was built and tuned).
    pub plan_misses: u64,
    /// Executes that sharded across the simulated GPU grid.
    pub sharded_batches: u64,
    /// Plan-cache entries that fell back to single-node execution because
    /// the grid could not shard the model (Distributed backend only).
    pub local_fallbacks: u64,
    /// Total simulated bytes exchanged over inter-GPU links by sharded
    /// executes (prorated per batch from the engine's capacity-rows
    /// simulation).
    pub comm_bytes: u64,
    /// Plan-cache entries evicted (LRU capacity, byte budget, idle
    /// timeout, or post-device-failure), each tearing down its workspace
    /// or sharded engine.
    pub evictions: u64,
    /// Plan builds for a shape that had previously been evicted — cache
    /// thrash; a rising rate means the cache bounds are too small for the
    /// live model set.
    pub rebuilds: u64,
    /// Requests shed with [`KronError::DeadlineExceeded`] because their
    /// deadline had already passed when the scheduler picked them up
    /// (they never reached an execute), or because a retry would have
    /// landed past their deadline.
    pub deadline_shed: u64,
    /// Batch re-executions after a device fault (each failed execute that
    /// was retried counts once, whatever grid the retry ran on).
    pub retries: u64,
    /// Successful executes that ran on a smaller grid than configured
    /// (retry degradation or breaker quarantine).
    pub degraded_batches: u64,
    /// Requests that saw a device fault but were ultimately served `Ok`
    /// by a retry — the transparent-recovery counter.
    pub recovered_requests: u64,
    /// Device circuit-breaker trips (Closed or HalfOpen → Open; see
    /// [`Runtime::device_health`]).
    pub breaker_trips: u64,
    /// Gauge: plan-cache entries currently resident (both dtypes).
    pub cached_entries: u64,
    /// Gauge: estimated bytes resident across every plan-cache entry
    /// (workspace + staging + engine footprint; the
    /// [`CachePolicy::max_bytes`] accounting basis).
    pub cached_bytes: u64,
    /// Gauge: the effective linger window of the most recent scheduling
    /// cycle (equals `batch_linger_us` with adaptation off; breathes with
    /// load otherwise).
    pub current_linger_us: u64,
    /// Gauge: admitted requests whose results have not yet been claimed
    /// by a waiter — the bypass lane's idleness signal: a request is
    /// eligible for inline execution only when this reads zero, so
    /// pipelined bursts (submit many, wait later) keep flowing through
    /// the batching scheduler.
    pub inflight_requests: u64,
    /// Number of scheduler lanes this runtime runs
    /// ([`RuntimeConfig::scheduler_lanes`] after clamping); the first
    /// this many entries of `lane_stats` are live.
    pub scheduler_lanes: u64,
    /// Requests stolen across lanes in total (the sum of per-lane
    /// [`LaneStats::steals`]); always `0` on a single-lane runtime.
    pub lane_steals: u64,
    /// Per-lane counters; use [`RuntimeStats::lanes`] for the live
    /// prefix (entries past `scheduler_lanes` are zero).
    pub lane_stats: [LaneStats; MAX_LANES],
}

impl RuntimeStats {
    /// The live per-lane counters: one [`LaneStats`] per configured
    /// scheduler lane.
    pub fn lanes(&self) -> &[LaneStats] {
        &self.lane_stats[..(self.scheduler_lanes as usize).clamp(1, MAX_LANES)]
    }
}

/// Per-lane atomic counters behind [`LaneStats`].
#[derive(Default)]
pub(crate) struct LaneStatsInner {
    pub(crate) depth: AtomicU64,
    pub(crate) inflight: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) solo_requests: AtomicU64,
    pub(crate) bypassed_requests: AtomicU64,
    pub(crate) error_replies: AtomicU64,
    pub(crate) steals: AtomicU64,
}

impl LaneStatsInner {
    fn snapshot(&self) -> LaneStats {
        LaneStats {
            depth: self.depth.load(Ordering::Relaxed),
            // relaxed: gauge snapshot for observability; admission
            // decisions go through the AcqRel CAS in `bypass_try_claim`.
            inflight: self.inflight.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            solo_requests: self.solo_requests.load(Ordering::Relaxed),
            bypassed_requests: self.bypassed_requests.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }
}

/// Shared atomic counters behind [`RuntimeStats`].
#[derive(Default)]
pub(crate) struct StatsInner {
    pub(crate) submitted: AtomicU64,
    pub(crate) requests_f32: AtomicU64,
    pub(crate) requests_f64: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) solo_requests: AtomicU64,
    pub(crate) bypassed_requests: AtomicU64,
    pub(crate) error_replies: AtomicU64,
    pub(crate) plan_hits: AtomicU64,
    pub(crate) plan_misses: AtomicU64,
    pub(crate) sharded_batches: AtomicU64,
    pub(crate) local_fallbacks: AtomicU64,
    pub(crate) comm_bytes: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) rebuilds: AtomicU64,
    pub(crate) deadline_shed: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) degraded_batches: AtomicU64,
    pub(crate) recovered_requests: AtomicU64,
    pub(crate) breaker_trips: AtomicU64,
    pub(crate) cached_entries: AtomicU64,
    pub(crate) cached_bytes: AtomicU64,
    pub(crate) current_linger_us: AtomicU64,
    /// The inflight gauge (see [`RuntimeStats::inflight_requests`]):
    /// incremented at admission (either lane), decremented when the
    /// waiter claims the reply — or when an abandoned slot drops.
    pub(crate) inflight_requests: AtomicU64,
    /// Smoothed requests-per-cycle in x16 fixed point; drives the
    /// adaptive linger window. Lives here (not on the scheduler) so the
    /// bypass lane's depth-1 inline serves decay it too. Not a public
    /// counter — snapshots don't report it.
    pub(crate) ewma_depth_x16: AtomicU64,
    /// Live lane count (set once at runtime construction; `0`, the
    /// [`Default`] value, snapshots as a single lane).
    pub(crate) lane_count: AtomicU64,
    /// Per-lane counters; only the first `lane_count` entries are live.
    pub(crate) lane_stats: [LaneStatsInner; MAX_LANES],
}

impl StatsInner {
    /// Counters for a runtime with `lanes` scheduler lanes.
    pub(crate) fn new(lanes: usize) -> Self {
        let inner = StatsInner::default();
        inner
            .lane_count
            .store(lanes.clamp(1, MAX_LANES) as u64, Ordering::Relaxed);
        inner
    }

    /// The per-lane counter block for `lane`.
    pub(crate) fn lane(&self, lane: usize) -> &LaneStatsInner {
        &self.lane_stats[lane]
    }

    fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            requests_f32: self.requests_f32.load(Ordering::Relaxed),
            requests_f64: self.requests_f64.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            solo_requests: self.solo_requests.load(Ordering::Relaxed),
            bypassed_requests: self.bypassed_requests.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            sharded_batches: self.sharded_batches.load(Ordering::Relaxed),
            local_fallbacks: self.local_fallbacks.load(Ordering::Relaxed),
            comm_bytes: self.comm_bytes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            recovered_requests: self.recovered_requests.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            cached_entries: self.cached_entries.load(Ordering::Relaxed),
            cached_bytes: self.cached_bytes.load(Ordering::Relaxed),
            current_linger_us: self.current_linger_us.load(Ordering::Relaxed),
            // relaxed: gauge snapshot; the release sides pair their own
            // orderings (see `Slot::take_blocking` and `Slot::drop`).
            inflight_requests: self.inflight_requests.load(Ordering::Relaxed),
            scheduler_lanes: self.lane_count.load(Ordering::Relaxed).max(1),
            lane_steals: self
                .lane_stats
                .iter()
                .map(|l| l.steals.load(Ordering::Relaxed))
                .sum(),
            lane_stats: std::array::from_fn(|i| self.lane_stats[i].snapshot()),
        }
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Exhaustive destructure: adding a counter without a table row
        // is a compile error.
        let RuntimeStats {
            submitted,
            requests_f32,
            requests_f64,
            served,
            batches,
            batched_requests,
            solo_requests,
            bypassed_requests,
            error_replies,
            plan_hits,
            plan_misses,
            sharded_batches,
            local_fallbacks,
            comm_bytes,
            evictions,
            rebuilds,
            deadline_shed,
            retries,
            degraded_batches,
            recovered_requests,
            breaker_trips,
            cached_entries,
            cached_bytes,
            current_linger_us,
            inflight_requests,
            scheduler_lanes,
            lane_steals,
            lane_stats: _, // rendered per live lane below
        } = *self;
        writeln!(f, "runtime stats")?;
        for (name, value) in [
            ("submitted", submitted),
            ("requests_f32", requests_f32),
            ("requests_f64", requests_f64),
            ("served", served),
            ("batches", batches),
            ("batched_requests", batched_requests),
            ("solo_requests", solo_requests),
            ("bypassed_requests", bypassed_requests),
            ("error_replies", error_replies),
            ("plan_hits", plan_hits),
            ("plan_misses", plan_misses),
            ("sharded_batches", sharded_batches),
            ("local_fallbacks", local_fallbacks),
            ("comm_bytes", comm_bytes),
            ("evictions", evictions),
            ("rebuilds", rebuilds),
            ("deadline_shed", deadline_shed),
            ("retries", retries),
            ("degraded_batches", degraded_batches),
            ("recovered_requests", recovered_requests),
            ("breaker_trips", breaker_trips),
            ("cached_entries", cached_entries),
            ("cached_bytes", cached_bytes),
            ("current_linger_us", current_linger_us),
            ("inflight_requests", inflight_requests),
            ("scheduler_lanes", scheduler_lanes),
            ("lane_steals", lane_steals),
        ] {
            writeln!(f, "  {name:<20} {value:>12}")?;
        }
        for (i, lane) in self.lanes().iter().enumerate() {
            // Exhaustive destructure: adding a lane counter without a
            // row is a compile error.
            let LaneStats {
                depth,
                inflight,
                served,
                batched_requests,
                solo_requests,
                bypassed_requests,
                error_replies,
                steals,
            } = *lane;
            writeln!(
                f,
                "  lane {i:<2} depth={depth} inflight={inflight} served={served} \
                 batched={batched_requests} solo={solo_requests} \
                 bypassed={bypassed_requests} errors={error_replies} steals={steals}"
            )?;
        }
        Ok(())
    }
}

/// A loaded set of Kronecker factors requests are served against.
///
/// Cross-request batching stacks inputs row-wise, which is only valid when
/// the requests share the *same factor values* — so batching is keyed on
/// model identity, the serving analog of "register the model once, then
/// send inputs". Models stay fully typed; the runtime that serves them is
/// dtype-erased, so `Model<f32>` and `Model<f64>` handles from the same
/// [`Runtime`] interleave through one scheduler.
#[derive(Clone)]
pub struct Model<T: Element> {
    pub(crate) inner: Arc<ModelInner<T>>,
}

pub(crate) struct ModelInner<T: Element> {
    pub(crate) id: u64,
    /// Hash of `shapes` — the plan-cache key, so models sharing a factor
    ///-shape chain share plans, workspaces, and sharded engines (the
    /// execution state depends on shapes only; factor *values* arrive per
    /// execute). The cache verifies the full chain on every hit, so a
    /// 64-bit collision costs a rebuild, never a wrong-shape workspace.
    pub(crate) shape_key: u64,
    factors: Box<[Matrix<T>]>,
    pub(crate) shapes: Vec<FactorShape>,
    k: usize,
    l: usize,
}

impl<T: Element> ModelInner<T> {
    /// Validates the factor set and derives the shape chain, its hash
    /// key, and the input/output widths.
    pub(crate) fn build(id: u64, factors: Vec<Matrix<T>>) -> Result<Self> {
        let shapes: Vec<FactorShape> = factors
            .iter()
            .map(|f| FactorShape::new(f.rows(), f.cols()))
            .collect();
        // Validates non-empty factors and non-zero dimensions.
        let probe = KronProblem::new(1, shapes.clone())?;
        let (k, l) = (probe.input_cols(), probe.output_cols());
        let shape_key = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            shapes.hash(&mut h);
            h.finish()
        };
        Ok(ModelInner {
            id,
            shape_key,
            factors: factors.into_boxed_slice(),
            shapes,
            k,
            l,
        })
    }

    pub(crate) fn factors(&self) -> &[Matrix<T>] {
        &self.factors
    }

    pub(crate) fn input_cols(&self) -> usize {
        self.k
    }

    pub(crate) fn output_cols(&self) -> usize {
        self.l
    }
}

impl<T: Element> Model<T> {
    /// The runtime-assigned model id (the identity cross-request batching
    /// and [`KronError::MixedModelBatch`] reports are keyed on). Ids are
    /// unique across dtypes within one runtime.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Columns a request's `X` must have (`∏ᵢ Pᵢ`).
    pub fn input_cols(&self) -> usize {
        self.inner.k
    }

    /// Columns of every result (`∏ᵢ Qᵢ`).
    pub fn output_cols(&self) -> usize {
        self.inner.l
    }

    /// Number of Kronecker factors.
    pub fn num_factors(&self) -> usize {
        self.inner.shapes.len()
    }

    /// The factor shapes, in Kronecker-product order.
    pub fn shapes(&self) -> &[FactorShape] {
        &self.inner.shapes
    }

    /// Hash of the factor-shape chain — the identity the plan cache and
    /// the per-model metrics registry ([`crate::ModelStats::shape_key`])
    /// key on. Models sharing a shape chain share this key.
    pub fn shape_key(&self) -> u64 {
        self.inner.shape_key
    }
}

/// One-shot result slot a request's reply travels through. Reused across
/// calls by [`Session`], freshly allocated per [`Ticket`].
///
/// The slot also carries the inflight gauge's release side: admission
/// ([`Slot::admit`]) marks one outstanding count held here, and the
/// count is released exactly once — when the waiter claims the reply in
/// [`Slot::take_blocking`], or, for an abandoned [`Ticket`], when the
/// last `Arc` drops.
pub(crate) struct Slot<T: Element> {
    inner: Mutex<SlotInner<T>>,
    ready: Condvar,
    /// The shared counters the inflight gauge lives in.
    stats: Arc<StatsInner>,
}

/// A completed reply: outcome, the recycled buffers, the global serve
/// sequence number, and (for sharded executes) the request's prorated
/// share of the batch's simulated execution — all `Copy` or moved, so
/// replies never allocate.
pub(crate) struct Reply<T: Element> {
    pub(crate) result: Result<()>,
    pub(crate) x: Matrix<T>,
    pub(crate) y: Matrix<T>,
    pub(crate) seq: u64,
    pub(crate) summary: Option<ExecSummary>,
    /// Executes the serving batch went through (1 = first try served).
    pub(crate) attempts: u32,
    /// `{GM, GK}` of the grid the successful execute ran on, `None` for
    /// local (single-device) execution or an unserved request.
    pub(crate) grid: Option<(usize, usize)>,
    /// Per-stage latency breakdown of this request.
    pub(crate) timings: StageTimings,
}

struct SlotInner<T: Element> {
    result: Option<Reply<T>>,
    waiting: bool,
    /// `true` when this slot holds no outstanding inflight count (the
    /// idle default, and again after the waiter claims a reply).
    /// [`Slot::admit`] flips it to `false` per admitted request.
    claimed: bool,
    /// The scheduler lane the outstanding request was admitted on — the
    /// per-lane inflight gauge the release side must decrement.
    lane: usize,
}

impl<T: Element> Slot<T> {
    fn new(stats: Arc<StatsInner>) -> Self {
        Slot {
            inner: Mutex::new(SlotInner {
                result: None,
                waiting: false,
                claimed: true,
                lane: 0,
            }),
            ready: Condvar::new(),
            stats,
        }
    }

    /// Marks one admitted request outstanding on this slot, raising the
    /// global and per-lane inflight gauges — the bypass lane's idleness
    /// signal. Called once per admission, on whichever lane admits.
    pub(crate) fn admit(&self, lane: usize) {
        let mut s = self.inner.lock().unwrap();
        debug_assert!(s.claimed, "slot admitted twice without a claim");
        s.claimed = false;
        s.lane = lane;
        drop(s);
        self.stats.inflight_requests.fetch_add(1, Ordering::Relaxed);
        self.stats
            .lane(lane)
            .inflight
            .fetch_add(1, Ordering::Relaxed);
    }

    /// [`Slot::admit`] for a request whose lane-inflight count is
    /// already held by the bypass lane's CAS claim (see
    /// `Shared::try_bypass`): raises only the global gauge — the claim
    /// *becomes* this slot's lane count, and the release side
    /// ([`Slot::take_blocking`] / [`Slot::drop`]) decrements both
    /// symmetrically.
    pub(crate) fn admit_claimed(&self, lane: usize) {
        let mut s = self.inner.lock().unwrap();
        debug_assert!(s.claimed, "slot admitted twice without a claim");
        s.claimed = false;
        s.lane = lane;
        drop(s);
        self.stats.inflight_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Deposits a reply. Notifies only when a waiter has registered, so
    /// pipelined clients (submit many, wait later) skip the wakeup
    /// syscall on all but the slot they are blocked on.
    pub(crate) fn fill(&self, reply: Reply<T>) {
        let mut s = self.inner.lock().unwrap();
        debug_assert!(s.result.is_none(), "slot filled twice");
        s.result = Some(reply);
        if s.waiting {
            // Notify while holding the lock so the waiter cannot observe
            // the result and drop the slot before this notify lands.
            self.ready.notify_all();
        }
    }

    fn take_blocking(&self) -> Reply<T> {
        let mut s = self.inner.lock().unwrap();
        while s.result.is_none() {
            s.waiting = true;
            s = self.ready.wait(s).unwrap();
        }
        s.waiting = false;
        let reply = s.result.take().expect("checked above");
        // Release-side audit: the `claimed` flag, read and flipped under
        // the slot lock, makes this release and the drop-side release
        // mutually exclusive — claiming here sets `claimed`, so the
        // final `Drop` sees a claimed slot and does not decrement again.
        // Error replies take the same path: a shed or failed request was
        // still admitted once and is released exactly once.
        let release = !s.claimed;
        s.claimed = true;
        let lane = s.lane;
        drop(s);
        if release {
            let prev = self.stats.inflight_requests.fetch_sub(1, Ordering::Relaxed);
            debug_assert!(prev > 0, "global inflight gauge underflow on claim");
            let prev = self
                .stats
                .lane(lane)
                .inflight
                .fetch_sub(1, Ordering::Relaxed);
            debug_assert!(prev > 0, "lane {lane} inflight gauge underflow on claim");
        }
        reply
    }
}

impl<T: Element> Drop for Slot<T> {
    fn drop(&mut self) {
        // An abandoned ticket (submitted, never waited — including one
        // holding an error reply) still releases its inflight count when
        // the last Arc — held by the serving lane until the reply is
        // filled — goes away. `claimed` guarantees single release: it is
        // only `false` between an admit and a `take_blocking` claim, and
        // this drop runs at most once per slot.
        if let Ok(s) = self.inner.get_mut() {
            if !s.claimed {
                let prev = self.stats.inflight_requests.fetch_sub(1, Ordering::Relaxed);
                debug_assert!(prev > 0, "global inflight gauge underflow on slot drop");
                let prev = self
                    .stats
                    .lane(s.lane)
                    .inflight
                    .fetch_sub(1, Ordering::Relaxed);
                debug_assert!(prev > 0, "lane inflight gauge underflow on slot drop");
            }
        }
    }
}

/// Per-request admission-control options.
///
/// Deadlines are absolute microseconds on the runtime's clock timeline
/// (see [`Runtime::now_us`]); form them as `runtime.now_us() + budget`.
/// A request whose deadline has already passed when the scheduler picks
/// it up is shed with [`KronError::DeadlineExceeded`] before any plan
/// lookup or execute. Priorities order service within a scheduling
/// window, across both dtypes: higher-(aged-)priority model groups (and
/// solo requests) drain first, and within one priority level the group
/// with the tightest deadline goes first (see the scheduler docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubmitOptions {
    /// Service priority within a scheduling window; higher drains first.
    /// Default `0`. Waiting raises the *effective* priority (see
    /// [`crate::aged_priority`] and
    /// [`RuntimeConfig::priority_aging_us`]).
    pub priority: u8,
    /// Absolute deadline in microseconds on the runtime's clock, or
    /// `None` for no deadline.
    pub deadline_us: Option<u64>,
}

impl SubmitOptions {
    /// Options with the given priority (no deadline).
    pub fn priority(priority: u8) -> Self {
        SubmitOptions {
            priority,
            ..SubmitOptions::default()
        }
    }

    /// Sets the absolute deadline (microseconds on the runtime's clock).
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }
}

/// One queued request: input, pre-shaped output, admission-control
/// options, the enqueue timestamp (the priority-aging basis), and the
/// reply slot.
pub(crate) struct Request<T: Element> {
    pub(crate) model: Arc<ModelInner<T>>,
    pub(crate) x: Matrix<T>,
    pub(crate) y: Matrix<T>,
    pub(crate) priority: u8,
    pub(crate) deadline_us: Option<u64>,
    /// Clock time the request entered the queue (stamped under the send
    /// gate); `now - enqueued_us` is the queue age priority aging runs on.
    pub(crate) enqueued_us: u64,
    /// Clock time the scheduler pulled the request off the channel —
    /// `drained_us - enqueued_us` is the timeline's queue stage.
    pub(crate) drained_us: u64,
    pub(crate) slot: Arc<Slot<T>>,
}

/// A typed request behind the dtype-erased channel: the enum the sealed
/// [`sealed::ErasedDtype::erase`] hook wraps into and the scheduler's
/// typed lanes unwrap out of. Plain enum dispatch — the wrap is a move,
/// never an allocation.
pub(crate) enum ErasedRequest {
    /// An `f32` request.
    F32(Request<f32>),
    /// An `f64` request.
    F64(Request<f64>),
}

/// Messages on the scheduler's channel. `Shutdown` is always the final
/// message (the gate guarantees no request is sent after it).
pub(crate) enum Msg {
    /// A request to serve, of either dtype.
    Request(ErasedRequest),
    /// Drain what is queued, then exit.
    Shutdown,
}

/// The sealed dtype-erasure hooks behind [`ServeElement`].
///
/// The module is private, so the trait cannot be named (or implemented)
/// outside this crate — which is what keeps the erased enum total: every
/// `T: ServeElement` is exactly one of the two arms, checked nowhere at
/// runtime on the hot path. (The trait is technically reachable as a
/// supertrait of the public [`ServeElement`], so its crate-private method
/// signatures trip `private_interfaces` — allowed deliberately: hiding
/// those types is the point of sealing.)
#[allow(private_interfaces)]
pub(crate) mod sealed {
    use super::{ErasedRequest, Request};
    use crate::cache::{CachedPlan, ErasedPlan};
    use kron_core::Element;

    /// Wrap/unwrap hooks between the typed and erased layers; implemented
    /// for `f32` and `f64` only.
    pub trait ErasedDtype: Element {
        /// Wraps a typed request into the erased channel enum.
        fn erase(req: Request<Self>) -> ErasedRequest;
        /// Wraps a typed cache entry into the erased cache enum.
        fn wrap_plan(plan: CachedPlan<Self>) -> ErasedPlan;
        /// The typed view of an erased cache entry; `None` when the entry
        /// holds the other dtype (unreachable after a dtype-keyed lookup,
        /// handled as a rebuild rather than trusted).
        fn plan_mut(plan: &mut ErasedPlan) -> Option<&mut CachedPlan<Self>>;
    }

    impl ErasedDtype for f32 {
        fn erase(req: Request<Self>) -> ErasedRequest {
            ErasedRequest::F32(req)
        }
        fn wrap_plan(plan: CachedPlan<Self>) -> ErasedPlan {
            ErasedPlan::F32(plan)
        }
        fn plan_mut(plan: &mut ErasedPlan) -> Option<&mut CachedPlan<Self>> {
            match plan {
                ErasedPlan::F32(p) => Some(p),
                ErasedPlan::F64(_) => None,
            }
        }
    }

    impl ErasedDtype for f64 {
        fn erase(req: Request<Self>) -> ErasedRequest {
            ErasedRequest::F64(req)
        }
        fn wrap_plan(plan: CachedPlan<Self>) -> ErasedPlan {
            ErasedPlan::F64(plan)
        }
        fn plan_mut(plan: &mut ErasedPlan) -> Option<&mut CachedPlan<Self>> {
            match plan {
                ErasedPlan::F32(_) => None,
                ErasedPlan::F64(p) => Some(p),
            }
        }
    }
}

/// Scalar types the dtype-erased [`Runtime`] serves: `f32` and `f64`.
///
/// Sealed — the supertrait lives in a private module — because the
/// runtime's erased request enum has exactly one arm per dtype; a foreign
/// `Element` impl could not flow through the channel. Everything generic
/// over request data (`load_model`, `submit`, `Session::call`, …) bounds
/// on this.
pub trait ServeElement: Element + sealed::ErasedDtype {}

impl ServeElement for f32 {}
impl ServeElement for f64 {}

/// One scheduler lane's admission surface: its bounded lock-free ring
/// (both ends — the receiver is cloned by sibling lanes for
/// work-stealing) and its striped gate.
pub(crate) struct LaneHandle {
    pub(crate) tx: Sender<Msg>,
    pub(crate) rx: Receiver<Msg>,
    pub(crate) gate: LaneGate,
}

/// A lock-free admission gate, one per scheduler lane (the striped
/// replacement for the old `Mutex<Gate>`): bit 0 is the closed flag,
/// the remaining bits count senders currently inside the gate (each
/// in-flight sender adds 2). Entering is one `fetch_add`; closing sets
/// the flag and waits for the sender count to drain, after which the
/// closer pushes `Shutdown` — provably the last message on the lane's
/// ring, with no mutex anywhere on the submit path. Being atomic, the
/// gate cannot be poisoned by a panicking thread: submitters racing a
/// scheduler panic get [`KronError::Shutdown`], never a propagated
/// panic (the poisoned-mutex leak the mutex gate had).
pub(crate) struct LaneGate {
    state: AtomicU64,
}

impl LaneGate {
    pub(crate) fn new() -> Self {
        LaneGate {
            state: AtomicU64::new(0),
        }
    }

    /// Registers this thread as an in-flight sender. `false` means the
    /// gate is closed (shutdown or poison) and nothing was registered.
    pub(crate) fn try_enter(&self) -> bool {
        let prev = self.state.fetch_add(2, Ordering::Acquire);
        if prev & 1 != 0 {
            let prev = self.state.fetch_sub(2, Ordering::Release);
            debug_assert!(prev >= 2, "gate sender count underflow backing out");
            return false;
        }
        true
    }

    /// De-registers an in-flight sender (pairs with a successful
    /// [`LaneGate::try_enter`]).
    pub(crate) fn exit(&self) {
        let prev = self.state.fetch_sub(2, Ordering::Release);
        debug_assert!(prev >= 2, "gate sender count underflow on exit");
    }

    /// Whether the gate has been closed (orderly shutdown or poison).
    pub(crate) fn is_closed(&self) -> bool {
        self.state.load(Ordering::Acquire) & 1 != 0
    }

    /// Sets the closed flag without waiting for in-flight senders.
    /// Idempotent. Callers that need the "no sender still pushing"
    /// guarantee follow up with [`LaneGate::senders_drained`] (the
    /// scheduler's poison path drains its ring while waiting, so a
    /// sender blocked on a full ring can finish its push and exit).
    pub(crate) fn begin_close(&self) {
        self.state.fetch_or(1, Ordering::AcqRel);
    }

    /// `true` once no sender is inside a closed gate: every request that
    /// won admission is in the ring, so a message pushed now is the last.
    pub(crate) fn senders_drained(&self) -> bool {
        self.state.load(Ordering::Acquire) == 1
    }

    /// Closes the gate and waits for in-flight senders to drain. Only
    /// safe where the lane's consumer keeps draining the ring (orderly
    /// shutdown) — a sender mid-push on a full ring needs the consumer
    /// to make room before it can exit.
    pub(crate) fn close(&self) {
        self.begin_close();
        while !self.senders_drained() {
            crossbeam::sync::thread::yield_now();
        }
    }
}

/// The bypass lane's idleness claim: CAS the lane's inflight gauge
/// `0 → 1`. `true` means this thread holds the claim — at most one
/// claimant per lane at a time, and only while the lane is idle. The
/// claim either transfers to the admitted slot ([`Slot::admit_claimed`])
/// or is returned via [`bypass_release_claim`]; the two are mutually
/// exclusive by construction (the bypass path does exactly one of them
/// on every exit). Extracted as a free function so the model-check
/// suites drive the identical protocol the submit path runs.
pub(crate) fn bypass_try_claim(lane_inflight: &AtomicU64) -> bool {
    // Acquire on success orders the claim before the idleness-dependent
    // reads that follow (gate state, cached plan); Relaxed on failure —
    // a busy lane just means "go batch", no data is read under it.
    lane_inflight
        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
}

/// Releases a claim taken by [`bypass_try_claim`] that did *not*
/// transfer to a slot (bypass declined: shutdown, poison, cold plan).
pub(crate) fn bypass_release_claim(lane_inflight: &AtomicU64) {
    // Release pairs with the next claimant's Acquire CAS.
    let prev = lane_inflight.fetch_sub(1, Ordering::Release);
    debug_assert!(prev > 0, "bypass claim released twice (gauge underflow)");
}

/// RAII sender registration: exits the gate even if the send path
/// unwinds, so [`LaneGate::close`] can never wait on a dead sender.
struct GateEntry<'a>(&'a LaneGate);

impl Drop for GateEntry<'_> {
    fn drop(&mut self) {
        self.0.exit();
    }
}

/// State shared between the runtime handle, its [`Session`]s, and the
/// per-lane scheduler threads. Dtype-erased: one set of lanes, one
/// cache, one stats surface for all traffic.
pub(crate) struct Shared {
    /// The scheduler lanes. Requests hash to a lane by plan identity
    /// (`lane_of(dtype, shape_key)`), so one model's traffic — and any
    /// linked batch — always lands on one lane's ring.
    lanes: Arc<[LaneHandle]>,
    /// `true` once any scheduler lane died to a panic: every gate is
    /// closed, the dead lane's pending tickets are failed with
    /// [`KronError::Shutdown`], and no new request is ever admitted.
    poisoned: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    /// The plan cache, shared so clients can pin models, sweep idle
    /// entries, and introspect residency without a scheduler round-trip.
    /// Lock order: the cache lock is never taken while holding an entry
    /// lock.
    cache: Arc<Mutex<PlanCache>>,
    clock: Clock,
    /// The observability plane (histograms, registries, flight
    /// recorder), shared with the scheduler, cache, health ledger, and
    /// fault plane.
    hub: Arc<MetricsHub>,
    /// The chaos plane, carried so the bypass lane can build a full
    /// [`ServeCtx`] without a scheduler round-trip.
    plane: Arc<FaultPlane>,
    /// The device-health ledger, for the same reason.
    health: Arc<DeviceHealth>,
    /// The (clamped) runtime configuration: the bypass lane reads its
    /// eligibility switch, linger policy, and batching geometry here.
    cfg: RuntimeConfig,
}

impl Shared {
    /// The scheduler lane serving plan identity `(dtype, shape_key)`.
    pub(crate) fn lane_of_key(&self, dtype: DType, shape_key: u64) -> usize {
        crate::cache::lane_of(dtype, shape_key, self.lanes.len())
    }

    fn send_request<T: ServeElement>(&self, req: Request<T>) -> Result<()> {
        let lane = self.lane_of_key(T::DTYPE, req.model.shape_key);
        self.send_requests(lane, std::iter::once(req))
    }

    /// The inline bypass lane's admission check + engine. Returns the
    /// request back when it must travel the scheduler channel instead:
    /// bypass disabled, results already in flight on the request's lane
    /// (pipelined bursts keep batching), shutdown under way (the send
    /// path reports it), or a plan that is not warm-local. `None` means
    /// the request completed inline — served or shed — and its reply
    /// slot is filled.
    fn try_bypass<T: ServeElement>(
        &self,
        req: Request<T>,
        refs_scratch: &mut Vec<*const Matrix<T>>,
    ) -> Option<Request<T>> {
        if !self.cfg.inline_bypass {
            return Some(req);
        }
        // The idleness gate, per lane: any admitted-but-unclaimed result
        // on *this request's lane* means a pipelined client is building
        // a burst there — keep batching. Eligibility is a CAS *claim*
        // (0 → 1 on the lane's inflight gauge), not a load: two
        // concurrent submitters observing an idle lane cannot both race
        // into the inline path against the same cached entry — exactly
        // one wins the claim, the other batches. The claim transfers to
        // the slot on admission (`Slot::admit_claimed`) and is released
        // on every non-admitting exit below.
        let lane = self.lane_of_key(T::DTYPE, req.model.shape_key);
        let lane_inflight = &self.stats.lane(lane).inflight;
        if !bypass_try_claim(lane_inflight) {
            return Some(req);
        }
        if self.poisoned.load(Ordering::Acquire) || self.lanes[lane].gate.is_closed() {
            // Fall through to the send path, which reports Shutdown.
            bypass_release_claim(lane_inflight);
            return Some(req);
        }
        let ctx = ServeCtx {
            cache: &self.cache,
            stats: &self.stats,
            plane: &self.plane,
            health: &self.health,
            clock: &self.clock,
            hub: &self.hub,
            retry: self.cfg.retry,
            max_batch_rows: self.cfg.max_batch_rows,
            configured_gpus: self.cfg.backend.gpus(),
            window_close_us: self.clock.now_us(),
            lane,
        };
        match crate::scheduler::try_bypass(&ctx, &self.cfg, req, refs_scratch) {
            None => None,
            Some(req) => {
                // Not admitted inline (cold/sharded plan): release the
                // claim; the scheduler send path admits normally.
                bypass_release_claim(lane_inflight);
                Some(req)
            }
        }
    }

    /// Enqueues several requests under one gate registration: either the
    /// whole group is admitted to `lane`'s ring ahead of any `Shutdown`,
    /// or the whole group is rejected — shutdown cannot split a linked
    /// batch. Admission is lock-free (an atomic sender count, then ring
    /// pushes); concurrent producers may interleave *within* the ring,
    /// which batching tolerates (windows group by model, not adjacency),
    /// and a linked batch always lands on one lane (one model → one
    /// lane). Stamps every request's enqueue time (the priority-aging
    /// basis) on entry.
    fn send_requests<T: ServeElement>(
        &self,
        lane: usize,
        reqs: impl Iterator<Item = Request<T>>,
    ) -> Result<()> {
        let handle = &self.lanes[lane];
        if !handle.gate.try_enter() {
            return Err(KronError::Shutdown);
        }
        let entry = GateEntry(&handle.gate);
        let now = self.clock.now_us();
        let dtype_counter = match T::DTYPE {
            DType::F32 => &self.stats.requests_f32,
            DType::F64 => &self.stats.requests_f64,
        };
        for mut req in reqs {
            req.enqueued_us = now;
            self.stats.submitted.fetch_add(1, Ordering::Relaxed);
            dtype_counter.fetch_add(1, Ordering::Relaxed);
            req.slot.admit(lane);
            self.hub.event(
                now,
                ServeEventKind::Admit {
                    dtype: T::DTYPE,
                    model: req.model.id,
                    rows: req.x.rows() as u32,
                    priority: req.priority,
                },
            );
            let _ = handle.tx.send(Msg::Request(T::erase(req)));
        }
        self.stats
            .lane(lane)
            .depth
            .store(handle.tx.len() as u64, Ordering::Relaxed);
        drop(entry);
        Ok(())
    }

    /// Refreshes the per-lane depth gauges from the rings (a cold-path
    /// read at snapshot time; the hot path never maintains a counter).
    fn refresh_depth_gauges(&self) {
        for (i, lane) in self.lanes.iter().enumerate() {
            self.stats
                .lane(i)
                .depth
                .store(lane.tx.len() as u64, Ordering::Relaxed);
        }
    }
}

/// Handle to one result in flight; produced by [`Runtime::submit`].
pub struct Ticket<T: Element> {
    slot: Arc<Slot<T>>,
}

impl<T: Element> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<T: Element> Ticket<T> {
    /// Blocks until the request completes and returns its result matrix.
    ///
    /// # Errors
    /// Whatever execution error the scheduler replied with.
    pub fn wait(self) -> Result<Matrix<T>> {
        let reply = self.slot.take_blocking();
        reply.result.map(|()| reply.y)
    }

    /// Like [`Self::wait`], additionally returning this request's share of
    /// the simulated sharded execution it rode (its prorated
    /// [`ExecSummary`]: simulated seconds, inter-GPU bytes, launches).
    /// `None` when the request was served on a single device, or when the
    /// cost model could not price the per-GPU block shape.
    ///
    /// # Errors
    /// As [`Self::wait`].
    pub fn wait_with_stats(self) -> Result<(Matrix<T>, Option<ExecSummary>)> {
        let reply = self.slot.take_blocking();
        reply.result.map(|()| (reply.y, reply.summary))
    }

    /// Like [`Self::wait`], additionally returning the [`ServeReceipt`]:
    /// the runtime-global serve sequence number (which reveals the order
    /// the scheduler actually served requests in — across both dtypes;
    /// how priority and deadline-ordering tests observe what drained
    /// first) and the sharded execution share of
    /// [`Self::wait_with_stats`].
    ///
    /// # Errors
    /// As [`Self::wait`].
    pub fn wait_with_receipt(self) -> Result<(Matrix<T>, ServeReceipt)> {
        let reply = self.slot.take_blocking();
        reply.result.map(|()| {
            (
                reply.y,
                ServeReceipt {
                    seq: reply.seq,
                    shard: reply.summary,
                    attempts: reply.attempts,
                    grid: reply.grid,
                    timings: reply.timings,
                },
            )
        })
    }
}

/// Serving metadata returned by [`Ticket::wait_with_receipt`].
#[derive(Debug, Clone, Copy)]
pub struct ServeReceipt {
    /// Runtime-global serve sequence number (0-based): the order the
    /// scheduler completed requests in, shared across both dtypes.
    pub seq: u64,
    /// The request's prorated share of its sharded execution, when it
    /// rode one (see [`Ticket::wait_with_stats`]).
    pub shard: Option<ExecSummary>,
    /// How many executes the serving batch went through: `1` means the
    /// first try served; `> 1` means a device fault was retried away
    /// transparently (see [`RetryPolicy`]).
    pub attempts: u32,
    /// `{GM, GK}` of the grid the successful execute ran on — smaller
    /// than the configured grid when the batch was served degraded.
    /// `None` for local (single-device) execution.
    pub grid: Option<(usize, usize)>,
    /// Where this request's microseconds went, stage by stage.
    pub timings: StageTimings,
}

impl std::fmt::Display for ServeReceipt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ServeReceipt {
            seq,
            shard,
            attempts,
            grid,
            timings,
        } = self;
        writeln!(f, "serve receipt")?;
        writeln!(f, "  {:<10} {seq:>12}", "seq")?;
        writeln!(f, "  {:<10} {attempts:>12}", "attempts")?;
        match grid {
            Some((gm, gk)) => writeln!(f, "  {:<10} {:>12}", "grid", format!("{gm}x{gk}"))?,
            None => writeln!(f, "  {:<10} {:>12}", "grid", "local")?,
        }
        match shard {
            Some(s) => writeln!(f, "  {:<10} {:>12}", "shard", format!("{} B", s.comm_bytes))?,
            None => writeln!(f, "  {:<10} {:>12}", "shard", "-")?,
        }
        writeln!(f, "  {:<10} {timings}", "timings")
    }
}

/// A synchronous serving connection with a reusable reply slot and
/// caller-recycled buffers: the allocation-free way to call the runtime.
///
/// One session serves one request at a time (like one connection) —
/// [`Session::call`] takes `&mut self` so the reply slot can never carry
/// two requests at once; concurrency comes from holding several sessions
/// on several threads. A session is typed; hold one per dtype against the
/// same erased runtime to serve mixed traffic.
pub struct Session<T: Element> {
    shared: Arc<Shared>,
    slot: Arc<Slot<T>>,
    last_summary: Option<ExecSummary>,
    /// Reused factor-ref scratch for the inline bypass lane, so a warm
    /// bypassed call allocates nothing (the scheduler's lanes keep their
    /// own; see [`crate::scheduler`]'s `refs_of`).
    refs_scratch: Vec<*const Matrix<T>>,
}

// SAFETY: the raw pointers in `refs_scratch` are transient scratch —
// written and consumed entirely within one `call_with`, never read
// across calls or threads (the same justification as the scheduler's
// `TypedLane`). Every other field is `Send`.
unsafe impl<T: Element> Send for Session<T> {}

impl<T: ServeElement> Session<T> {
    /// The simulated sharded-execution share of this session's most recent
    /// successful [`Session::call`] (see [`Ticket::wait_with_stats`]);
    /// `None` when it was served on a single device. A `Copy` accessor so
    /// the allocation-free call path stays allocation-free.
    pub fn last_shard_summary(&self) -> Option<ExecSummary> {
        self.last_summary
    }
    /// Serves one request synchronously, recycling the caller's buffers:
    /// `x` is the input, `y` receives the result (it must already be
    /// `x.rows() × model.output_cols()`), and both are returned for
    /// reuse. After the first call of a given shape, a call performs zero
    /// heap allocations end to end.
    ///
    /// # Errors
    /// Shape mismatches, or [`KronError::Shutdown`] once the runtime has
    /// shut down. Errors consume the buffers.
    pub fn call(
        &mut self,
        model: &Model<T>,
        x: Matrix<T>,
        y: Matrix<T>,
    ) -> Result<(Matrix<T>, Matrix<T>)> {
        self.call_with(model, x, y, SubmitOptions::default())
    }

    /// [`Session::call`] with explicit admission-control options
    /// (priority and deadline; see [`SubmitOptions`]).
    ///
    /// # Errors
    /// As [`Session::call`], plus [`KronError::DeadlineExceeded`] when
    /// the deadline passed before the scheduler picked the request up.
    pub fn call_with(
        &mut self,
        model: &Model<T>,
        x: Matrix<T>,
        y: Matrix<T>,
        opts: SubmitOptions,
    ) -> Result<(Matrix<T>, Matrix<T>)> {
        validate_request(model, &x)?;
        if y.rows() != x.rows() || y.cols() != model.output_cols() {
            return Err(KronError::ShapeMismatch {
                expected: format!("Y {}×{}", x.rows(), model.output_cols()),
                found: format!("Y {}×{}", y.rows(), y.cols()),
            });
        }
        let req = Request {
            model: Arc::clone(&model.inner),
            x,
            y,
            priority: opts.priority,
            deadline_us: opts.deadline_us,
            enqueued_us: 0,
            drained_us: 0,
            slot: Arc::clone(&self.slot),
        };
        // The low-latency lane: on an idle runtime with a warm plan the
        // call executes inline on this thread — no channel hop, no
        // linger window, no scheduler wake — and stays allocation-free
        // (the refs scratch is reused across calls). Otherwise the
        // request takes the scheduler channel as before.
        if let Some(req) = self.shared.try_bypass(req, &mut self.refs_scratch) {
            self.shared.send_request(req)?;
        }
        let reply = self.slot.take_blocking();
        if reply.result.is_ok() {
            // Failed replies carry no attribution; keep the last
            // successful call's summary, as documented.
            self.last_summary = reply.summary;
        }
        reply.result.map(|()| (reply.x, reply.y))
    }
}

fn validate_request<T: Element>(model: &Model<T>, x: &Matrix<T>) -> Result<()> {
    if x.rows() == 0 {
        return Err(KronError::EmptyDimension {
            what: "request with M = 0 rows".into(),
        });
    }
    if x.cols() != model.input_cols() {
        return Err(KronError::ShapeMismatch {
            expected: format!("X with {} cols", model.input_cols()),
            found: format!("X with {} cols", x.cols()),
        });
    }
    Ok(())
}

/// A persistent Kron-Matmul serving runtime: one or more scheduler lanes
/// ([`RuntimeConfig::scheduler_lanes`]) batching same-model requests of
/// either dtype behind lock-free admission rings, one shape-keyed
/// plan/workspace cache spanning `f32` and `f64`, and compute on the
/// process-wide persistent worker pool. Models, tickets, and sessions
/// stay typed; the runtime itself is not generic, so a deployment serving
/// mixed-dtype traffic runs one admission surface and one cache budget
/// instead of two half-blind ones. See the crate docs for the
/// architecture.
pub struct Runtime {
    shared: Arc<Shared>,
    schedulers: Vec<JoinHandle<()>>,
    next_model_id: AtomicU64,
    plane: Arc<FaultPlane>,
    health: Arc<DeviceHealth>,
    cfg: RuntimeConfig,
}

impl Runtime {
    /// Starts a runtime with the given configuration (spawns the
    /// scheduler thread).
    pub fn new(mut cfg: RuntimeConfig) -> Self {
        cfg.max_batch_rows = cfg.max_batch_rows.max(1);
        cfg.batch_max_m = cfg.batch_max_m.min(cfg.max_batch_rows);
        cfg.max_queue = cfg.max_queue.max(1);
        cfg.cache.max_entries = cfg.cache.max_entries.max(1);
        cfg.scheduler_lanes = cfg.scheduler_lanes.clamp(1, MAX_LANES);
        let stats = Arc::new(StatsInner::new(cfg.scheduler_lanes));
        let health_gpus = match cfg.backend {
            Backend::SingleNode => 0,
            Backend::Distributed { .. } => cfg.backend.gpus(),
        };
        let hub = Arc::new(MetricsHub::new(health_gpus));
        let plane = Arc::new(FaultPlane::new(Arc::clone(&hub)));
        let health = Arc::new(DeviceHealth::new(
            health_gpus,
            cfg.breaker,
            Arc::clone(&hub),
        ));
        let cache = Arc::new(Mutex::new(PlanCache::with_hub(
            cfg.device.clone(),
            &cfg.backend,
            cfg.cache,
            cfg.clock.clone(),
            cfg.device_watchdog_us,
            Arc::clone(&hub),
        )));
        // Each lane's ring holds 2× the drain window, so producers only
        // feel backpressure (a spin in `send`) when a lane is more than
        // one full window behind — at which point siblings are stealing.
        let ring_capacity = cfg.max_queue.saturating_mul(2).max(64);
        let lanes: Arc<[LaneHandle]> = (0..cfg.scheduler_lanes)
            .map(|_| {
                let (tx, rx) = bounded(ring_capacity);
                LaneHandle {
                    tx,
                    rx,
                    gate: LaneGate::new(),
                }
            })
            .collect();
        let poisoned = Arc::new(AtomicBool::new(false));
        let schedulers = (0..cfg.scheduler_lanes)
            .map(|lane| {
                let scheduler = Scheduler::new(
                    lane,
                    Arc::clone(&lanes),
                    Arc::clone(&poisoned),
                    cfg.clone(),
                    Arc::clone(&cache),
                    Arc::clone(&stats),
                    Arc::clone(&plane),
                    Arc::clone(&health),
                    Arc::clone(&hub),
                );
                std::thread::Builder::new()
                    .name(format!("kron-runtime-scheduler-{lane}"))
                    .spawn(move || scheduler.run())
                    .expect("spawn scheduler thread")
            })
            .collect();
        Runtime {
            shared: Arc::new(Shared {
                lanes,
                poisoned,
                stats,
                cache,
                clock: cfg.clock.clone(),
                hub,
                plane: Arc::clone(&plane),
                health: Arc::clone(&health),
                cfg: cfg.clone(),
            }),
            schedulers,
            next_model_id: AtomicU64::new(0),
            plane,
            health,
            cfg,
        }
    }

    /// Starts a runtime with [`RuntimeConfig::default`].
    pub fn with_defaults() -> Self {
        Runtime::new(RuntimeConfig::default())
    }

    /// The configuration this runtime is running with (after clamping).
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Registers a factor set to serve requests against. The model is
    /// typed (`f32` or `f64`); any mix of loaded models is served by this
    /// one runtime.
    ///
    /// # Errors
    /// [`KronError::NoFactors`] / [`KronError::EmptyDimension`] for
    /// degenerate factor sets.
    pub fn load_model<T: ServeElement>(&self, factors: Vec<Matrix<T>>) -> Result<Model<T>> {
        let id = self.next_model_id.fetch_add(1, Ordering::Relaxed);
        Ok(Model {
            inner: Arc::new(ModelInner::build(id, factors)?),
        })
    }

    /// Enqueues `Y = X · (F1 ⊗ … ⊗ FN)` and returns a [`Ticket`] for the
    /// result. Same-model small-`M` submissions in flight together are
    /// batched into one fused execute; requests of the other dtype
    /// interleave through the same scheduler without affecting this
    /// request's numerics.
    ///
    /// # Errors
    /// Shape mismatches against the model, or [`KronError::Shutdown`].
    pub fn submit<T: ServeElement>(&self, model: &Model<T>, x: Matrix<T>) -> Result<Ticket<T>> {
        self.submit_with(model, x, SubmitOptions::default())
    }

    /// [`Runtime::submit`] with explicit admission-control options: a
    /// service priority (higher drains first within a scheduling window,
    /// aged by queue time — see [`crate::aged_priority`]) and an absolute
    /// deadline on the runtime's clock (see [`Runtime::now_us`]); a
    /// request whose deadline has already passed when the scheduler picks
    /// it up is shed with [`KronError::DeadlineExceeded`] without
    /// executing, and within a window tighter-deadline groups are served
    /// first at equal priority.
    ///
    /// # Errors
    /// As [`Runtime::submit`].
    pub fn submit_with<T: ServeElement>(
        &self,
        model: &Model<T>,
        x: Matrix<T>,
        opts: SubmitOptions,
    ) -> Result<Ticket<T>> {
        validate_request(model, &x)?;
        let y = Matrix::zeros(x.rows(), model.output_cols());
        let slot = Arc::new(Slot::new(Arc::clone(&self.shared.stats)));
        let req = Request {
            model: Arc::clone(&model.inner),
            x,
            y,
            priority: opts.priority,
            deadline_us: opts.deadline_us,
            enqueued_us: 0,
            drained_us: 0,
            slot: Arc::clone(&slot),
        };
        // The low-latency lane: an idle runtime with a warm plan serves
        // the request inline right here (the ticket is already filled
        // when it returns); under load — or cold — the request takes
        // the scheduler channel. The submit path allocates regardless
        // (y, the slot), so a fresh refs scratch costs nothing extra;
        // the allocation-free inline path is `Session::call`.
        let mut refs_scratch = Vec::new();
        match self.shared.try_bypass(req, &mut refs_scratch) {
            None => Ok(Ticket { slot }),
            Some(req) => {
                self.shared.send_request(req)?;
                Ok(Ticket { slot })
            }
        }
    }

    /// Synchronous convenience: submit and wait.
    ///
    /// # Errors
    /// As [`Runtime::submit`].
    pub fn execute<T: ServeElement>(&self, model: &Model<T>, x: Matrix<T>) -> Result<Matrix<T>> {
        self.submit(model, x)?.wait()
    }

    /// Submits several requests against **one** model as a linked batch:
    /// all of them enter the scheduler's queue atomically (one gate
    /// acquisition), so they are contiguous in the queue and shutdown can
    /// never split the group — every linked request is either all
    /// accepted or all rejected. Contiguity makes co-batching into one
    /// execute the overwhelmingly common case, but it is not a guarantee:
    /// a scheduler that wakes mid-enqueue may serve the group across
    /// consecutive windows (and a group wider than `max_batch_rows`
    /// always chunks). Returns one [`Ticket`] per request, in submission
    /// order.
    ///
    /// # Errors
    /// [`KronError::MixedModelBatch`] when the requests do not all target
    /// the same model (row-stacking is only valid against one factor
    /// set); shape mismatches; [`KronError::Shutdown`]. On any error,
    /// nothing is enqueued.
    pub fn submit_linked<T: ServeElement>(
        &self,
        batch: Vec<(&Model<T>, Matrix<T>)>,
    ) -> Result<Vec<Ticket<T>>> {
        self.submit_linked_with(batch, SubmitOptions::default())
    }

    /// [`Runtime::submit_linked`] with one set of admission-control
    /// options for the whole group: every linked request inherits the
    /// same priority and the same deadline atomically. Deadlines are
    /// checked once per scheduling window, so within the window that
    /// picks the group up the outcome is uniform — timely and every
    /// member executes, or late and every member is shed with
    /// [`KronError::DeadlineExceeded`]. A group too wide for one drain
    /// window (more requests than `max_queue`, or arriving as a window
    /// fills) is served across consecutive windows like any linked
    /// batch, and a deadline that expires *between* those windows sheds
    /// only the not-yet-served remainder — size deadline budgets to
    /// cover the whole group's service time.
    ///
    /// # Errors
    /// As [`Runtime::submit_linked`].
    pub fn submit_linked_with<T: ServeElement>(
        &self,
        batch: Vec<(&Model<T>, Matrix<T>)>,
        opts: SubmitOptions,
    ) -> Result<Vec<Ticket<T>>> {
        if let Some((first, _)) = batch.first() {
            let first_id = first.id();
            for (model, _) in &batch {
                if model.id() != first_id {
                    return Err(KronError::MixedModelBatch {
                        first: first_id,
                        conflicting: model.id(),
                    });
                }
            }
        }
        for (model, x) in &batch {
            validate_request(model, x)?;
        }
        // One model => one lane: the whole linked group lands on one
        // ring, so one drain window can pick it up together.
        let lane = batch
            .first()
            .map(|(model, _)| self.shared.lane_of_key(T::DTYPE, model.inner.shape_key))
            .unwrap_or(0);
        let mut tickets = Vec::with_capacity(batch.len());
        let reqs: Vec<Request<T>> = batch
            .into_iter()
            .map(|(model, x)| {
                let y = Matrix::zeros(x.rows(), model.output_cols());
                let slot = Arc::new(Slot::new(Arc::clone(&self.shared.stats)));
                tickets.push(Ticket {
                    slot: Arc::clone(&slot),
                });
                Request {
                    model: Arc::clone(&model.inner),
                    x,
                    y,
                    priority: opts.priority,
                    deadline_us: opts.deadline_us,
                    enqueued_us: 0,
                    drained_us: 0,
                    slot,
                }
            })
            .collect();
        self.shared.send_requests(lane, reqs.into_iter())?;
        Ok(tickets)
    }

    /// Arms a one-shot fault on simulated device `gpu`: the next sharded
    /// execute raises (and catches) a panic on that device, failing that
    /// attempt with [`KronError::DeviceFailure`] while every other batch —
    /// before, after, or on other models — is unaffected. Under the
    /// default [`RetryPolicy`] the client never sees the fault (the batch
    /// is retried transparently); set `max_attempts: 0` to surface it.
    /// No-op on the [`Backend::SingleNode`] runtime (there is no device
    /// to fault). Sugar for a one-event [`FaultPlan`] — see
    /// [`Runtime::install_fault_plan`] for scripted chaos.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] when `gpu` is outside the configured
    /// grid — an out-of-range fault could otherwise never fire and would
    /// stay armed forever, silently defeating the drill.
    pub fn inject_device_fault(&self, gpu: usize) -> Result<()> {
        if let Backend::Distributed { gpus, .. } = self.cfg.backend {
            if gpu >= gpus {
                return Err(KronError::InvalidGrid {
                    reason: format!("device {gpu} outside a {gpus} GPU machine"),
                });
            }
        }
        self.plane.push(FaultEvent {
            gpu,
            trigger: FaultTrigger::OnShardedBatch(self.plane.current_batch()),
            repeat: 1,
            kind: FaultKind::Panic,
        });
        Ok(())
    }

    /// Installs a scripted [`FaultPlan`], replacing any pending events:
    /// each event fires deterministically on its trigger (the Nth sharded
    /// execute since runtime start, or a clock time), `repeat` times,
    /// injecting a device panic, a device stall (caught by the engine
    /// watchdog as [`KronError::DeviceTimeout`]), or a scheduler-thread
    /// panic. The chaos plane for repeatable self-healing drills; see the
    /// crate docs.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] when a device event names a device
    /// outside the configured grid (as [`Runtime::inject_device_fault`]);
    /// [`KronError::EmptyDimension`] when an event has `repeat == 0`.
    pub fn install_fault_plan(&self, plan: FaultPlan) -> Result<()> {
        for event in &plan.events {
            if event.repeat == 0 {
                return Err(KronError::EmptyDimension {
                    what: "fault-plan event repeat count".into(),
                });
            }
            if matches!(event.kind, FaultKind::SchedulerPanic) {
                continue;
            }
            if let Backend::Distributed { gpus, .. } = self.cfg.backend {
                if event.gpu >= gpus {
                    return Err(KronError::InvalidGrid {
                        reason: format!(
                            "fault-plan device {} outside a {gpus} GPU machine",
                            event.gpu
                        ),
                    });
                }
            }
        }
        self.plane.install(plan);
        Ok(())
    }

    /// Scripted fault events still pending (not yet fired). `0` once a
    /// plan has fully played out — how chaos drills assert the script
    /// actually ran.
    pub fn pending_fault_events(&self) -> usize {
        self.plane.pending()
    }

    /// Per-device health snapshot: consecutive failures, circuit-breaker
    /// state, and lifetime trip count for every simulated device (empty
    /// under [`Backend::SingleNode`]). Read-only and clock-consistent
    /// with [`Runtime::now_us`]; see the crate docs for breaker
    /// semantics.
    pub fn device_health(&self) -> Vec<DeviceHealthReport> {
        self.health.report(self.shared.clock.now_us())
    }

    /// Current time in microseconds on this runtime's [`Clock`] — the
    /// timeline [`SubmitOptions::deadline_us`] deadlines are measured on.
    /// Form deadlines as `runtime.now_us() + budget_us`.
    pub fn now_us(&self) -> u64 {
        self.shared.clock.now_us()
    }

    /// Builds (if absent) and pins the plan-cache entry serving `model`'s
    /// shape at the batch row capacity. While the returned [`ModelPin`]
    /// is alive the entry is exempt from LRU, byte-budget, and idle
    /// eviction — its plan, workspaces, and (under the `Distributed`
    /// backend) sharded engine stay warm however many other shapes *of
    /// either dtype* rotate through a bounded cache. Dropping the pin
    /// re-subjects the entry to policy.
    ///
    /// Also an explicit pre-warm: a sharded entry executes one throwaway
    /// batch here, so the first real request pays neither planning,
    /// engine construction, nor first-touch staging — and a device that
    /// faults during the warm-up run fails *this* call (the broken engine
    /// is evicted and the failure recorded against the device) instead of
    /// leaving a pinned dead engine for the first request to trip over.
    ///
    /// # Errors
    /// Whatever building the entry can raise (e.g. the documented
    /// [`KronError::InvalidGrid`] on a misconfigured distributed backend,
    /// or [`KronError::CacheBudgetExceeded`] for an entry larger than the
    /// whole byte budget), plus [`KronError::DeviceFailure`] /
    /// [`KronError::DeviceTimeout`] when a device faults during the
    /// pre-warm execute.
    pub fn pin_model<T: ServeElement>(&self, model: &Model<T>) -> Result<ModelPin> {
        let now = self.shared.clock.now_us();
        let limit = self.health.allowed_gpus(now, self.cfg.backend.gpus());
        let capacity = self.cfg.max_batch_rows;
        let pinned = {
            let mut cache = self.shared.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.get_or_create(&model.inner, capacity, limit, &self.shared.stats)?
        };
        // Pre-warm execute (sharded entries only: a local workspace has
        // no lazily-allocated staging or fabric to warm, and no device to
        // fault). Zero input — the output is discarded.
        let warm_result = {
            let mut guard = pinned.lock();
            match <T as sealed::ErasedDtype>::plan_mut(&mut guard) {
                Some(entry) if entry.is_sharded() => {
                    entry.batch_buffers().0.as_mut_slice().fill(T::ZERO);
                    arm_scripted_fault(entry, &self.plane, now);
                    let refs: Vec<&Matrix<T>> = model.inner.factors().iter().collect();
                    let rows = entry.grid().map_or(1, |g| g.gm);
                    entry.run_batch(&refs, rows)
                }
                _ => Ok(()),
            }
        };
        if let Err(err) = warm_result {
            // Drop the pin first so the evicted entry tears down.
            drop(pinned);
            if let KronError::DeviceFailure { gpu, .. } | KronError::DeviceTimeout { gpu, .. } =
                &err
            {
                let fault_now = self.shared.clock.now_us();
                let timeout = matches!(err, KronError::DeviceTimeout { .. });
                self.shared.hub.record_device_fault(*gpu, timeout);
                self.shared.hub.event(
                    fault_now,
                    ServeEventKind::Fault {
                        gpu: *gpu as u32,
                        timeout,
                    },
                );
                if self.health.record_failure(*gpu, fault_now) {
                    self.shared
                        .stats
                        .breaker_trips
                        .fetch_add(1, Ordering::Relaxed);
                }
                let mut cache = self.shared.cache.lock().unwrap_or_else(|e| e.into_inner());
                cache.evict_failed(
                    T::DTYPE,
                    model.inner.shape_key,
                    capacity,
                    &self.shared.stats,
                );
            }
            return Err(err);
        }
        Ok(ModelPin { _pinned: pinned })
    }

    /// Runs an idle sweep of the plan cache now (the scheduler also
    /// sweeps at the start of every serve cycle): evicts unpinned entries
    /// of either dtype idle longer than the policy's `max_idle_us` on the
    /// runtime's clock, tearing down their workspaces/engines. Returns
    /// how many entries were evicted. A no-op when idle eviction is
    /// disabled.
    pub fn sweep(&self) -> usize {
        let mut cache = self.shared.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.sweep_idle(&self.shared.stats)
    }

    /// Number of plan-cache entries currently resident across both dtypes
    /// (each owns a workspace or a sharded engine).
    pub fn cached_entries(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Estimated bytes resident across every plan-cache entry — the
    /// ledger [`CachePolicy::max_bytes`] budgets against (also the
    /// [`RuntimeStats::cached_bytes`] gauge).
    pub fn cached_bytes(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .resident_bytes()
    }

    /// Snapshot of the structural identities ([`PlanKey`]s, which carry
    /// the dtype) of every resident plan-cache entry.
    pub fn cache_keys(&self) -> Vec<PlanKey> {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
    }

    /// Opens a typed [`Session`]: a synchronous connection with a
    /// reusable reply slot, for allocation-free steady-state serving.
    /// Hold one session per dtype to serve mixed traffic through this
    /// runtime. Sessions outlive shutdown gracefully (calls then return
    /// [`KronError::Shutdown`]).
    pub fn session<T: ServeElement>(&self) -> Session<T> {
        Session {
            slot: Arc::new(Slot::new(Arc::clone(&self.shared.stats))),
            shared: Arc::clone(&self.shared),
            last_summary: None,
            refs_scratch: Vec::new(),
        }
    }

    /// Snapshot of the serving counters (spanning both dtypes; see
    /// [`RuntimeStats::requests_f32`]/[`RuntimeStats::requests_f64`] for
    /// the split, and [`RuntimeStats::lanes`] for the per-lane view).
    pub fn stats(&self) -> RuntimeStats {
        self.shared.refresh_depth_gauges();
        self.shared.stats.snapshot()
    }

    /// The scheduler lane serving `model`'s traffic: the stable hash of
    /// its plan identity (`(dtype, shape_key)`) over
    /// [`RuntimeConfig::scheduler_lanes`]. Index into
    /// [`RuntimeStats::lanes`] with this to read one model's lane
    /// counters; always `0` on a single-lane runtime.
    pub fn lane_for<T: ServeElement>(&self, model: &Model<T>) -> usize {
        self.shared.lane_of_key(T::DTYPE, model.inner.shape_key)
    }

    /// One coherent view of everything the runtime measures: lifetime
    /// counters, per-stage and per-outcome latency histograms with
    /// percentile readout, the per-model registry, and per-device health
    /// and metrics. Renders to stable JSON ([`MetricsSnapshot::to_json`])
    /// or Prometheus text ([`MetricsSnapshot::to_prometheus`]). Cold
    /// path: snapshotting allocates; recording never does.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let hub = &self.shared.hub;
        self.shared.refresh_depth_gauges();
        MetricsSnapshot {
            at_us: self.shared.clock.now_us(),
            stats: self.shared.stats.snapshot(),
            stages: Stage::ALL
                .iter()
                .map(|&st| (st, hub.stage_snapshot(st)))
                .collect(),
            outcomes: Outcome::ALL
                .iter()
                .map(|&o| (o, hub.outcome_snapshot(o)))
                .collect(),
            models: hub.model_stats(),
            devices: self.device_health(),
        }
    }

    /// Per-plan-key serving stats from the bounded model registry:
    /// serves, errors, plan hits/misses, and an end-to-end latency
    /// histogram per `(dtype, shape_key, capacity)` — match entries to a
    /// handle via [`Model::shape_key`]. Past the registry's bound, new
    /// keys aggregate into a single overflow row.
    pub fn model_stats(&self) -> Vec<ModelStats> {
        self.shared.hub.model_stats()
    }

    /// Drains the flight recorder: every [`ServeEvent`] recorded since
    /// the last drain (bounded by the ring's capacity — the oldest
    /// events are overwritten under sustained load), in causal record
    /// order. The post-mortem trace for chaos drills and test failures.
    pub fn drain_events(&self) -> Vec<ServeEvent> {
        self.shared.hub.drain_events()
    }

    /// Graceful shutdown: every request already accepted is served, then
    /// the scheduler exits and this call returns. Subsequent calls through
    /// surviving [`Session`]s fail with [`KronError::Shutdown`]. Dropping
    /// the runtime does the same implicitly.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        let handles = std::mem::take(&mut self.schedulers);
        if handles.is_empty() {
            return;
        }
        for lane in self.shared.lanes.iter() {
            // Close the striped gate and wait for in-flight senders to
            // finish their pushes, then send Shutdown: it is provably
            // the last message on this lane's ring. A poisoned
            // (panicked) lane never reads it — its gate was closed and
            // ring drained at poison time, so the push lands in an
            // empty ring nobody consumes and the join below observes
            // the already-dead thread.
            lane.gate.close();
            let _ = lane.tx.send(Msg::Shutdown);
        }
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.close();
    }
}

/// RAII pin on one model's plan-cache entry, from [`Runtime::pin_model`]:
/// while alive, the entry is exempt from LRU, byte-budget, and idle
/// eviction and its execution state stays warm. Dropping releases the
/// pin. Not generic — the pin holds the erased entry, so pins for models
/// of different dtypes can live in one collection.
pub struct ModelPin {
    _pinned: PinnedEntry,
}

impl std::fmt::Debug for ModelPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelPin").finish_non_exhaustive()
    }
}
