//! The engine abstraction every system in the evaluation implements.

use gpu_sim::device::DeviceSpec;
use gpu_sim::ExecReport;
use kron_core::{Element, KronProblem, Matrix, Result};

/// A Kron-Matmul engine: something that can compute `X · (⊗ᵢFᵢ)` and
/// price itself on a simulated device.
pub trait Engine<T: Element> {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Computes the result (functionally, on the CPU).
    ///
    /// # Errors
    /// Shape errors when operands disagree with each other.
    fn execute(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>>;

    /// Simulated execution report for `problem` on this engine's device.
    ///
    /// # Errors
    /// Planning/occupancy errors for shapes the engine cannot host.
    fn simulate(&self, problem: &KronProblem) -> Result<ExecReport>;
}

/// [`Engine`] adapter over [`fastkron_core::FastKron`] plans.
pub struct FastKronEngine {
    device: DeviceSpec,
    fusion: bool,
}

impl FastKronEngine {
    /// FastKron with all optimizations on `device`.
    pub fn new(device: &DeviceSpec) -> Self {
        FastKronEngine {
            device: device.clone(),
            fusion: true,
        }
    }

    /// The paper's "FastKron-wo-Fuse" ablation.
    pub fn without_fusion(device: &DeviceSpec) -> Self {
        FastKronEngine {
            device: device.clone(),
            fusion: false,
        }
    }

    /// Builds the autotuned plan for `problem` (exposed so callers can
    /// inspect stages or reuse the plan across calls).
    ///
    /// # Errors
    /// Tuning errors when no configuration fits the device.
    pub fn plan<T: Element>(&self, problem: &KronProblem) -> Result<fastkron_core::KronPlan<T>> {
        if self.fusion {
            fastkron_core::FastKron::plan::<T>(problem, &self.device)
        } else {
            fastkron_core::FastKron::plan_unfused::<T>(problem, &self.device)
        }
    }
}

impl<T: Element> Engine<T> for FastKronEngine {
    fn name(&self) -> &'static str {
        if self.fusion {
            "FastKron"
        } else {
            "FastKron-wo-Fuse"
        }
    }

    fn execute(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        fastkron_core::algorithm::kron_matmul_fastkron(x, factors)
    }

    fn simulate(&self, problem: &KronProblem) -> Result<ExecReport> {
        let mut report = self.plan::<T>(problem)?.simulate()?;
        report.engine = <Self as Engine<T>>::name(self).to_string();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::V100;

    #[test]
    fn names() {
        let e = FastKronEngine::new(&V100);
        assert_eq!(Engine::<f32>::name(&e), "FastKron");
        let w = FastKronEngine::without_fusion(&V100);
        assert_eq!(Engine::<f32>::name(&w), "FastKron-wo-Fuse");
    }

    #[test]
    fn fusion_ablation_differs_in_launch_count() {
        let problem = KronProblem::uniform(16, 8, 4).unwrap();
        let fused = FastKronEngine::new(&V100);
        let unfused = FastKronEngine::without_fusion(&V100);
        let rf = Engine::<f32>::simulate(&fused, &problem).unwrap();
        let ru = Engine::<f32>::simulate(&unfused, &problem).unwrap();
        assert!(rf.launches < ru.launches);
        assert_eq!(ru.launches, 4);
    }
}
