//! Row-major dense matrix with the reshape/transpose primitives the shuffle
//! algorithm is made of.

use crate::element::Element;
use crate::error::{KronError, Result};
use std::ops::{Index, IndexMut};

/// A row-major dense matrix.
///
/// Element `(r, c)` lives at linear index `r * cols + c`. All engines in the
/// workspace exchange data in this layout, which matches both NumPy's default
/// and the layout assumed throughout the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T: Element> Matrix<T> {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![T::ZERO; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    /// Returns [`KronError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(KronError::ShapeMismatch {
                expected: format!("{rows}×{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { T::ONE } else { T::ZERO })
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reinterprets the matrix with a new shape holding the same number of
    /// elements (a zero-copy `reshape`, step (a)/(c) of the shuffle
    /// algorithm).
    ///
    /// # Errors
    /// Returns [`KronError::ShapeMismatch`] if the element count differs.
    pub fn reshape(self, rows: usize, cols: usize) -> Result<Self> {
        if rows * cols != self.data.len() {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                found: format!("{rows}×{cols} = {}", rows * cols),
            });
        }
        Ok(Matrix {
            data: self.data,
            rows,
            cols,
        })
    }

    /// Borrows the matrix under a different shape with the same element
    /// count — the zero-copy, zero-move sibling of [`Matrix::reshape`] for
    /// when the matrix must stay usable afterwards (the fused execution
    /// path reshapes workspace buffers this way every factor step).
    ///
    /// # Errors
    /// Returns [`KronError::ShapeMismatch`] if the element count differs.
    pub fn reshaped_view(&self, rows: usize, cols: usize) -> Result<MatrixView<'_, T>> {
        if rows * cols != self.data.len() {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                found: format!("{rows}×{cols} = {}", rows * cols),
            });
        }
        Ok(MatrixView {
            data: &self.data,
            rows,
            cols,
        })
    }

    /// Mutable sibling of [`Matrix::reshaped_view`].
    ///
    /// # Errors
    /// Returns [`KronError::ShapeMismatch`] if the element count differs.
    pub fn reshaped_view_mut(&mut self, rows: usize, cols: usize) -> Result<MatrixViewMut<'_, T>> {
        if rows * cols != self.data.len() {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                found: format!("{rows}×{cols} = {}", rows * cols),
            });
        }
        Ok(MatrixViewMut {
            data: &mut self.data,
            rows,
            cols,
        })
    }

    /// Full matrix transpose (rows ↔ columns).
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Views the matrix as an `rows × d1 × d2` tensor (so `cols == d1 * d2`)
    /// and exchanges the two inner dimensions — step (b) of the shuffle
    /// algorithm (`trans(reshape(Y, M×d1×d2), 1, 2)` in paper Figure 1).
    ///
    /// # Errors
    /// Returns [`KronError::ShapeMismatch`] if `d1 * d2 != cols`.
    pub fn transpose_inner(&self, d1: usize, d2: usize) -> Result<Self> {
        if d1 * d2 != self.cols {
            return Err(KronError::ShapeMismatch {
                expected: format!("cols = {}", self.cols),
                found: format!("d1×d2 = {}×{} = {}", d1, d2, d1 * d2),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for i in 0..d1 {
                for j in 0..d2 {
                    dst[j * d1 + i] = src[i * d2 + j];
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute element value, widened to f64 (for tolerances).
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .fold(0.0_f64, |acc, v| acc.max(v.to_f64().abs()))
    }

    /// Frobenius norm, widened to f64.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| {
                let x = v.to_f64();
                x * x
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// A borrowed row-major matrix: somebody else's buffer viewed under a
/// shape. Produced by [`Matrix::reshaped_view`]; lets algorithms reinterpret
/// a buffer (e.g. `M×K` as `(M·K/P)×P`) without moving or copying it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixView<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
}

impl<'a, T: Element> MatrixView<'a, T> {
    /// Wraps an existing row-major buffer under a shape.
    ///
    /// # Errors
    /// Returns [`KronError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [T]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(KronError::ShapeMismatch {
                expected: format!("{rows}×{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(MatrixView { data, rows, cols })
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &'a [T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies the viewed data into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix<T> {
        Matrix {
            data: self.data.to_vec(),
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl<T: Element> Index<(usize, usize)> for MatrixView<'_, T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

/// Mutable sibling of [`MatrixView`], produced by
/// [`Matrix::reshaped_view_mut`].
#[derive(Debug)]
pub struct MatrixViewMut<'a, T> {
    data: &'a mut [T],
    rows: usize,
    cols: usize,
}

impl<'a, T: Element> MatrixViewMut<'a, T> {
    /// Wraps an existing mutable row-major buffer under a shape.
    ///
    /// # Errors
    /// Returns [`KronError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a mut [T]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(KronError::ShapeMismatch {
                expected: format!("{rows}×{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(MatrixViewMut { data, rows, cols })
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data
    }

    /// Mutably borrow row `r` as a slice.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reborrows as an immutable [`MatrixView`].
    pub fn as_view(&self) -> MatrixView<'_, T> {
        MatrixView {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl<T: Element> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T: Element> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::<f64>::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::<f32>::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::<f32>::from_vec(2, 2, vec![1.0; 5]),
            Err(KronError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = Matrix::<f32>::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn reshape_preserves_row_major_order() {
        let m = Matrix::<f64>::from_fn(2, 6, |r, c| (r * 6 + c) as f64);
        let r = m.clone().reshape(4, 3).unwrap();
        assert_eq!(r[(0, 0)], 0.0);
        assert_eq!(r[(1, 0)], 3.0);
        assert_eq!(r[(3, 2)], 11.0);
        assert!(m.reshape(5, 3).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::<f64>::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_inner_swaps_tensor_dims() {
        // One row viewed as 2×3 tensor: [[0,1,2],[3,4,5]] -> 3×2 [[0,3],[1,4],[2,5]]
        let m = Matrix::<f64>::from_fn(1, 6, |_, c| c as f64);
        let t = m.transpose_inner(2, 3).unwrap();
        assert_eq!(t.row(0), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        assert!(m.transpose_inner(4, 2).is_err());
    }

    #[test]
    fn transpose_inner_involution_with_swapped_dims() {
        let m = Matrix::<f32>::from_fn(3, 12, |r, c| ((r * 12 + c) % 7) as f32);
        let once = m.transpose_inner(3, 4).unwrap();
        let twice = once.transpose_inner(4, 3).unwrap();
        assert_eq!(twice, m);
    }

    #[test]
    fn reshaped_view_borrows_without_copy() {
        let m = Matrix::<f64>::from_fn(2, 6, |r, c| (r * 6 + c) as f64);
        let v = m.reshaped_view(4, 3).unwrap();
        assert_eq!((v.rows(), v.cols()), (4, 3));
        assert_eq!(v[(1, 0)], 3.0);
        assert_eq!(v.row(3), &[9.0, 10.0, 11.0]);
        // Same backing storage, not a copy.
        assert!(std::ptr::eq(v.as_slice(), m.as_slice()));
        assert_eq!(v.to_matrix(), m.clone().reshape(4, 3).unwrap());
        assert!(m.reshaped_view(5, 3).is_err());
    }

    #[test]
    fn reshaped_view_mut_writes_through() {
        let mut m = Matrix::<f32>::zeros(2, 6);
        {
            let mut v = m.reshaped_view_mut(3, 4).unwrap();
            assert_eq!((v.rows(), v.cols()), (3, 4));
            v.row_mut(2)[1] = 7.0;
            assert_eq!(v.as_view()[(2, 1)], 7.0);
            assert_eq!(v.as_slice().len(), 12);
        }
        assert_eq!(m[(1, 3)], 7.0);
        assert!(m.reshaped_view_mut(5, 3).is_err());
    }

    #[test]
    fn view_construction_validates_length() {
        let buf = [1.0f64, 2.0, 3.0, 4.0];
        let v = MatrixView::new(2, 2, &buf).unwrap();
        assert_eq!(v[(1, 1)], 4.0);
        assert!(MatrixView::new(3, 2, &buf).is_err());
        let mut buf2 = [0.0f64; 4];
        let mv = MatrixViewMut::new(2, 2, &mut buf2).unwrap();
        assert_eq!(mv.rows(), 2);
        assert!(MatrixViewMut::new(1, 3, &mut buf2).is_err());
    }

    #[test]
    fn norms() {
        let m = Matrix::<f64>::from_vec(1, 3, vec![3.0, -4.0, 0.0]).unwrap();
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.frobenius_norm(), 5.0);
    }
}
