//! Model-checked replacements for `std::sync`: atomics with C11-style
//! store histories, fences, and a schedulable `Mutex`/`Condvar` pair.
//!
//! Every operation is a schedule point. Atomic loads may legally return
//! *any* store not yet superseded for the loading thread under the
//! happens-before relation (tracked with vector clocks), so relaxed-
//! ordering bugs — stale reads a `SeqCst` fence would have forbidden —
//! show up as explorable branches rather than one-in-a-million
//! timing accidents. Deviations from C11, all conservative and
//! documented in the crate docs: modification order equals execution
//! order, RMW failure paths read the latest store, `compare_exchange_weak`
//! never fails spuriously, and fences of every ordering join through one
//! global fence clock.

use crate::exec::{
    register_object, with_ctx, Blocked, Execution, ObjState, PointKind, VClock, MAX_THREADS,
};
use std::cell::UnsafeCell as StdUnsafeCell;
use std::sync::Mutex as StdMutex;
use std::time::Duration;

pub use std::sync::Arc;

/// Model-checked atomic types and fences, mirroring `std::sync::atomic`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::*;

    fn is_acquire(o: Ordering) -> bool {
        matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }
    fn is_release(o: Ordering) -> bool {
        matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    struct Store {
        val: u64,
        /// Release clock acquire-loads join with (release-sequence
        /// continuation included).
        sync: VClock,
        /// Writer identity, for happens-before visibility pruning.
        tid: usize,
        tick: u32,
    }

    /// Consecutive stale (non-newest) loads a thread may take from one
    /// atomic before the model forces the coherence-newest store. Real
    /// hardware propagates stores in finite time; without this bound a
    /// model spin loop re-reading a stale value branches unboundedly
    /// (every re-read would fork the schedule until the branch budget
    /// overflows). Two consecutive stale reads are enough to exercise
    /// every staleness-dependent protocol step in the suites.
    const STALE_REREAD_BOUND: u8 = 2;

    struct Inner {
        stores: Vec<Store>,
        /// Read-coherence floor per thread: a thread never reads an
        /// index below what it has already read.
        read_floor: [usize; MAX_THREADS],
        /// Index of the latest `SeqCst` store (an `SeqCst` load may not
        /// read anything older).
        last_sc: Option<usize>,
        /// Consecutive stale loads per thread (see [`STALE_REREAD_BOUND`]).
        stale_reads: [u8; MAX_THREADS],
    }

    /// The shared core of every model atomic; values are widened to u64.
    pub(super) struct AtomicCore {
        inner: StdMutex<Inner>,
    }

    impl AtomicCore {
        pub(super) fn new(init: u64) -> Self {
            // Creation happens-before every operation: the creating
            // thread's clock stamps the initial store when available
            // (object construction inside `model` is required for ops,
            // but construction itself is tolerated anywhere so facade
            // types can be built in test scaffolding).
            let (sync, tid, tick) = crate::exec::try_with_ctx(|ctx| {
                let core = ctx.exec.lock();
                let clock = core.threads[ctx.tid].clock;
                (clock, ctx.tid, clock.get(ctx.tid))
            })
            .unwrap_or((VClock::default(), 0, 0));
            AtomicCore {
                inner: StdMutex::new(Inner {
                    stores: vec![Store {
                        val: init,
                        sync,
                        tid,
                        tick,
                    }],
                    read_floor: [0; MAX_THREADS],
                    last_sc: None,
                    stale_reads: [0; MAX_THREADS],
                }),
            }
        }

        fn locked<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
            let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut g)
        }

        pub(super) fn load(&self, order: Ordering) -> u64 {
            with_ctx(|ctx| {
                ctx.exec.point(ctx.tid, PointKind::Op);
                let mut core = ctx.exec.lock();
                self.locked(|inner| {
                    let clock = core.threads[ctx.tid].clock;
                    let mut floor = inner.read_floor[ctx.tid];
                    for (i, s) in inner.stores.iter().enumerate() {
                        if clock.get(s.tid) >= s.tick {
                            floor = floor.max(i);
                        }
                    }
                    if order == Ordering::SeqCst {
                        if let Some(i) = inner.last_sc {
                            floor = floor.max(i);
                        }
                    }
                    let newest = inner.stores.len() - 1;
                    if inner.stale_reads[ctx.tid] >= STALE_REREAD_BOUND {
                        floor = newest;
                    }
                    let alts = inner.stores.len() - floor;
                    let choice = if alts <= 1 {
                        0
                    } else {
                        // Newest-first so DFS alternative 0 matches the
                        // sequentially-consistent behavior and stale
                        // reads are the explored deviations.
                        alts - 1 - Execution::branch(&mut core, alts)
                    };
                    let idx = floor + choice;
                    inner.stale_reads[ctx.tid] = if idx == newest {
                        0
                    } else {
                        inner.stale_reads[ctx.tid] + 1
                    };
                    inner.read_floor[ctx.tid] = inner.read_floor[ctx.tid].max(idx);
                    let store = &inner.stores[idx];
                    if is_acquire(order) {
                        core.threads[ctx.tid].clock.join(&store.sync);
                    }
                    store.val
                })
            })
        }

        pub(super) fn store(&self, val: u64, order: Ordering) {
            with_ctx(|ctx| {
                ctx.exec.point(ctx.tid, PointKind::Op);
                let mut core = ctx.exec.lock();
                self.locked(|inner| {
                    core.threads[ctx.tid].clock.tick(ctx.tid);
                    let clock = core.threads[ctx.tid].clock;
                    let sync = if is_release(order) {
                        clock
                    } else {
                        // A relaxed store interrupts the release sequence.
                        VClock::default()
                    };
                    inner.stores.push(Store {
                        val,
                        sync,
                        tid: ctx.tid,
                        tick: clock.get(ctx.tid),
                    });
                    let idx = inner.stores.len() - 1;
                    inner.read_floor[ctx.tid] = idx;
                    if order == Ordering::SeqCst {
                        inner.last_sc = Some(idx);
                    }
                })
            })
        }

        /// RMW: reads the latest store (C11 atomicity), applies `f`.
        pub(super) fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
            with_ctx(|ctx| {
                ctx.exec.point(ctx.tid, PointKind::Op);
                let mut core = ctx.exec.lock();
                self.locked(|inner| {
                    let prev_idx = inner.stores.len() - 1;
                    let prev_val = inner.stores[prev_idx].val;
                    let prev_sync = inner.stores[prev_idx].sync;
                    if is_acquire(order) {
                        core.threads[ctx.tid].clock.join(&prev_sync);
                    }
                    core.threads[ctx.tid].clock.tick(ctx.tid);
                    let clock = core.threads[ctx.tid].clock;
                    // An RMW continues the release sequence of the store
                    // it replaces.
                    let mut sync = prev_sync;
                    if is_release(order) {
                        sync.join(&clock);
                    }
                    inner.stores.push(Store {
                        val: f(prev_val),
                        sync,
                        tid: ctx.tid,
                        tick: clock.get(ctx.tid),
                    });
                    let idx = inner.stores.len() - 1;
                    inner.read_floor[ctx.tid] = idx;
                    inner.stale_reads[ctx.tid] = 0;
                    if order == Ordering::SeqCst {
                        inner.last_sc = Some(idx);
                    }
                    prev_val
                })
            })
        }

        pub(super) fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            with_ctx(|ctx| {
                ctx.exec.point(ctx.tid, PointKind::Op);
                let mut core = ctx.exec.lock();
                self.locked(|inner| {
                    let prev_idx = inner.stores.len() - 1;
                    let prev_val = inner.stores[prev_idx].val;
                    let prev_sync = inner.stores[prev_idx].sync;
                    if prev_val == current {
                        if is_acquire(success) {
                            core.threads[ctx.tid].clock.join(&prev_sync);
                        }
                        core.threads[ctx.tid].clock.tick(ctx.tid);
                        let clock = core.threads[ctx.tid].clock;
                        let mut sync = prev_sync;
                        if is_release(success) {
                            sync.join(&clock);
                        }
                        inner.stores.push(Store {
                            val: new,
                            sync,
                            tid: ctx.tid,
                            tick: clock.get(ctx.tid),
                        });
                        let idx = inner.stores.len() - 1;
                        inner.read_floor[ctx.tid] = idx;
                        inner.stale_reads[ctx.tid] = 0;
                        if success == Ordering::SeqCst {
                            inner.last_sc = Some(idx);
                        }
                        Ok(prev_val)
                    } else {
                        if is_acquire(failure) {
                            core.threads[ctx.tid].clock.join(&prev_sync);
                        }
                        inner.read_floor[ctx.tid] = inner.read_floor[ctx.tid].max(prev_idx);
                        inner.stale_reads[ctx.tid] = 0;
                        Err(prev_val)
                    }
                })
            })
        }
    }

    /// A memory fence. Modeled conservatively: every ordering joins the
    /// thread clock through one global fence clock (at least as strong
    /// as C11 for `SeqCst`; stronger for acquire/release fences — a
    /// *removed* fence is still always weaker, so dropped-fence bugs
    /// remain detectable).
    pub fn fence(order: Ordering) {
        assert!(order != Ordering::Relaxed, "fence(Relaxed) is not a fence");
        with_ctx(|ctx| {
            ctx.exec.point(ctx.tid, PointKind::Op);
            let mut core = ctx.exec.lock();
            let clock = core.threads[ctx.tid].clock;
            core.fence_clock.join(&clock);
            let fc = core.fence_clock;
            core.threads[ctx.tid].clock.join(&fc);
        })
    }

    macro_rules! model_atomic {
        ($name:ident, $ty:ty, $to:expr, $from:expr) => {
            /// Model-checked counterpart of the same-named `std` atomic.
            pub struct $name {
                core: AtomicCore,
            }

            impl $name {
                #[allow(clippy::redundant_closure_call)]
                pub fn new(v: $ty) -> Self {
                    $name {
                        core: AtomicCore::new(($to)(v)),
                    }
                }
                #[allow(clippy::redundant_closure_call)]
                pub fn load(&self, order: Ordering) -> $ty {
                    ($from)(self.core.load(order))
                }
                #[allow(clippy::redundant_closure_call)]
                pub fn store(&self, v: $ty, order: Ordering) {
                    self.core.store(($to)(v), order)
                }
                #[allow(clippy::redundant_closure_call)]
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    ($from)(self.core.rmw(order, |_| ($to)(v)))
                }
                #[allow(clippy::redundant_closure_call)]
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.core
                        .compare_exchange(($to)(current), ($to)(new), success, failure)
                        .map($from)
                        .map_err($from)
                }
                /// Modeled as the strong variant (never fails spuriously).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$ty as Default>::default())
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $ty:ty) => {
            model_atomic!($name, $ty, |v: $ty| v as u64, |v: u64| v as $ty);

            impl $name {
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    self.core.rmw(order, |p| (p as $ty).wrapping_add(v) as u64) as $ty
                }
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    self.core.rmw(order, |p| (p as $ty).wrapping_sub(v) as u64) as $ty
                }
                pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                    self.core.rmw(order, |p| (p as $ty | v) as u64) as $ty
                }
                pub fn fetch_and(&self, v: $ty, order: Ordering) -> $ty {
                    self.core.rmw(order, |p| (p as $ty & v) as u64) as $ty
                }
                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    self.core.rmw(order, |p| (p as $ty).max(v) as u64) as $ty
                }
            }
        };
    }

    model_atomic_int!(AtomicUsize, usize);
    model_atomic_int!(AtomicU64, u64);
    model_atomic_int!(AtomicU32, u32);
    model_atomic!(AtomicBool, bool, |v: bool| v as u64, |v: u64| v != 0);

    impl AtomicBool {
        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            self.core.rmw(order, |p| (p != 0 || v) as u64) != 0
        }
        pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
            self.core.rmw(order, |p| (p != 0 && v) as u64) != 0
        }
    }
}

// ---------------------------------------------------------------------
// Mutex / Condvar

/// Result of a model [`Condvar::wait_timeout`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A schedulable mutex: contention is explored, not raced. Never
/// poisons (a failing execution aborts the whole iteration instead), but
/// keeps the `LockResult` signature so facade call sites compile
/// unchanged.
pub struct Mutex<T> {
    id: usize,
    data: StdUnsafeCell<T>,
}

// SAFETY: access to `data` is serialized by the model scheduler — the
// chooser marks the object locked before the owning thread resumes, and
// only one model thread runs at a time anyway (single-baton execution).
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above; `&Mutex` only reaches `data` through a held lock.
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard for a model [`Mutex`]; unlocking is a schedule point.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        Mutex {
            id: register_object(ObjState::Mutex {
                locked: false,
                sync: VClock::default(),
            }),
            data: StdUnsafeCell::new(data),
        }
    }

    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        if std::thread::panicking() {
            // Teardown path (unwinding drops may take locks, e.g. a
            // channel end dropped mid-abort): acquire by OS spinning
            // instead of model scheduling — the holder's unlock runs on
            // its own unwind, so this terminates.
            loop {
                let acquired = crate::exec::try_with_ctx(|ctx| {
                    let mut core = ctx.exec.lock();
                    match &mut core.objects[self.id] {
                        ObjState::Mutex { locked, .. } => {
                            if *locked {
                                false
                            } else {
                                *locked = true;
                                true
                            }
                        }
                        ObjState::Condvar { .. } => unreachable!(),
                    }
                })
                .unwrap_or(true);
                if acquired {
                    return Ok(MutexGuard { mutex: self });
                }
                std::thread::yield_now();
            }
        }
        with_ctx(|ctx| {
            ctx.exec.point(ctx.tid, PointKind::Op);
            let mut core = ctx.exec.lock();
            let locked = match &core.objects[self.id] {
                ObjState::Mutex { locked, .. } => *locked,
                ObjState::Condvar { .. } => unreachable!(),
            };
            if locked {
                core.threads[ctx.tid].blocked = Blocked::Mutex(self.id);
                let keep = Execution::choose(&mut core, Some(ctx.tid), PointKind::Block);
                if !keep {
                    ctx.exec.cv.notify_all();
                    ctx.exec.park(core, ctx.tid);
                }
                // `choose`/the chooser acquired on our behalf.
            } else {
                let sync = match &mut core.objects[self.id] {
                    ObjState::Mutex { locked, sync } => {
                        *locked = true;
                        *sync
                    }
                    ObjState::Condvar { .. } => unreachable!(),
                };
                core.threads[ctx.tid].clock.join(&sync);
            }
        });
        Ok(MutexGuard { mutex: self })
    }

    pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
        Ok(self.data.get_mut())
    }

    fn unlock(&self) {
        // May run during sentinel unwinding; release without scheduling
        // then (the iteration is already dead).
        let aborting = crate::exec::try_with_ctx(|ctx| {
            let core = ctx.exec.lock();
            core.abort || core.overflow
        })
        .unwrap_or(true);
        if aborting {
            crate::exec::try_with_ctx(|ctx| {
                let mut core = ctx.exec.lock();
                if let ObjState::Mutex { locked, .. } = &mut core.objects[self.id] {
                    *locked = false;
                }
            });
            return;
        }
        with_ctx(|ctx| {
            let mut core = ctx.exec.lock();
            let clock = core.threads[ctx.tid].clock;
            match &mut core.objects[self.id] {
                ObjState::Mutex { locked, sync } => {
                    debug_assert!(*locked, "unlocking an unlocked model mutex");
                    sync.join(&clock);
                    *locked = false;
                }
                ObjState::Condvar { .. } => unreachable!(),
            }
            drop(core);
            // Unlocking is itself a schedule point so a blocked thread
            // can be chosen to take the mutex immediately.
            ctx.exec.point(ctx.tid, PointKind::Op);
        })
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves this model thread holds the lock and
        // the baton; no other thread touches `data` concurrently.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive by lock + baton.
        unsafe { &mut *self.mutex.data.get() }
    }
}

/// A schedulable condvar. `notify_one` wakes the longest waiter;
/// spurious wakeups are not modeled; timed waits expose the timeout as
/// an explorable scheduling alternative instead of reading a clock.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar {
            id: register_object(ObjState::Condvar {
                waiters: Vec::new(),
            }),
        }
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: bool,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let mutex = guard.mutex;
        // Atomically (w.r.t. the model): register as a waiter, release
        // the mutex, block. Bypass the guard's Drop — its unlock is a
        // schedule point that would let a notifier slip between unlock
        // and registration, which real condvars forbid.
        std::mem::forget(guard);
        with_ctx(|ctx| {
            ctx.exec.point(ctx.tid, PointKind::Op);
            let mut core = ctx.exec.lock();
            let clock = core.threads[ctx.tid].clock;
            match &mut core.objects[mutex.id] {
                ObjState::Mutex { locked, sync } => {
                    debug_assert!(*locked, "condvar wait without the lock held");
                    sync.join(&clock);
                    *locked = false;
                }
                ObjState::Condvar { .. } => unreachable!(),
            }
            match &mut core.objects[self.id] {
                ObjState::Condvar { waiters } => waiters.push(ctx.tid),
                ObjState::Mutex { .. } => unreachable!(),
            }
            core.threads[ctx.tid].timed_out = false;
            core.threads[ctx.tid].blocked = Blocked::Condvar {
                cv: self.id,
                mutex: mutex.id,
                timeout,
            };
            let keep = Execution::choose(&mut core, Some(ctx.tid), PointKind::Block);
            if !keep {
                ctx.exec.cv.notify_all();
                ctx.exec.park(core, ctx.tid);
            }
        });
        let timed_out = with_ctx(|ctx| {
            let mut core = ctx.exec.lock();
            std::mem::take(&mut core.threads[ctx.tid].timed_out)
        });
        (MutexGuard { mutex }, WaitTimeoutResult(timed_out))
    }

    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(guard, false).0)
    }

    /// The `timeout` duration is ignored: firing the timeout is an
    /// explorable scheduling choice, so both the timed-out and the
    /// notified paths are covered regardless of wall-clock values.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: Duration,
    ) -> std::sync::LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        Ok(self.wait_inner(guard, true))
    }

    fn notify(&self, all: bool) {
        with_ctx(|ctx| {
            ctx.exec.point(ctx.tid, PointKind::Op);
            let mut core = ctx.exec.lock();
            let woken: Vec<usize> = match &mut core.objects[self.id] {
                ObjState::Condvar { waiters } => {
                    if all {
                        std::mem::take(waiters)
                    } else if waiters.is_empty() {
                        Vec::new()
                    } else {
                        vec![waiters.remove(0)]
                    }
                }
                ObjState::Mutex { .. } => unreachable!(),
            };
            for t in woken {
                let m = match core.threads[t].blocked {
                    Blocked::Condvar { mutex, .. } => mutex,
                    _ => unreachable!("condvar waiter not blocked on condvar"),
                };
                core.threads[t].blocked = Blocked::Mutex(m);
            }
        })
    }

    pub fn notify_one(&self) {
        self.notify(false)
    }

    pub fn notify_all(&self) {
        self.notify(true)
    }
}
