//! # kron-testkit
//!
//! The workspace-wide test spine: deterministic problem-shape generators
//! and a differential oracle asserting that **every** public execution
//! path — naive, shuffle, FTMMT, fused, the pinned serial/row-tile/wide
//! workspace modes, the planned API, the single-node serving runtime, the
//! distributed serving runtime, and the direct sharded engine — produces
//! the **same bits** on `f32` and `f64`.
//!
//! Bit-for-bit is possible because [`gen`] emits integer-valued operands
//! whose worst-case partial sums stay exactly representable (below
//! `2^24`), so float arithmetic on them is exact in any order. See the
//! module docs for the bound.
//!
//! A failing check prints the case as a copy-pasteable
//! [`KronCase::deterministic`] literal (via
//! [`KronCase::regression_literal`]) so it can be pinned as a regression
//! test verbatim.
//!
//! ```
//! use kron_testkit::{check_all_paths, KronCase};
//!
//! let case = KronCase::<f32>::deterministic(3, &[(4, 4), (4, 4)], 7);
//! check_all_paths(&case).unwrap();
//! ```

#![deny(missing_docs)]

pub mod chaos;
pub mod diff;
pub mod gen;
pub mod serve;

pub use chaos::{check_chaos_serve_plan, ChaosOutcome, ChaosServePlan};
pub use diff::{
    check_all_paths, check_library_paths, check_runtime_paths, dist_runtime, single_runtime,
    DiffElement, DIST_GPUS,
};
pub use gen::{worst_case_magnitude, KronCase, ShapeFamily};
pub use serve::{
    check_mixed_serve_plan, check_serve_plan, ExpectedTimings, MixedRequest, MixedServePlan,
    PlannedRequest, ServePlan,
};
