//! Serve-trace differential suite: deterministic multi-model request
//! traces (model mix, arrival order, priorities, deadlines — see
//! `kron_testkit::ServePlan`) served through the batching/prioritizing
//! runtime on **both** backends must return results bit-identical to
//! per-request planned execution, on f32 and f64.
//!
//! This is the serving-layer analog of `tests/differential.rs`: where
//! that suite pins single executions across engines, this one pins the
//! whole admission-control pipeline — burst submission, linked batches,
//! priority reordering (with aging), deadline plumbing, cross-request row
//! stacking, grid zero-padding, and (via `MixedServePlan`) f32/f64
//! interleaving through the one dtype-erased runtime — as
//! value-invisible.

use kron_testkit::{check_mixed_serve_plan, check_serve_plan, MixedServePlan, ServePlan};

/// Seeds swept per dtype. Each trace is 24–40 requests over 2–4 models.
const SEEDS: u64 = 4;

#[test]
fn serve_traces_match_planned_execution_f32() {
    for seed in 0..SEEDS {
        check_serve_plan(&ServePlan::<f32>::deterministic(seed)).unwrap();
    }
}

#[test]
fn serve_traces_match_planned_execution_f64() {
    for seed in 0..SEEDS {
        check_serve_plan(&ServePlan::<f64>::deterministic(seed)).unwrap();
    }
}

/// The erased-runtime contract: an interleaved f32+f64 trace (48–80
/// requests over 4–8 models of both dtypes in ONE arrival order) served
/// by the single dtype-erased runtime on both backends must match every
/// request's typed per-request planned execution bit-for-bit.
#[test]
fn mixed_dtype_serve_traces_match_planned_execution() {
    for seed in 0..SEEDS {
        check_mixed_serve_plan(&MixedServePlan::deterministic(seed)).unwrap();
    }
}

/// A pinned larger trace, kept stable as a regression anchor (the sweep
/// above rotates with `SEEDS`; this one never changes).
#[test]
fn pinned_serve_trace_regression() {
    check_serve_plan(&ServePlan::<f64>::deterministic(0xC0FFEE)).unwrap();
    check_serve_plan(&ServePlan::<f32>::deterministic(0xC0FFEE)).unwrap();
    check_mixed_serve_plan(&MixedServePlan::deterministic(0xC0FFEE)).unwrap();
}
