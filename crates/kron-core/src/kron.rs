//! Kronecker-product materialization.

use crate::element::Element;
use crate::error::Result;
use crate::matrix::Matrix;

/// Computes the Kronecker product `A ⊗ B` of two dense matrices.
///
/// `(A ⊗ B)[i·Bp + k, j·Bq + l] = A[i,j] · B[k,l]` where `B` is `Bp × Bq`.
pub fn kron_product<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let (ap, aq) = (a.rows(), a.cols());
    let (bp, bq) = (b.rows(), b.cols());
    Matrix::from_fn(ap * bp, aq * bq, |r, c| {
        let (ai, bi) = (r / bp, r % bp);
        let (aj, bj) = (c / bq, c % bq);
        a[(ai, aj)] * b[(bi, bj)]
    })
}

/// Materializes the full Kronecker product of a chain of factors,
/// `F1 ⊗ F2 ⊗ … ⊗ FN` (left-associated; `⊗` is associative so grouping is
/// irrelevant, which the property tests verify).
///
/// # Errors
/// Propagates [`crate::KronError::NoFactors`] when `factors` is empty.
pub fn kron_product_chain<T: Element>(factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
    let (first, rest) = factors
        .split_first()
        .ok_or(crate::error::KronError::NoFactors)?;
    let mut acc = (*first).clone();
    for f in rest {
        acc = kron_product(&acc, f);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, vals: &[f64]) -> Matrix<f64> {
        Matrix::from_vec(rows, cols, vals.to_vec()).unwrap()
    }

    #[test]
    fn kron_2x2_by_hand() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = mat(2, 2, &[0.0, 5.0, 6.0, 7.0]);
        let k = kron_product(&a, &b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        // Top-left block = 1·B, top-right = 2·B, etc.
        assert_eq!(k[(0, 0)], 0.0);
        assert_eq!(k[(0, 1)], 5.0);
        assert_eq!(k[(0, 2)], 0.0);
        assert_eq!(k[(0, 3)], 10.0);
        assert_eq!(k[(3, 0)], 18.0);
        assert_eq!(k[(3, 3)], 28.0);
    }

    #[test]
    fn kron_rectangular_shapes() {
        let a = mat(1, 3, &[1.0, 2.0, 3.0]);
        let b = mat(2, 1, &[4.0, 5.0]);
        let k = kron_product(&a, &b);
        assert_eq!((k.rows(), k.cols()), (2, 3));
        assert_eq!(k[(0, 2)], 12.0);
        assert_eq!(k[(1, 0)], 5.0);
    }

    #[test]
    fn kron_identity_blocks() {
        let i2 = Matrix::<f64>::identity(2);
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        // I ⊗ A is block-diagonal with copies of A.
        let k = kron_product(&i2, &a);
        assert_eq!(k[(0, 0)], 1.0);
        assert_eq!(k[(1, 1)], 4.0);
        assert_eq!(k[(2, 2)], 1.0);
        assert_eq!(k[(0, 2)], 0.0);
    }

    #[test]
    fn chain_is_associative() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = mat(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = mat(2, 2, &[9.0, 1.0, 2.0, 3.0]);
        let left = kron_product(&kron_product(&a, &b), &c);
        let right = kron_product(&a, &kron_product(&b, &c));
        assert_eq!(left, right);
        let chained = kron_product_chain(&[&a, &b, &c]).unwrap();
        assert_eq!(chained, left);
    }

    #[test]
    fn chain_empty_errors() {
        assert!(kron_product_chain::<f64>(&[]).is_err());
    }
}
