//! The planned FastKron API: autotune once, execute and simulate many times.
//!
//! Mirrors the library described in §4 of the paper ("FastKron provides
//! Python and C++ APIs … All the API functions call into a type generic
//! implementation of Algorithm 1"): [`FastKron::plan`] selects tile sizes
//! and fusion depths for every iteration of a problem, [`KronPlan::execute`]
//! runs the numbers, [`KronPlan::simulate`] prices the plan on the
//! simulated GPU, and [`KronPlan::execute_emulated`] runs the
//! thread-block-accurate kernels (tests / small problems).

use crate::exec::Workspace;
use crate::fused::FusedKernel;
use crate::kernel::SlicedMultiplyKernel;
use crate::tile::TileConfig;
use crate::tuner::{AutoTuner, TuneReport};
use gpu_sim::cost::{CostModel, LaunchConfig};
use gpu_sim::device::DeviceSpec;
use gpu_sim::trace::Tracer;
use gpu_sim::ExecReport;
use kron_core::{Element, KronError, KronProblem, Matrix, Result};
use std::collections::HashMap;
use std::marker::PhantomData;

/// Maximum factor dimension the fused kernel is planned for (§4.2: "Our
/// experiments found this is true for P ≤ 32 and Q ≤ 32").
pub const FUSION_MAX_P: usize = 32;

/// One planned kernel launch covering `factor_indices.len()` consecutive
/// sliced multiplications.
#[derive(Debug, Clone)]
pub struct PlanStage {
    /// Factor indices (0-based into [`KronProblem::factors`]) this stage
    /// multiplies, in multiplication order (last factor of the problem
    /// first).
    pub factor_indices: Vec<usize>,
    /// Whether the fused kernel is used (always false when only one factor
    /// is covered).
    pub fused: bool,
    /// The tile configuration chosen by the tuner.
    pub config: TileConfig,
    /// Launch geometry derived from the configuration.
    pub launch: LaunchConfig,
    /// Intermediate columns at stage entry.
    pub k_in: usize,
    /// Factor rows.
    pub p: usize,
    /// Factor columns.
    pub q: usize,
}

/// Entry point for planning.
pub struct FastKron;

impl FastKron {
    /// Plans a problem with all optimizations (shift caching, fusion,
    /// autotuned tiles).
    ///
    /// # Errors
    /// Tuning errors when no configuration fits the device.
    pub fn plan<T: Element>(problem: &KronProblem, device: &DeviceSpec) -> Result<KronPlan<T>> {
        Self::plan_inner(problem, device, true)
    }

    /// Plans without the fusion optimization — the paper's
    /// "FastKron-wo-Fuse" ablation (Figure 9).
    ///
    /// # Errors
    /// Tuning errors when no configuration fits the device.
    pub fn plan_unfused<T: Element>(
        problem: &KronProblem,
        device: &DeviceSpec,
    ) -> Result<KronPlan<T>> {
        Self::plan_inner(problem, device, false)
    }

    /// Plans every iteration with one fixed configuration (no tuning);
    /// for experiments that isolate a single kernel variant.
    ///
    /// # Errors
    /// Config-validity errors against any iteration shape.
    pub fn plan_with_config<T: Element>(
        problem: &KronProblem,
        device: &DeviceSpec,
        config: TileConfig,
    ) -> Result<KronPlan<T>> {
        let mut stages = Vec::new();
        for it in problem.iterations() {
            config.validate(problem.m, it.input_cols, it.factor.p, it.factor.q)?;
            stages.push(PlanStage {
                factor_indices: vec![it.factor_index],
                fused: false,
                config,
                launch: config.launch(problem.m, it.input_cols, it.factor.p, it.factor.q, T::DTYPE),
                k_in: it.input_cols,
                p: it.factor.p,
                q: it.factor.q,
            });
        }
        Ok(KronPlan {
            problem: problem.clone(),
            device: device.clone(),
            stages,
            tune_report: TuneReport::default(),
            _marker: PhantomData,
        })
    }

    fn plan_inner<T: Element>(
        problem: &KronProblem,
        device: &DeviceSpec,
        allow_fusion: bool,
    ) -> Result<KronPlan<T>> {
        let tuner = AutoTuner::new(device);
        let mut stages: Vec<PlanStage> = Vec::new();
        let mut tune_report = TuneReport::default();
        // Tuning cache: iteration shapes repeat for uniform problems.
        // Key: (K, P, salt, fused); value: (config, nfused, per-factor s).
        type TuneCache = HashMap<(usize, usize, usize, bool), (TileConfig, usize, f64)>;
        let mut cache: TuneCache = HashMap::new();

        let iterations: Vec<_> = problem.iterations().collect();
        let mut i = 0;
        while i < iterations.len() {
            let it = &iterations[i];
            let (p, q) = (it.factor.p, it.factor.q);
            let k = it.input_cols;

            // How many consecutive upcoming factors share this square shape
            // (fusion candidates)?
            let mut run = 1;
            while i + run < iterations.len() && iterations[i + run].factor == it.factor && p == q {
                run += 1;
            }

            let fuse_ok = allow_fusion && p == q && p <= FUSION_MAX_P && run > 1;

            let unfused_key = (k, p, q.wrapping_mul(2) + 1, false);
            let (ucfg, _, u_per_factor) = match cache.get(&unfused_key) {
                Some(v) => *v,
                None => {
                    let out = tuner.tune(problem.m, k, p, q, T::DTYPE)?;
                    tune_report.generated += out.report.generated;
                    tune_report.scored += out.report.scored;
                    tune_report.tuning_seconds += out.report.tuning_seconds;
                    let v = (out.config, 1usize, out.est_seconds);
                    cache.insert(unfused_key, v);
                    v
                }
            };

            let fused_choice = if fuse_ok {
                let key = (k, p, run, true);
                match cache.get(&key) {
                    Some(v) => Some(*v),
                    None => match tuner.tune_fused(problem.m, k, p, run, T::DTYPE) {
                        Ok(out) => {
                            tune_report.generated += out.report.generated;
                            tune_report.scored += out.report.scored;
                            tune_report.tuning_seconds += out.report.tuning_seconds;
                            let v = (out.config, out.nfused, out.est_seconds / out.nfused as f64);
                            cache.insert(key, v);
                            Some(v)
                        }
                        Err(_) => None,
                    },
                }
            } else {
                None
            };

            let use_fused = fused_choice
                .as_ref()
                .is_some_and(|(_, nf, per_factor)| *nf > 1 && *per_factor < u_per_factor);

            if use_fused {
                let (cfg, nf, _) = fused_choice.unwrap();
                let nf = nf.min(run);
                let idxs: Vec<usize> = (0..nf).map(|j| iterations[i + j].factor_index).collect();
                stages.push(PlanStage {
                    factor_indices: idxs,
                    fused: true,
                    config: cfg,
                    launch: cfg.launch_fused(problem.m, k, p, T::DTYPE),
                    k_in: k,
                    p,
                    q,
                });
                i += nf;
            } else {
                stages.push(PlanStage {
                    factor_indices: vec![it.factor_index],
                    fused: false,
                    config: ucfg,
                    launch: ucfg.launch(problem.m, k, p, q, T::DTYPE),
                    k_in: k,
                    p,
                    q,
                });
                i += 1;
            }
        }

        Ok(KronPlan {
            problem: problem.clone(),
            device: device.clone(),
            stages,
            tune_report,
            _marker: PhantomData,
        })
    }
}

/// An autotuned execution plan for one Kron-Matmul problem on one device.
pub struct KronPlan<T> {
    problem: KronProblem,
    device: DeviceSpec,
    /// Planned kernel launches in execution order.
    pub stages: Vec<PlanStage>,
    /// Aggregated tuning statistics (§6.1).
    pub tune_report: TuneReport,
    _marker: PhantomData<T>,
}

impl<T: Element> KronPlan<T> {
    /// The planned problem.
    pub fn problem(&self) -> &KronProblem {
        &self.problem
    }

    /// The target device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Number of kernel launches the plan issues.
    pub fn launches(&self) -> usize {
        self.stages.len()
    }

    fn check_operands(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<()> {
        if factors.len() != self.problem.num_factors() {
            return Err(KronError::ShapeMismatch {
                expected: format!("{} factors", self.problem.num_factors()),
                found: format!("{} factors", factors.len()),
            });
        }
        for (i, (f, s)) in factors.iter().zip(self.problem.factors.iter()).enumerate() {
            if f.rows() != s.p || f.cols() != s.q {
                return Err(KronError::ShapeMismatch {
                    expected: format!("factor {} of shape {s}", i + 1),
                    found: format!("{}×{}", f.rows(), f.cols()),
                });
            }
        }
        if x.rows() != self.problem.m || x.cols() != self.problem.input_cols() {
            return Err(KronError::ShapeMismatch {
                expected: format!("X {}×{}", self.problem.m, self.problem.input_cols()),
                found: format!("X {}×{}", x.rows(), x.cols()),
            });
        }
        Ok(())
    }

    /// Allocates a fused-path [`Workspace`] sized for the planned problem.
    ///
    /// [`Self::execute`] creates one per call; callers running the plan
    /// repeatedly should create the workspace once and use
    /// [`Self::execute_with`] so no execution ever allocates intermediates.
    pub fn workspace(&self) -> Workspace<T> {
        Workspace::new(&self.problem)
    }

    /// Computes `Y = X · (F1 ⊗ … ⊗ FN)` on the fused execution path
    /// ([`crate::exec`]): zero intermediate allocations after workspace
    /// creation, no transpose pass, row-tile parallel. Tiling choices in
    /// the plan do not affect values.
    ///
    /// # Errors
    /// Shape mismatches between the operands and the planned problem.
    pub fn execute(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        let mut workspace = self.workspace();
        self.execute_with(&mut workspace, x, factors)
    }

    /// Like [`Self::execute`], reusing a caller-held [`Workspace`] so the
    /// whole call is allocation-free except for the result matrix.
    ///
    /// # Errors
    /// Shape mismatches between the operands and the planned problem (the
    /// workspace must come from [`Self::workspace`] on the same plan).
    pub fn execute_with(
        &self,
        workspace: &mut Workspace<T>,
        x: &Matrix<T>,
        factors: &[&Matrix<T>],
    ) -> Result<Matrix<T>> {
        self.check_operands(x, factors)?;
        workspace.execute(x, factors)
    }

    /// Computes the result by running every planned thread block through
    /// the kernel emulator — bit-identical index arithmetic to the CUDA
    /// kernels, including shift caching and fused epilogues. Quadratically
    /// slower than [`Self::execute`]; meant for verification.
    ///
    /// # Errors
    /// Shape mismatches between the operands and the planned problem.
    pub fn execute_emulated(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        self.check_operands(x, factors)?;
        let mut y = x.clone();
        for stage in &self.stages {
            if stage.fused {
                let group: Vec<&Matrix<T>> =
                    stage.factor_indices.iter().map(|&i| factors[i]).collect();
                let kern = FusedKernel::new(stage.config, self.problem.m, stage.k_in, &group)?;
                y = kern.run_all(&y)?;
            } else {
                let f = factors[stage.factor_indices[0]];
                let kern = SlicedMultiplyKernel::new(stage.config, self.problem.m, stage.k_in, f)?;
                y = kern.run_all(&y)?;
            }
        }
        Ok(y)
    }

    /// Prices the plan on the simulated device: traces one thread block
    /// per stage, extrapolates to the grid, and applies the roofline cost
    /// model. Returns total and per-step simulated time plus hardware
    /// counters.
    ///
    /// # Errors
    /// Resource/occupancy errors from the cost model.
    pub fn simulate(&self) -> Result<ExecReport> {
        let cost = CostModel::new(&self.device);
        let mut report = ExecReport::new("FastKron");
        let mut tracer = Tracer::new(&self.device);
        for stage in &self.stages {
            let per_block = if stage.fused {
                // Factor values are irrelevant to addresses; use zeros.
                let zeros = Matrix::<T>::zeros(stage.p, stage.q);
                let group: Vec<&Matrix<T>> = stage.factor_indices.iter().map(|_| &zeros).collect();
                let kern = FusedKernel::new(stage.config, self.problem.m, stage.k_in, &group)?;
                kern.trace_block(&mut tracer)
            } else {
                let zeros = Matrix::<T>::zeros(stage.p, stage.q);
                let kern =
                    SlicedMultiplyKernel::new(stage.config, self.problem.m, stage.k_in, &zeros)?;
                kern.trace_block(&mut tracer)
            };
            let stats = per_block.scaled(stage.launch.grid_blocks as u64);
            let time = cost.kernel_time(&stage.launch, &stats, T::DTYPE)?;
            let label = if stage.fused {
                "fused-sliced-multiply"
            } else {
                "sliced-multiply"
            };
            report.add_step(label, time.total_s);
            report.stats += stats;
            report.launches += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::V100;
    use kron_core::naive::kron_matmul_naive;
    use kron_core::{assert_matrices_close, FactorShape};

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + 7 * r * cols + c) % 11) as f64 - 5.0
        })
    }

    fn run_problem(problem: &KronProblem, seed: usize) {
        let x = seq_matrix(problem.m, problem.input_cols(), seed);
        let fs: Vec<Matrix<f64>> = problem
            .factors
            .iter()
            .enumerate()
            .map(|(i, s)| seq_matrix(s.p, s.q, seed + i + 1))
            .collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let plan = FastKron::plan::<f64>(problem, &V100).unwrap();
        let fast = plan.execute(&x, &refs).unwrap();
        let emulated = plan.execute_emulated(&x, &refs).unwrap();
        let oracle = kron_matmul_naive(&x, &refs).unwrap();
        assert_matrices_close(&fast, &oracle, &format!("{problem} execute"));
        assert_matrices_close(&emulated, &oracle, &format!("{problem} emulated"));
    }

    #[test]
    fn plan_execute_emulate_uniform_small_p() {
        run_problem(&KronProblem::uniform(4, 4, 4).unwrap(), 1);
    }

    #[test]
    fn plan_execute_emulate_uniform_medium_p() {
        run_problem(&KronProblem::uniform(3, 8, 3).unwrap(), 2);
    }

    #[test]
    fn plan_execute_emulate_large_p_no_fusion() {
        let problem = KronProblem::uniform(2, 64, 2).unwrap();
        let plan = FastKron::plan::<f64>(&problem, &V100).unwrap();
        assert!(
            plan.stages.iter().all(|s| !s.fused),
            "P = 64 > 32 must not fuse"
        );
        run_problem(&problem, 3);
    }

    #[test]
    fn plan_execute_emulate_rectangular() {
        let problem = KronProblem::new(
            3,
            vec![
                FactorShape::new(5, 2),
                FactorShape::new(4, 6),
                FactorShape::new(2, 2),
            ],
        )
        .unwrap();
        run_problem(&problem, 4);
    }

    #[test]
    fn fusion_is_planned_for_small_square_factors() {
        let problem = KronProblem::uniform(8, 4, 6).unwrap();
        let plan = FastKron::plan::<f32>(&problem, &V100).unwrap();
        assert!(
            plan.stages.iter().any(|s| s.fused),
            "P = 4, N = 6 should fuse; stages: {:?}",
            plan.stages
                .iter()
                .map(|s| (s.fused, s.factor_indices.clone()))
                .collect::<Vec<_>>()
        );
        // Fused plan must launch fewer kernels than factors.
        assert!(plan.launches() < problem.num_factors());
    }

    #[test]
    fn unfused_plan_launches_once_per_factor() {
        let problem = KronProblem::uniform(8, 4, 6).unwrap();
        let plan = FastKron::plan_unfused::<f32>(&problem, &V100).unwrap();
        assert_eq!(plan.launches(), 6);
        assert!(plan.stages.iter().all(|s| !s.fused));
    }

    #[test]
    fn stages_cover_every_factor_exactly_once() {
        for problem in [
            KronProblem::uniform(4, 8, 5).unwrap(),
            KronProblem::uniform(16, 32, 3).unwrap(),
            KronProblem::new(
                2,
                vec![
                    FactorShape::new(3, 3),
                    FactorShape::new(3, 3),
                    FactorShape::new(2, 5),
                ],
            )
            .unwrap(),
        ] {
            let plan = FastKron::plan::<f32>(&problem, &V100).unwrap();
            let mut seen: Vec<usize> = plan
                .stages
                .iter()
                .flat_map(|s| s.factor_indices.clone())
                .collect();
            seen.sort_unstable();
            let expected: Vec<usize> = (0..problem.num_factors()).collect();
            assert_eq!(seen, expected, "{problem}");
        }
    }

    #[test]
    fn simulate_reports_positive_time_and_counters() {
        let problem = KronProblem::uniform(16, 8, 4).unwrap();
        let plan = FastKron::plan::<f32>(&problem, &V100).unwrap();
        let rep = plan.simulate().unwrap();
        assert!(rep.seconds > 0.0);
        assert_eq!(rep.launches, plan.launches() as u64);
        assert_eq!(rep.stats.flops, problem.flops());
        assert!(rep.stats.gmem_store_sectors > 0);
    }

    #[test]
    fn fusion_reduces_simulated_global_traffic() {
        let problem = KronProblem::uniform(64, 8, 5).unwrap();
        let fused = FastKron::plan::<f32>(&problem, &V100).unwrap();
        let unfused = FastKron::plan_unfused::<f32>(&problem, &V100).unwrap();
        let rf = fused.simulate().unwrap();
        let ru = unfused.simulate().unwrap();
        assert!(
            rf.stats.gmem_sectors() < ru.stats.gmem_sectors(),
            "fused {} vs unfused {} sectors",
            rf.stats.gmem_sectors(),
            ru.stats.gmem_sectors()
        );
    }

    #[test]
    fn execute_validates_operands() {
        let problem = KronProblem::uniform(2, 4, 2).unwrap();
        let plan = FastKron::plan::<f64>(&problem, &V100).unwrap();
        let x = seq_matrix(2, 16, 0);
        let f = seq_matrix(4, 4, 1);
        let wrong_f = seq_matrix(2, 4, 1);
        assert!(plan.execute(&x, &[&f]).is_err());
        assert!(plan.execute(&x, &[&f, &wrong_f]).is_err());
        let wrong_x = seq_matrix(2, 8, 0);
        assert!(plan.execute(&wrong_x, &[&f, &f]).is_err());
        assert!(plan.execute(&x, &[&f, &f]).is_ok());
    }

    #[test]
    fn plan_with_config_fixed_tiles() {
        let problem = KronProblem::uniform(2, 4, 3).unwrap();
        let cfg = TileConfig {
            tm: 1,
            tk: 16,
            tq: 2,
            tp: 2,
            rk: 2,
            rq: 1,
            rp: 1,
            caching: crate::tile::Caching::Direct,
        };
        let plan = FastKron::plan_with_config::<f64>(&problem, &V100, cfg).unwrap();
        assert_eq!(plan.launches(), 3);
        run_problem_with(&plan, &problem, 9);
    }

    fn run_problem_with(plan: &KronPlan<f64>, problem: &KronProblem, seed: usize) {
        let x = seq_matrix(problem.m, problem.input_cols(), seed);
        let fs: Vec<Matrix<f64>> = problem
            .factors
            .iter()
            .enumerate()
            .map(|(i, s)| seq_matrix(s.p, s.q, seed + i + 1))
            .collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let oracle = kron_matmul_naive(&x, &refs).unwrap();
        assert_matrices_close(&plan.execute(&x, &refs).unwrap(), &oracle, "cfg execute");
        assert_matrices_close(
            &plan.execute_emulated(&x, &refs).unwrap(),
            &oracle,
            "cfg emulated",
        );
    }
}
