//! The simulated multi-GPU machine: grid layout and communication model.

use gpu_sim::device::DeviceSpec;
use kron_core::{KronError, Result};

/// A 2-D grid of GPUs `{GM, GK}`: `GM` row groups × `GK` column groups.
///
/// Following SUMMA (and §5 of the paper), a machine of `G` GPUs is
/// arranged as `{√G, √G}` when `G` is a perfect square and
/// `{2^⌈log₂√G⌉, 2^⌊log₂√G⌋}` otherwise (powers of two only — the DGX-2
/// configurations the paper evaluates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuGrid {
    /// Row groups (partition of `M`).
    pub gm: usize,
    /// Column groups (partition of `K`).
    pub gk: usize,
}

impl GpuGrid {
    /// Builds the grid for `g` GPUs.
    ///
    /// # Errors
    /// [`KronError::InvalidGrid`] unless `g` is a power of two (the
    /// paper's partitioning rule produces a grid of exactly `g` GPUs only
    /// then).
    pub fn for_gpus(g: usize) -> Result<GpuGrid> {
        if g == 0 || !g.is_power_of_two() {
            return Err(KronError::InvalidGrid {
                reason: format!("{g} GPUs: the SUMMA-style grid rule needs a power of two"),
            });
        }
        let log2 = g.trailing_zeros() as usize;
        let gk = 1usize << log2.div_ceil(2);
        let gm = 1usize << (log2 / 2);
        debug_assert_eq!(gm * gk, g);
        Ok(GpuGrid { gm, gk })
    }

    /// Total GPUs in the grid.
    pub fn gpus(&self) -> usize {
        self.gm * self.gk
    }

    /// Linear id for GPU `(row, col)`.
    pub fn id(&self, row: usize, col: usize) -> usize {
        row * self.gk + col
    }
}

/// α–β timing for NVLink/NCCL point-to-point transfers.
#[derive(Debug, Clone)]
pub struct CommModel {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Per-GPU egress bandwidth, bytes/second.
    pub beta_bw: f64,
}

impl CommModel {
    /// NCCL over the device's NVLink fabric.
    pub fn nccl(device: &DeviceSpec) -> Self {
        CommModel {
            alpha: device.nvlink_latency,
            beta_bw: device.nvlink_bw,
        }
    }

    /// Direct P2P loads/stores from a single CUDA kernel — the §5
    /// optimization FastKron uses when peer access is available; saves
    /// most of the per-message software latency.
    pub fn p2p(device: &DeviceSpec) -> Self {
        CommModel {
            alpha: device.nvlink_latency / 4.0,
            beta_bw: device.nvlink_bw,
        }
    }

    /// Seconds for one GPU to send `bytes` split across `peers` messages
    /// (egress is serialized per GPU; NVSwitch gives full bandwidth to the
    /// aggregate).
    pub fn send_time(&self, bytes: u64, peers: usize) -> f64 {
        self.alpha * peers as f64 + bytes as f64 / self.beta_bw
    }
}

/// Point-to-point mailbox fabric for functional distributed runs: one
/// crossbeam channel per ordered GPU pair.
pub struct Fabric<M> {
    grid: GpuGrid,
    senders: Vec<crossbeam::channel::Sender<M>>,
    receivers: Vec<crossbeam::channel::Receiver<M>>,
}

impl<M: Send> Fabric<M> {
    /// Creates the mailboxes for `grid`.
    pub fn new(grid: GpuGrid) -> Self {
        let n = grid.gpus();
        let mut senders = Vec::with_capacity(n * n);
        let mut receivers = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            let (s, r) = crossbeam::channel::unbounded();
            senders.push(s);
            receivers.push(r);
        }
        Fabric {
            grid,
            senders,
            receivers,
        }
    }

    /// The grid this fabric connects.
    pub fn grid(&self) -> GpuGrid {
        self.grid
    }

    /// Sender handle for messages `src → dst`.
    pub fn sender(&self, src: usize, dst: usize) -> crossbeam::channel::Sender<M> {
        self.senders[src * self.grid.gpus() + dst].clone()
    }

    /// Receiver handle for messages `src → dst`.
    pub fn receiver(&self, src: usize, dst: usize) -> crossbeam::channel::Receiver<M> {
        self.receivers[src * self.grid.gpus() + dst].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::V100;

    #[test]
    fn grid_rule_matches_paper() {
        // {√G, √G} for squares; {2^⌈log₂√G⌉, 2^⌊log₂√G⌋} otherwise.
        assert_eq!(GpuGrid::for_gpus(1).unwrap(), GpuGrid { gm: 1, gk: 1 });
        assert_eq!(GpuGrid::for_gpus(2).unwrap(), GpuGrid { gm: 1, gk: 2 });
        assert_eq!(GpuGrid::for_gpus(4).unwrap(), GpuGrid { gm: 2, gk: 2 });
        assert_eq!(GpuGrid::for_gpus(8).unwrap(), GpuGrid { gm: 2, gk: 4 });
        assert_eq!(GpuGrid::for_gpus(16).unwrap(), GpuGrid { gm: 4, gk: 4 });
        assert!(GpuGrid::for_gpus(6).is_err());
        assert!(GpuGrid::for_gpus(0).is_err());
    }

    #[test]
    fn comm_model_scales() {
        let m = CommModel::nccl(&V100);
        let t1 = m.send_time(150_000_000_000 / 100, 1); // 1% of a second of data
        assert!((t1 - (5e-6 + 0.01)).abs() < 1e-9);
        assert!(CommModel::p2p(&V100).alpha < m.alpha);
    }

    #[test]
    fn fabric_routes_messages() {
        let grid = GpuGrid::for_gpus(4).unwrap();
        let fabric: Fabric<u32> = Fabric::new(grid);
        fabric.sender(0, 3).send(42).unwrap();
        fabric.sender(3, 0).send(7).unwrap();
        assert_eq!(fabric.receiver(0, 3).recv().unwrap(), 42);
        assert_eq!(fabric.receiver(3, 0).recv().unwrap(), 7);
        // No cross-talk.
        assert!(fabric.receiver(0, 1).try_recv().is_err());
    }
}
