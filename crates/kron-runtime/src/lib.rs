//! # kron-runtime
//!
//! A persistent serving runtime for Kron-Matmul: the layer the ROADMAP's
//! production north star needs between request traffic and the fused
//! execution path in `fastkron-core`.
//!
//! The paper's kernels shine at large `M`, but real serving traffic (GP
//! inference, graph kernels) arrives as many small-`M` requests — the
//! Table 3/4 shapes that underuse wide hosts. Following Jhurani &
//! Mullowney's observation that many small Kronecker problems should be
//! batched into one launch, this crate turns the small-`M` weakness into
//! the fused path's best case by stacking same-model requests row-wise
//! into one large-`M` execute.
//!
//! ## Architecture
//!
//! ```text
//!  clients                       scheduler thread              compute
//!  ───────                      ─────────────────              ───────
//!  submit(x) ──► [gate] ──► channel ──► batcher ─┬─► plan cache
//!  Ticket / Session              │  groups same-  │   PlanKey → KronPlan
//!    ▲                           │  model small-M │   + Workspace
//!    │                           │  requests      │   + batch buffers
//!    │                           ▼                ▼
//!    │                     gather rows      Workspace::execute_rows
//!    │                     into batch X  ──────► persistent worker pool
//!    │                           │               (rayon::ThreadPool::global,
//!    │                           ▼                row tiles / wide mode)
//!    └──── slot.fill() ◄── scatter rows to per-request Y
//! ```
//!
//! * **Persistent worker pool** — compute runs on the process-wide
//!   [`rayon::ThreadPool`]: long-lived workers parked on a channel, one
//!   task handoff per row tile instead of a thread spawn per execute.
//!   A single unbatchable small-`M` request still uses every core via the
//!   exec layer's column-range splitting (wide mode).
//! * **Plan + workspace cache** — keyed by factor-shape chain and row
//!   capacity (introspectable as [`kron_core::PlanKey`]s): after the
//!   first request of a shape, serving does **zero planning and zero
//!   allocation** per request — plans, ping-pong workspaces, batch
//!   buffers, and sharded engines are all reused (proved by
//!   counting-allocator tests), including across *different models that
//!   share a shape* (execution state depends on shapes only; factor
//!   values arrive with each execute).
//! * **Cross-request batcher** — the scheduler drains the request queue,
//!   groups same-model requests with `M ≤ batch_max_m`, stacks them
//!   row-wise into one batch execute (up to `max_batch_rows` rows), and
//!   scatters results back to each request's output.
//!
//! ## Backends
//!
//! Where a batch executes is a [`Backend`] choice in [`RuntimeConfig`]:
//!
//! * [`Backend::SingleNode`] (default) — the fused-path
//!   [`fastkron_core::Workspace`] on one device, as above.
//! * [`Backend::Distributed`] — the stacked batch shards across a
//!   simulated multi-GPU machine ([`kron_dist::ShardedEngine`]): rows
//!   split `GM`-ways, columns `GK`-ways over a SUMMA-style grid, with
//!   Algorithm 2's grouped exchanges (§5, Figure 11 of the paper) between
//!   factor groups. The scheduler zero-pads each batch to a `GM` multiple,
//!   so any request mix shards; results scatter back per request together
//!   with each request's prorated share of the simulated execution
//!   ([`Ticket::wait_with_stats`], [`Session::last_shard_summary`],
//!   `comm_bytes` in [`RuntimeStats`]). Models the grid cannot shard
//!   (mixed or rectangular factors, indivisible `K`) transparently fall
//!   back to single-node execution; an impossible grid (non-power-of-two
//!   GPU count) fails every request with the documented
//!   [`kron_core::KronError::InvalidGrid`]. A device that panics
//!   mid-batch fails only that batch with
//!   [`kron_core::KronError::DeviceFailure`] — the fabric stays balanced,
//!   later batches re-plan on a fresh engine.
//!
//! Both backends run the same microkernel
//! ([`fastkron_core::sliced_multiply_rows_into`]), so on integer-valued
//! data every execution path agrees bit-for-bit — the invariant the
//! workspace-wide `kron-testkit` differential harness pins.
//!
//! ## Lifecycle and admission control
//!
//! Long-lived many-model deployments get three levers on top of the
//! serving core, all measured on an injectable [`Clock`] (real in
//! production, manually advanced in tests — which is what makes the
//! scheduler's timing behavior deterministically testable):
//!
//! * **Bounded plan cache** — [`CachePolicy`] caps resident entries (LRU
//!   eviction, enforced *before* a new entry builds so live engines never
//!   exceed the bound) and ages idle ones out (`max_idle_us`, swept each
//!   scheduler cycle and via [`Runtime::sweep`]). Evicting a
//!   `Distributed` entry joins its `GM·GK` simulated-device threads
//!   synchronously. In-flight batches pin their entry, and
//!   [`Runtime::pin_model`] gives clients the same RAII pin to keep a hot
//!   model resident; [`RuntimeStats`] counts `evictions`/`rebuilds` and
//!   gauges `cached_entries`.
//! * **Per-request admission control** — [`SubmitOptions`] carries a
//!   `priority` (higher drains first within a scheduling window) and an
//!   absolute `deadline_us` on the runtime's clock ([`Runtime::now_us`]);
//!   a request whose deadline passed before the scheduler picked it up is
//!   shed with [`kron_core::KronError::DeadlineExceeded`] before any plan
//!   lookup or execute. [`Runtime::submit_linked_with`] applies one
//!   deadline to a whole linked group atomically.
//! * **Adaptive linger** — `batch_linger_us` is a cap: the effective
//!   window ([`adaptive_linger_us`]) collapses to zero under sequential
//!   traffic and grows to the cap as the smoothed queue depth rises,
//!   visible as the [`RuntimeStats::current_linger_us`] gauge.
//!
//! ## Usage
//!
//! ```
//! use kron_core::Matrix;
//! use kron_runtime::Runtime;
//!
//! let runtime = Runtime::<f32>::with_defaults();
//! let factors: Vec<Matrix<f32>> = (0..2).map(|_| Matrix::identity(4)).collect();
//! let model = runtime.load_model(factors).unwrap();
//!
//! // Asynchronous: submit returns a ticket, results arrive batched.
//! let x = Matrix::<f32>::from_fn(2, 16, |r, c| (r + c) as f32);
//! let ticket = runtime.submit(&model, x.clone()).unwrap();
//! let y = ticket.wait().unwrap();
//! assert_eq!(y, x); // identity factors ⇒ identity map
//!
//! // Synchronous convenience.
//! let y2 = runtime.execute(&model, x).unwrap();
//! assert_eq!(y2, y);
//! ```
//!
//! For allocation-free steady-state serving, hold a [`Session`] and
//! recycle its buffers: [`Session::call`] moves `x`/`y` in and returns
//! them filled.

#![deny(missing_docs)]

mod cache;
mod clock;
mod runtime;
mod scheduler;

pub use cache::{CachePolicy, PlanCache};
pub use clock::{Clock, ManualClock};
pub use runtime::{
    Backend, Model, ModelPin, Runtime, RuntimeConfig, RuntimeStats, ServeReceipt, Session,
    SubmitOptions, Ticket,
};
pub use scheduler::adaptive_linger_us;
