//! The execution core: virtual threads, vector clocks, the branch path,
//! and the schedule chooser.
//!
//! One [`Execution`] is one *iteration* of the explorer: the model
//! closure runs on real OS threads, but every shared-memory operation
//! funnels through [`Execution::op_point`], which hands the single
//! execution baton to exactly one thread at a time. Each point where
//! more than one action is possible (which thread runs next, which
//! store a load reads from) consults the recorded [`Path`]; choices
//! past the recorded prefix are taken depth-first (or randomly, in
//! random-walk mode) and appended, so the driver in `lib.rs` can
//! enumerate schedules by replaying and advancing the path.

use std::panic::resume_unwind;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on concurrently-live virtual threads per execution. Small on
/// purpose: vector clocks are fixed arrays and bounded exploration only
/// scales to a handful of threads anyway.
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock over the execution's virtual threads.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub(crate) struct VClock([u32; MAX_THREADS]);

impl VClock {
    pub(crate) fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }
    pub(crate) fn tick(&mut self, tid: usize) {
        self.0[tid] += 1;
    }
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0[tid]
    }
}

/// Why a virtual thread is not currently runnable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Blocked {
    /// Runnable.
    None,
    /// Waiting to acquire the mutex object `0`.
    Mutex(usize),
    /// Parked on a condvar until notified (or, when `timeout` is true,
    /// until the explorer chooses to fire the timeout).
    Condvar {
        cv: usize,
        mutex: usize,
        timeout: bool,
    },
    /// Waiting for thread `0` to finish.
    Join(usize),
}

pub(crate) struct ThreadState {
    pub(crate) clock: VClock,
    pub(crate) blocked: Blocked,
    pub(crate) finished: bool,
    /// Set by a voluntary yield; the chooser deprioritizes yielded
    /// threads so model spin loops cannot starve the exploration.
    pub(crate) yielded: bool,
    /// Scratch for `Condvar::wait_timeout`: set when the explorer fired
    /// this thread's timeout instead of a notify reaching it.
    pub(crate) timed_out: bool,
}

/// Registered synchronization objects (mutexes and condvars) live in the
/// core so the chooser can compute schedulability without touching the
/// user-visible wrapper types.
pub(crate) enum ObjState {
    Mutex { locked: bool, sync: VClock },
    Condvar { waiters: Vec<usize> },
}

/// One recorded decision: `chosen` out of `alts` alternatives.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PathEntry {
    pub(crate) chosen: usize,
    pub(crate) alts: usize,
}

/// Exploration mode for choices past the recorded path prefix.
#[derive(Clone, Copy)]
pub(crate) enum Mode {
    /// Take alternative 0 and record, so the driver can advance the path.
    Dfs,
    /// Take a pseudo-random alternative (random-walk fallback).
    Random,
}

/// What went wrong in a failing execution.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in model code).
    Panic,
    /// Every unfinished thread was blocked with no schedulable action —
    /// a deadlock or lost wakeup.
    Deadlock,
    /// More virtual threads than [`MAX_THREADS`] were spawned.
    TooManyThreads,
}

/// Sentinel panic payload used to unwind model threads when an
/// execution is being torn down (failure elsewhere, or branch-bound
/// overflow). Never surfaces to the user.
pub(crate) struct ExplorerAbort;

pub(crate) struct Core {
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) objects: Vec<ObjState>,
    pub(crate) active: usize,
    /// The recorded decision path; `pos` is the replay cursor.
    pub(crate) path: Vec<PathEntry>,
    pub(crate) pos: usize,
    pub(crate) mode: Mode,
    pub(crate) rng: u64,
    pub(crate) preemptions_left: usize,
    pub(crate) max_branches: usize,
    /// The global fence clock: fences join through it (modeled
    /// conservatively as global barriers; see crate docs).
    pub(crate) fence_clock: VClock,
    pub(crate) failure: Option<(FailureKind, String)>,
    /// This path exceeded `max_branches`; the iteration is discarded as
    /// inconclusive and the suite falls back to random walks.
    pub(crate) overflow: bool,
    pub(crate) abort: bool,
    pub(crate) done: bool,
}

/// One iteration's shared state: the core under a real mutex plus the
/// baton condvar every parked thread (and the driver) waits on.
pub struct Execution {
    pub(crate) core: Mutex<Core>,
    pub(crate) cv: Condvar,
}

/// Is a voluntary yield / blocking point (free) or a preemptible
/// operation point (counts against the preemption budget on a switch)?
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum PointKind {
    Op,
    Yield,
    Block,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Action {
    Run(usize),
    FireTimeout(usize),
}

impl Execution {
    pub(crate) fn new(
        path: Vec<PathEntry>,
        mode: Mode,
        seed: u64,
        preemption_bound: usize,
        max_branches: usize,
    ) -> Arc<Self> {
        let mut threads = Vec::with_capacity(MAX_THREADS);
        threads.push(ThreadState {
            clock: VClock::default(),
            blocked: Blocked::None,
            finished: false,
            yielded: false,
            timed_out: false,
        });
        Arc::new(Execution {
            core: Mutex::new(Core {
                threads,
                objects: Vec::new(),
                active: 0,
                path,
                pos: 0,
                mode,
                rng: seed | 1,
                preemptions_left: preemption_bound,
                max_branches,
                fence_clock: VClock::default(),
                failure: None,
                overflow: false,
                abort: false,
                done: false,
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records (or replays) one decision among `alts` alternatives.
    /// Only called with `alts > 1`; forced choices are never recorded.
    pub(crate) fn branch(core: &mut Core, alts: usize) -> usize {
        debug_assert!(alts > 1);
        if core.abort {
            // Teardown: don't record or replay — unwinding drops still
            // perform atomic ops, and their choices must not pollute the
            // path the driver advances.
            return 0;
        }
        if core.pos < core.path.len() {
            let e = core.path[core.pos];
            core.pos += 1;
            debug_assert_eq!(
                e.alts, alts,
                "non-deterministic model: replay saw a different alternative count"
            );
            return e.chosen.min(alts - 1);
        }
        if core.path.len() >= core.max_branches {
            core.overflow = true;
            return 0;
        }
        let chosen = match core.mode {
            Mode::Dfs => 0,
            Mode::Random => {
                // xorshift64*
                let mut x = core.rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                core.rng = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % alts as u64) as usize
            }
        };
        core.path.push(PathEntry { chosen, alts });
        core.pos += 1;
        chosen
    }

    fn schedulable(core: &Core, t: usize) -> Option<Action> {
        let st = &core.threads[t];
        if st.finished {
            return None;
        }
        match st.blocked {
            Blocked::None => Some(Action::Run(t)),
            Blocked::Mutex(m) => match core.objects[m] {
                ObjState::Mutex { locked: false, .. } => Some(Action::Run(t)),
                _ => None,
            },
            Blocked::Join(j) => {
                if core.threads[j].finished {
                    Some(Action::Run(t))
                } else {
                    None
                }
            }
            Blocked::Condvar { timeout: true, .. } => Some(Action::FireTimeout(t)),
            Blocked::Condvar { .. } => None,
        }
    }

    /// Applies the unblock transition for a chosen `Run(t)` action.
    fn unblock(core: &mut Core, t: usize) {
        match core.threads[t].blocked {
            Blocked::None => {}
            Blocked::Mutex(m) => {
                let sync = match &mut core.objects[m] {
                    ObjState::Mutex { locked, sync } => {
                        debug_assert!(!*locked);
                        *locked = true;
                        *sync
                    }
                    ObjState::Condvar { .. } => unreachable!("blocked on a non-mutex"),
                };
                core.threads[t].clock.join(&sync);
                core.threads[t].blocked = Blocked::None;
            }
            Blocked::Join(j) => {
                let child = core.threads[j].clock;
                core.threads[t].clock.join(&child);
                core.threads[t].blocked = Blocked::None;
            }
            Blocked::Condvar { .. } => {
                unreachable!("condvar waiters resume via notify or FireTimeout")
            }
        }
    }

    /// Picks and applies the next action. Returns `true` when `current`
    /// keeps the baton (the caller returns to model code immediately),
    /// `false` when it must park. Records deadlock / wakes the driver as
    /// needed. `current = None` is the thread-finish path.
    pub(crate) fn choose(core: &mut Core, current: Option<usize>, kind: PointKind) -> bool {
        loop {
            let mut actions: Vec<Action> = Vec::new();
            for t in 0..core.threads.len() {
                if let Some(a) = Self::schedulable(core, t) {
                    actions.push(a);
                }
            }
            let current_runnable = current.is_some_and(|c| actions.contains(&Action::Run(c)));
            // Preemption bounding (CHESS-style): once the budget is
            // spent, a runnable thread is never switched away from at an
            // op point. Blocking points and yields stay free.
            if kind == PointKind::Op && current_runnable && core.preemptions_left == 0 {
                actions.retain(|a| *a == Action::Run(current.unwrap_or(usize::MAX)));
            }
            // A voluntary yield prefers any other thread.
            if kind == PointKind::Yield {
                if let Some(c) = current {
                    if actions.len() > 1 {
                        actions.retain(|a| *a != Action::Run(c));
                    }
                }
            }
            // Deprioritize yielded threads (spin-loop fairness) unless
            // they are all that is left.
            let non_yielded: Vec<Action> = actions
                .iter()
                .copied()
                .filter(|a| match a {
                    Action::Run(t) => !core.threads[*t].yielded,
                    Action::FireTimeout(_) => true,
                })
                .collect();
            if !non_yielded.is_empty() {
                actions = non_yielded;
            }

            if actions.is_empty() {
                if core.threads.iter().all(|t| t.finished) {
                    core.done = true;
                    return false;
                }
                let blocked: Vec<String> = core
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.finished)
                    .map(|(i, t)| format!("thread {i}: {:?}", t.blocked))
                    .collect();
                core.failure.get_or_insert((
                    FailureKind::Deadlock,
                    format!(
                        "deadlock / lost wakeup: no schedulable thread ({})",
                        blocked.join(", ")
                    ),
                ));
                core.abort = true;
                return false;
            }

            let idx = if actions.len() == 1 {
                0
            } else {
                Self::branch(core, actions.len())
            };
            match actions[idx] {
                Action::FireTimeout(t) => {
                    // Fire the timed wait: deregister from the condvar,
                    // flag the timeout, and move to mutex re-acquire.
                    let (cv, mutex) = match core.threads[t].blocked {
                        Blocked::Condvar { cv, mutex, .. } => (cv, mutex),
                        _ => unreachable!(),
                    };
                    if let ObjState::Condvar { waiters } = &mut core.objects[cv] {
                        waiters.retain(|w| *w != t);
                    }
                    core.threads[t].timed_out = true;
                    core.threads[t].blocked = Blocked::Mutex(mutex);
                    // Firing a timeout is not running a thread; choose
                    // again with the updated state.
                    continue;
                }
                Action::Run(t) => {
                    if kind == PointKind::Op && current_runnable && current != Some(t) {
                        core.preemptions_left = core.preemptions_left.saturating_sub(1);
                    }
                    Self::unblock(core, t);
                    core.threads[t].yielded = false;
                    core.active = t;
                    return current == Some(t);
                }
            }
        }
    }

    /// A schedule point: called by the active thread before every
    /// shared-memory operation (and on yields / blocking waits). May
    /// hand the baton to another thread and park the caller.
    pub(crate) fn point(self: &Arc<Self>, tid: usize, kind: PointKind) {
        if std::thread::panicking() {
            // Unwinding (assertion failure or abort sentinel): drops of
            // model-facade types re-enter here, and panicking again
            // would be a process abort. Skip scheduling — teardown code
            // just runs to completion on whatever thread holds it.
            return;
        }
        let mut core = self.lock();
        if core.abort {
            drop(core);
            resume_unwind(Box::new(ExplorerAbort));
        }
        if core.overflow {
            // Branch bound exceeded: tear the iteration down quietly.
            core.abort = true;
            self.cv.notify_all();
            drop(core);
            resume_unwind(Box::new(ExplorerAbort));
        }
        let keep = Self::choose(&mut core, Some(tid), kind);
        if keep {
            return;
        }
        self.cv.notify_all();
        self.park(core, tid);
    }

    /// Parks until this thread holds the baton again (or the execution
    /// aborts, in which case the sentinel unwinds the model code).
    pub(crate) fn park(self: &Arc<Self>, mut core: MutexGuard<'_, Core>, tid: usize) {
        loop {
            if core.abort {
                drop(core);
                resume_unwind(Box::new(ExplorerAbort));
            }
            if core.active == tid && !core.threads[tid].finished {
                return;
            }
            core = self.cv.wait(core).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks `tid` finished and hands the baton onward; wakes the driver
    /// when this was the last thread.
    pub(crate) fn finish_thread(self: &Arc<Self>, tid: usize) {
        let mut core = self.lock();
        core.threads[tid].finished = true;
        if core.threads.iter().all(|t| t.finished) {
            core.done = true;
        } else if !core.abort {
            Self::choose(&mut core, None, PointKind::Block);
        }
        self.cv.notify_all();
    }

    /// Records a model-thread panic as the execution's failure (first
    /// one wins) and aborts the iteration.
    pub(crate) fn record_panic(self: &Arc<Self>, msg: String) {
        let mut core = self.lock();
        core.failure.get_or_insert((FailureKind::Panic, msg));
        core.abort = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Per-OS-thread execution context.

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Runs `f` with the calling OS thread's execution context. Panics with
/// a clear message when a model primitive is used outside [`crate::model`].
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b.as_ref().expect(
            "kron-modelcheck primitive used outside a model execution \
             (construct and use model types only inside `model`/`Builder::check`)",
        );
        f(ctx)
    })
}

pub(crate) fn try_with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

/// Registers a new synchronization object with the current execution.
pub(crate) fn register_object(state: ObjState) -> usize {
    with_ctx(|ctx| {
        let mut core = ctx.exec.lock();
        core.objects.push(state);
        core.objects.len() - 1
    })
}
