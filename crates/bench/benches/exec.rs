//! Fused-exec bench: naive vs shuffle vs FTMMT vs the fused sliced-multiply
//! path across the Figure 9 factor sizes, emitting `BENCH_exec.json` at the
//! repo root — the first point of the perf trajectory.
//!
//! The paper's Figure 9 runs `M = 1024` on a 32 GB V100; this is a CPU
//! host, so the (P, N) grid is kept and `M` is scaled down to keep wall
//! clock sane while leaving every case large enough that the engines'
//! memory behavior (the thing the fused path changes) dominates. The
//! naive engine materializes the `∏P × ∏Q` Kronecker matrix, which only
//! fits for the smallest case; it is skipped (`null` in the JSON)
//! elsewhere.
//!
//! Timing protocol per engine/case: one warm-up run, then enough timed
//! runs to cover ~300 ms (2..=10), reporting the minimum (the shim
//! criterion has no statistics machinery; min-of-N is the standard
//! low-noise estimator for single-threaded kernels).

use bench::{fig9_label, figure9_cases};
use fastkron_core::exec::Workspace;
use kron_core::ftmmt::kron_matmul_ftmmt;
use kron_core::naive::kron_matmul_naive;
use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::{KronProblem, Matrix};
use std::hint::black_box;
use std::time::Instant;

/// Bench-scale row count (Figure 9 uses 1024 on the GPU).
const M: usize = 16;

/// Skip the naive engine when the materialized Kronecker matrix would
/// exceed this element count (64 MB of f32).
const NAIVE_MAX_ELEMS: usize = 1 << 24;

/// Timed runs aim to cover this much wall clock after warm-up.
const TARGET_SECONDS: f64 = 0.3;

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 3 * r * cols + c) % 13) as f32 - 6.0
    })
}

/// Min-of-N wall-clock seconds for `routine`, N adapted from the warm-up.
fn measure<R>(mut routine: impl FnMut() -> R) -> f64 {
    let warm = Instant::now();
    black_box(routine());
    let est = warm.elapsed().as_secs_f64();
    let samples = ((TARGET_SECONDS / est.max(1e-9)).ceil() as usize).clamp(2, 10);
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(routine());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct CaseResult {
    p: usize,
    n: usize,
    flops: u64,
    naive_s: Option<f64>,
    shuffle_s: f64,
    ftmmt_s: f64,
    fused_s: f64,
}

impl CaseResult {
    fn gflops(&self, seconds: f64) -> f64 {
        self.flops as f64 / seconds / 1e9
    }
}

fn run_case(p: usize, n: usize) -> CaseResult {
    let problem = KronProblem::uniform(M, p, n).expect("valid Figure 9 case");
    let k = problem.input_cols();
    let x = seq_matrix(M, k, 1);
    let fs: Vec<Matrix<f32>> = (0..n).map(|i| seq_matrix(p, p, i + 2)).collect();
    let refs: Vec<&Matrix<f32>> = fs.iter().collect();

    let mut workspace = Workspace::new(&problem);
    let mut y = Matrix::zeros(M, problem.output_cols());
    let fused_s = measure(|| workspace.execute_into(&x, &refs, &mut y).unwrap());
    let shuffle_s = measure(|| kron_matmul_shuffle(&x, &refs).unwrap());
    let ftmmt_s = measure(|| kron_matmul_ftmmt(&x, &refs).unwrap());
    let naive_s = (k * problem.output_cols() <= NAIVE_MAX_ELEMS)
        .then(|| measure(|| kron_matmul_naive(&x, &refs).unwrap()));

    // Cross-check while we are here: the numbers being compared must be
    // the same numbers.
    let oracle = kron_matmul_shuffle(&x, &refs).unwrap();
    kron_core::assert_matrices_close(&y, &oracle, &format!("bench case {p}^{n}"));

    CaseResult {
        p,
        n,
        flops: problem.flops(),
        naive_s,
        shuffle_s,
        ftmmt_s,
        fused_s,
    }
}

fn json_opt_gflops(r: &CaseResult, s: Option<f64>) -> String {
    match s {
        Some(sec) => format!("{:.3}", r.gflops(sec)),
        None => "null".to_string(),
    }
}

fn emit_json(results: &[CaseResult]) -> String {
    let mut cases = Vec::new();
    for r in results {
        cases.push(format!(
            concat!(
                "    {{\"p\": {}, \"n\": {}, \"flops\": {},\n",
                "     \"seconds\": {{\"naive\": {}, \"shuffle\": {:.6}, \"ftmmt\": {:.6}, \"fused\": {:.6}}},\n",
                "     \"gflops\": {{\"naive\": {}, \"shuffle\": {:.3}, \"ftmmt\": {:.3}, \"fused\": {:.3}}},\n",
                "     \"fused_speedup_vs_shuffle\": {:.3}}}"
            ),
            r.p,
            r.n,
            r.flops,
            r.naive_s
                .map(|s| format!("{s:.6}"))
                .unwrap_or_else(|| "null".to_string()),
            r.shuffle_s,
            r.ftmmt_s,
            r.fused_s,
            json_opt_gflops(r, r.naive_s),
            r.gflops(r.shuffle_s),
            r.gflops(r.ftmmt_s),
            r.gflops(r.fused_s),
            r.shuffle_s / r.fused_s,
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"exec\",\n",
            "  \"description\": \"Figure 9 (P,N) grid, CPU-scaled M; min-of-N wall clock\",\n",
            "  \"dtype\": \"f32\",\n",
            "  \"m\": {},\n",
            "  \"engines\": [\"naive\", \"shuffle\", \"ftmmt\", \"fused\"],\n",
            "  \"cases\": [\n{}\n  ]\n",
            "}}\n"
        ),
        M,
        cases.join(",\n")
    )
}

fn main() {
    let mut results = Vec::new();
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "case", "flops", "naive", "shuffle", "ftmmt", "fused", "speedup"
    );
    for (p, n) in figure9_cases() {
        let r = run_case(p, n);
        println!(
            "{:>8} {:>12} {:>10} {:>10.2} {:>10.2} {:>10.2} {:>7.2}x",
            fig9_label(p, n),
            r.flops,
            r.naive_s
                .map(|s| format!("{:.2}", r.gflops(s)))
                .unwrap_or_else(|| "-".to_string()),
            r.gflops(r.shuffle_s),
            r.gflops(r.ftmmt_s),
            r.gflops(r.fused_s),
            r.shuffle_s / r.fused_s,
        );
        results.push(r);
    }

    let json = emit_json(&results);
    // crates/bench -> repo root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, &json).expect("write BENCH_exec.json");
    println!("\nwrote {path}");

    let losses: Vec<String> = results
        .iter()
        .filter(|r| r.fused_s > r.shuffle_s)
        .map(|r| fig9_label(r.p, r.n))
        .collect();
    if losses.is_empty() {
        println!("fused beats shuffle on every Figure 9 size");
    } else {
        println!("fused SLOWER than shuffle on: {}", losses.join(", "));
        std::process::exit(1);
    }
}
