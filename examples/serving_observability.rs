//! The serving flight deck: per-request stage timelines, zero-alloc
//! latency histograms, per-model / per-device registries, and the chaos
//! flight recorder — driven by a mixed f32/f64 burst with one scripted
//! device fault in the middle.
//!
//! The tour:
//!
//! 1. serve a burst of batched f32 and f64 requests plus one large solo,
//!    with a one-shot device panic injected mid-burst (retried away);
//! 2. read one request's `ServeReceipt` — the exact microseconds it
//!    spent queued, lingering, planning, executing, scattering, and
//!    waiting out retry backoff;
//! 3. read the `RuntimeStats` table and the decomposition invariant
//!    (`served == batched + solo + error_replies`);
//! 4. read the `MetricsSnapshot` — per-stage/per-outcome histograms with
//!    p50/p95/p99, the per-model registry, the per-device registry — and
//!    render it as JSON and Prometheus text;
//! 5. drain the flight recorder: the burst's admits, batches, executes,
//!    the injected fault, the blame, the eviction, and the retry, in
//!    causal order.
//!
//! Run with `cargo run --release --example serving_observability`.

use fastkron::prelude::*;

fn f64_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 3 * r * cols + c) % 13) as f64 - 6.0
    })
}

fn f32_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 5 * r * cols + 2 * c) % 11) as f32 - 5.0
    })
}

fn event_line(e: &ServeEvent) -> String {
    let kind = match e.kind {
        ServeEventKind::Admit { dtype, rows, .. } => {
            format!("admit        {rows} rows ({dtype:?})")
        }
        ServeEventKind::Shed {
            deadline_us,
            now_us,
        } => format!("shed         deadline {deadline_us}us < now {now_us}us"),
        ServeEventKind::BatchFormed { requests, rows, .. } => {
            format!("batch-formed {requests} requests / {rows} rows")
        }
        ServeEventKind::Execute {
            rows,
            sharded,
            ok,
            exec_us,
        } => format!(
            "execute      {rows} rows {} -> {} in {exec_us}us",
            if sharded { "sharded" } else { "local" },
            if ok { "ok" } else { "FAIL" },
        ),
        ServeEventKind::Fault { gpu, timeout } => format!(
            "fault        gpu{gpu} blamed{}",
            if timeout { " (watchdog timeout)" } else { "" }
        ),
        ServeEventKind::FaultInjected { gpu, kind } => {
            format!("chaos        injected {kind:?} on gpu{gpu}")
        }
        ServeEventKind::Retry {
            attempt,
            limit_gpus,
        } => {
            format!("retry        attempt {attempt} on <= {limit_gpus} gpus")
        }
        ServeEventKind::Degrade { from_gpus, to_gpus } => {
            format!("degrade      {from_gpus} -> {to_gpus} gpus")
        }
        ServeEventKind::Breaker { gpu, to } => format!("breaker      gpu{gpu} -> {to:?}"),
        ServeEventKind::Eviction {
            capacity, reason, ..
        } => {
            format!("eviction     capacity {capacity} ({reason:?})")
        }
        ServeEventKind::Bypass {
            dtype,
            rows,
            exec_us,
            ..
        } => {
            format!("bypass       {rows} rows ({dtype:?}) in {exec_us}us")
        }
        ServeEventKind::Steal { from, to, requests } => {
            format!("steal        lane {from} -> lane {to} ({requests} requests)")
        }
    };
    format!("  [{:>8}us] {kind}", e.at_us)
}

fn main() {
    // Keep the injected device panic's backtrace out of the tour.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let on_sim_device = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("kron-sim-gpu"));
        if !on_sim_device {
            default_hook(info);
        }
    }));

    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 64,
        batch_max_m: 8,
        batch_linger_us: 200,
        backend: Backend::Distributed { gpus: 4, p2p: true },
        ..RuntimeConfig::default()
    });
    let model64 = runtime
        .load_model((0..2).map(|i| f64_matrix(4, 4, i + 1)).collect())
        .expect("valid f64 model");
    let model32 = runtime
        .load_model((0..2).map(|i| f32_matrix(4, 4, i + 2)).collect())
        .expect("valid f32 model");

    // ---- 1. the burst, with one scripted fault mid-flight. -----------
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch(1, 0))
        .expect("valid plan");
    let mut tickets64 = Vec::new();
    let mut tickets32 = Vec::new();
    for i in 0..12 {
        tickets64.push(
            runtime
                .submit(&model64, f64_matrix(4, model64.input_cols(), 10 + i))
                .expect("submit f64"),
        );
        tickets32.push(
            runtime
                .submit(&model32, f32_matrix(4, model32.input_cols(), 20 + i))
                .expect("submit f32"),
        );
    }
    // One large-M request: served solo, past the batching lane.
    let solo = runtime
        .submit(&model64, f64_matrix(32, model64.input_cols(), 40))
        .expect("submit solo");

    let mut worst: Option<ServeReceipt> = None;
    let mut keep_worst = |r: ServeReceipt| {
        if worst.as_ref().is_none_or(|w| r.attempts > w.attempts) {
            worst = Some(r);
        }
    };
    for t in tickets64 {
        let (_, r) = t.wait_with_receipt().expect("f64 serve");
        keep_worst(r);
    }
    for t in tickets32 {
        let (_, r) = t.wait_with_receipt().expect("f32 serve");
        keep_worst(r);
    }
    let (_, solo_receipt) = solo.wait_with_receipt().expect("solo serve");
    let worst = worst.expect("had f64 receipts");

    // ---- 2. one request's timeline. ----------------------------------
    println!("== the faulted batch's receipt ==\n{worst}");
    assert!(worst.attempts > 1, "the scripted fault was retried away");
    println!("solo timeline: {}\n", solo_receipt.timings);

    // ---- 3. the stats table and its invariant. -----------------------
    let stats = runtime.stats();
    println!("== runtime stats ==\n{stats}");
    assert_eq!(
        stats.served,
        stats.batched_requests + stats.solo_requests + stats.error_replies,
        "every reply lands in exactly one bucket"
    );

    // ---- 4. the snapshot: histograms and registries. -----------------
    let snap = runtime.metrics_snapshot();
    println!("== stage tails (microseconds) ==");
    for (stage, h) in &snap.stages {
        println!(
            "  {:<8} count {:>3}  p50 {:>6}  p95 {:>6}  p99 {:>6}",
            stage.name(),
            h.count,
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
        );
    }
    println!("== model registry ==");
    for m in &snap.models {
        println!(
            "  {:?} shape {:#018x} capacity {:>3}: {} serves, {} hits/{} misses, p99 {}us",
            m.dtype,
            m.shape_key,
            m.capacity,
            m.serves,
            m.plan_hits,
            m.plan_misses,
            m.latency.percentile(0.99),
        );
    }
    println!("== device registry ==");
    for d in &snap.devices {
        println!(
            "  gpu{}: {} executes, {} faults, exec p99 {}us",
            d.gpu,
            d.metrics.executes,
            d.metrics.faults,
            d.metrics.exec_latency.percentile(0.99),
        );
    }
    let json = snap.to_json();
    let prom = snap.to_prometheus();
    println!("json export: {} bytes (stable keys)", json.len());
    println!("prometheus export: {} lines, e.g.:", prom.lines().count());
    for line in prom.lines().filter(|l| l.starts_with("kron_served")) {
        println!("  {line}");
    }

    // ---- 5. the flight recorder. -------------------------------------
    let events = runtime.drain_events();
    println!("\n== flight recorder ({} events) ==", events.len());
    let fault_at = events
        .iter()
        .position(|e| matches!(e.kind, ServeEventKind::Fault { .. }))
        .expect("the scripted fault is on the record");
    // Print the window around the chaos: the fault, its cause, and the
    // recovery — the whole incident is reconstructable post-mortem.
    let lo = fault_at.saturating_sub(4);
    let hi = (fault_at + 5).min(events.len());
    for e in &events[lo..hi] {
        println!("{}", event_line(e));
    }
    assert!(
        runtime.drain_events().is_empty(),
        "the drain cursor advanced"
    );

    runtime.shutdown();
}
