//! Vendored API-subset shim of [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this workspace vendors
//! the thin slice of rayon's API its crates actually use: `par_chunks`,
//! `par_chunks_mut`, and the `enumerate`/`zip`/`for_each` adaptors on the
//! resulting parallel iterators. Parallelism is real — work is split across
//! `std::thread::scope` threads — but there is no work stealing: chunks are
//! statically partitioned, which matches the uniform per-chunk cost of every
//! call site in the workspace.
//!
//! On a single-hardware-thread host (or when there is at most one chunk)
//! everything degrades to a plain serial loop with no thread spawns.

#![deny(missing_docs)]

use std::num::NonZeroUsize;

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads the shim will use (the host's available
/// parallelism; rayon's default thread-pool size). Cached — the underlying
/// query parses cgroup quotas and allocates on every call.
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Distributes `items` across scoped threads and applies `f` to each.
///
/// Falls back to a serial loop when only one item or one hardware thread is
/// available, spawning nothing.
fn drive<T: Send, F: Fn(T) + Send + Sync>(items: Vec<T>, f: F) {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    let per_thread = items.len().div_ceil(threads);
    let mut buckets: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let take = per_thread.min(items.len());
        let rest = items.split_off(take);
        buckets.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    std::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move || bucket.into_iter().for_each(f));
        }
    });
}

/// A finite parallel iterator: materializes its items, then fans them out.
pub trait ParallelIterator: Sized {
    /// The item type produced for each parallel task.
    type Item: Send;

    /// Collects every item this iterator will yield (chunk handles, not
    /// element data — cheap even for huge buffers).
    fn into_items(self) -> Vec<Self::Item>;

    /// Applies `f` to every item across the worker threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(self.into_items(), f);
    }

    /// Pairs each item with its index, like [`Iterator::enumerate`].
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Zips two parallel iterators item-by-item, like [`Iterator::zip`].
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }
}

/// Parallel-iterator adaptor produced by [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.inner.into_items().into_iter().enumerate().collect()
    }
}

/// Parallel-iterator adaptor produced by [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.a
            .into_items()
            .into_iter()
            .zip(self.b.into_items())
            .collect()
    }
}

/// Parallel chunked view of a shared slice (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Like [`slice::chunks`], but the chunks are processed in parallel.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel chunked view of a mutable slice (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Like [`slice::chunks_mut`], but the chunks are processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over immutable slice chunks.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn into_items(self) -> Vec<Self::Item> {
        self.slice.chunks(self.chunk_size).collect()
    }
}

/// Parallel iterator over mutable slice chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn into_items(self) -> Vec<Self::Item> {
        self.slice.chunks_mut(self.chunk_size).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_enumerate_covers_all_chunks() {
        let mut data = vec![0usize; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }

    #[test]
    fn zip_pairs_matching_chunks() {
        let src = [1i64, 2, 3, 4, 5, 6];
        let mut dst = vec![0i64; 6];
        src.par_chunks(2)
            .zip(dst.par_chunks_mut(2))
            .for_each(|(s, d)| {
                for (sv, dv) in s.iter().zip(d.iter_mut()) {
                    *dv = sv * 10;
                }
            });
        assert_eq!(dst, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut data: Vec<u8> = Vec::new();
        data.par_chunks_mut(4).for_each(|_| panic!("no chunks"));
    }
}
