//! The naive Kron-Matmul: materialize the Kronecker matrix, then GEMM.
//!
//! `O(M · ∏Pᵢ · ∏Qᵢ)` time and `O(∏Pᵢ · ∏Qᵢ)` space — unusable at the
//! paper's sizes but the unimpeachable correctness oracle for everything
//! else in the workspace.

use crate::element::Element;
use crate::error::{KronError, Result};
use crate::gemm::gemm;
use crate::kron::kron_product_chain;
use crate::matrix::Matrix;

/// Computes `Y = X · (F1 ⊗ … ⊗ FN)` by materializing the Kronecker matrix.
///
/// # Errors
/// Shape errors when `X.cols() != ∏ᵢ Fᵢ.rows()` or `factors` is empty.
pub fn kron_matmul_naive<T: Element>(x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
    let k: usize = factors.iter().map(|f| f.rows()).product();
    if factors.is_empty() {
        return Err(KronError::NoFactors);
    }
    if x.cols() != k {
        return Err(KronError::ShapeMismatch {
            expected: format!("X with ∏Pᵢ = {k} cols"),
            found: format!("X with {} cols", x.cols()),
        });
    }
    let g = kron_product_chain(factors)?;
    gemm(x, &g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_factors_are_identity_map() {
        let x = Matrix::<f64>::from_fn(3, 8, |r, c| (r * 8 + c) as f64);
        let i2 = Matrix::<f64>::identity(2);
        let y = kron_matmul_naive(&x, &[&i2, &i2, &i2]).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn single_factor_reduces_to_gemm() {
        let x = Matrix::<f64>::from_fn(4, 3, |r, c| (r + 2 * c) as f64);
        let f = Matrix::<f64>::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let y = kron_matmul_naive(&x, &[&f]).unwrap();
        assert_eq!(y, crate::gemm::gemm_naive(&x, &f).unwrap());
    }

    #[test]
    fn matches_paper_figure1_example() {
        // Figure 1/2 of the paper: X is 2×4, two 2×2 factors.
        // Verify one element of Y2 = reshape(X,4×2)·F2 by hand through the
        // full naive product instead.
        let x =
            Matrix::<f64>::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        let f1 = Matrix::<f64>::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap(); // identity
        let f2 = Matrix::<f64>::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = kron_matmul_naive(&x, &[&f1, &f2]).unwrap();
        // With F1 = I, Y row 0 = [x11 x12]·F2 ++ [x13 x14]·F2
        //  = [1·1+2·3, 1·2+2·4, 3·1+4·3, 3·2+4·4] = [7, 10, 15, 22].
        assert_eq!(y.row(0), &[7.0, 10.0, 15.0, 22.0]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Matrix::<f32>::zeros(2, 5);
        let f = Matrix::<f32>::identity(2);
        assert!(kron_matmul_naive(&x, &[&f, &f]).is_err());
        assert!(kron_matmul_naive::<f32>(&x, &[]).is_err());
    }
}
