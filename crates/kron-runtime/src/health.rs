//! Per-device health tracking and the circuit breaker that quarantines a
//! repeatedly-failing simulated device.
//!
//! Retry alone turns a *transient* device fault into a latency blip, but
//! a device that fails every batch would burn the whole retry budget of
//! every batch routed across it. The breaker cuts that loop: each device
//! accumulates consecutive failures ([`KronError::DeviceFailure`] /
//! [`KronError::DeviceTimeout`] naming it), and at
//! [`BreakerPolicy::trip_after`] the device trips `Closed → Open`. While
//! a device is Open its grid is quarantined — new plans build on the
//! largest power-of-two device prefix containing no open breaker (down to
//! single-device), so traffic keeps flowing around the sick device with
//! no retry at all. After [`BreakerPolicy::cooldown_us`] on the runtime's
//! clock the breaker relaxes to HalfOpen: the full grid is offered again,
//! one success closes the breaker, one failure re-trips it for another
//! cooldown.
//!
//! All timing runs on timestamps the caller reads from the runtime's
//! [`crate::clock::Clock`], so trip/recover sequences are deterministic
//! under a manual clock. The healthy fast path is one atomic load — no
//! lock, no allocation — so steady-state serving cost is unchanged.
//!
//! [`KronError::DeviceFailure`]: kron_core::KronError::DeviceFailure
//! [`KronError::DeviceTimeout`]: kron_core::KronError::DeviceTimeout

use crate::metrics::{DeviceMetricsSnapshot, MetricsHub};
use crate::trace::ServeEventKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Circuit-breaker tuning, part of [`crate::RuntimeConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures on one device that trip its breaker open.
    pub trip_after: u32,
    /// How long a tripped device stays quarantined before the breaker
    /// relaxes to half-open (microseconds on the runtime's clock).
    pub cooldown_us: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            trip_after: 3,
            cooldown_us: 500_000,
        }
    }
}

/// Observable breaker state of one device (see
/// [`crate::Runtime::device_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the device serves normally.
    Closed,
    /// Tripped: the device is quarantined (its grid builds degraded)
    /// until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the device is probationally back in service —
    /// one success closes the breaker, one failure re-trips it.
    HalfOpen,
}

/// One device's row of the [`crate::Runtime::device_health`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceHealthReport {
    /// Linear device id on the configured machine.
    pub gpu: usize,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Current breaker state.
    pub state: BreakerState,
    /// Times this device's breaker has tripped over the runtime's life.
    pub trips: u64,
    /// Execute/fault counters and execute latency for this device.
    pub metrics: DeviceMetricsSnapshot,
}

/// Internal per-device state. `Open` keeps the trip time so quarantine
/// and the half-open transition are pure clock arithmetic.
#[derive(Clone, Copy)]
enum State {
    Closed,
    Open { since_us: u64 },
    HalfOpen,
}

#[derive(Clone, Copy)]
struct DeviceState {
    consecutive_failures: u32,
    state: State,
    trips: u64,
}

/// Shared device-health ledger: the scheduler records outcomes, plan
/// builds consult [`Self::allowed_gpus`], and the runtime handle probes
/// [`Self::report`]. `suspect` is the healthy fast-path gate: while every
/// device is Closed with zero failures, nothing below ever locks.
pub(crate) struct DeviceHealth {
    policy: BreakerPolicy,
    suspect: AtomicBool,
    inner: Mutex<Vec<DeviceState>>,
    hub: Arc<MetricsHub>,
}

impl DeviceHealth {
    /// A ledger for `gpus` devices (0 for a single-node runtime, which
    /// has no devices to quarantine). Breaker transitions are recorded
    /// into `hub`'s flight recorder.
    pub(crate) fn new(gpus: usize, policy: BreakerPolicy, hub: Arc<MetricsHub>) -> Self {
        DeviceHealth {
            policy,
            suspect: AtomicBool::new(false),
            inner: Mutex::new(vec![
                DeviceState {
                    consecutive_failures: 0,
                    state: State::Closed,
                    trips: 0,
                };
                gpus
            ]),
            hub,
        }
    }

    /// Whether any device carries failures or a non-closed breaker — the
    /// one-atomic-load gate in front of every slow path here.
    pub(crate) fn is_suspect(&self) -> bool {
        self.suspect.load(Ordering::SeqCst)
    }

    /// Records a failure attributed to `gpu` at clock time `now_us`.
    /// Returns `true` when this failure tripped the breaker (Closed with
    /// the threshold reached, or a failed half-open probe re-tripping).
    pub(crate) fn record_failure(&self, gpu: usize, now_us: u64) -> bool {
        let mut devices = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(d) = devices.get_mut(gpu) else {
            return false;
        };
        self.suspect.store(true, Ordering::SeqCst);
        d.consecutive_failures = d.consecutive_failures.saturating_add(1);
        let trip = match d.state {
            State::HalfOpen => true,
            State::Closed => d.consecutive_failures >= self.policy.trip_after,
            State::Open { .. } => false,
        };
        if trip {
            d.state = State::Open { since_us: now_us };
            d.trips += 1;
            self.hub.event(
                now_us,
                ServeEventKind::Breaker {
                    gpu: gpu as u32,
                    to: BreakerState::Open,
                },
            );
        }
        trip
    }

    /// Records a successful sharded execute over the first `gpus_used`
    /// devices at clock time `now_us`: resets their failure counts and
    /// closes any breaker whose cooldown had elapsed (the half-open probe
    /// that just succeeded). Devices outside the executing grid are
    /// untouched — a degraded batch proves nothing about the quarantined
    /// device it routed around.
    pub(crate) fn record_success(&self, gpus_used: usize, now_us: u64) {
        if !self.is_suspect() {
            return;
        }
        let mut devices = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let n = gpus_used.min(devices.len());
        for (gpu, d) in devices[..n].iter_mut().enumerate() {
            d.consecutive_failures = 0;
            let closed = match d.state {
                State::HalfOpen => true,
                State::Open { since_us } => {
                    now_us.saturating_sub(since_us) >= self.policy.cooldown_us
                }
                State::Closed => false,
            };
            if closed {
                d.state = State::Closed;
                self.hub.event(
                    now_us,
                    ServeEventKind::Breaker {
                        gpu: gpu as u32,
                        to: BreakerState::Closed,
                    },
                );
            }
        }
        let clean = devices
            .iter()
            .all(|d| d.consecutive_failures == 0 && matches!(d.state, State::Closed));
        if clean {
            self.suspect.store(false, Ordering::SeqCst);
        }
    }

    /// The device limit plans may build against right now: the largest
    /// power-of-two prefix of the machine's `configured` devices that
    /// contains no quarantined (Open, cooldown unexpired) device, floored
    /// at 1 (single-device fallback even when device 0 is open — local
    /// execution has no device to quarantine). Breakers whose cooldown
    /// has elapsed transition Open → HalfOpen here, lazily on the clock.
    pub(crate) fn allowed_gpus(&self, now_us: u64, configured: usize) -> usize {
        if !self.is_suspect() {
            return configured;
        }
        let mut devices = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for (gpu, d) in devices.iter_mut().enumerate() {
            if let State::Open { since_us } = d.state {
                if now_us.saturating_sub(since_us) >= self.policy.cooldown_us {
                    d.state = State::HalfOpen;
                    self.hub.event(
                        now_us,
                        ServeEventKind::Breaker {
                            gpu: gpu as u32,
                            to: BreakerState::HalfOpen,
                        },
                    );
                }
            }
        }
        let quarantined = |d: &DeviceState| matches!(d.state, State::Open { .. });
        let mut limit = configured.min(devices.len().max(1));
        while limit > 1 && devices[..limit.min(devices.len())].iter().any(quarantined) {
            limit /= 2;
        }
        limit
    }

    /// Snapshot of every device's health for the
    /// [`crate::Runtime::device_health`] probe. Read-only: an elapsed
    /// cooldown shows as [`BreakerState::HalfOpen`] without mutating the
    /// ledger.
    pub(crate) fn report(&self, now_us: u64) -> Vec<DeviceHealthReport> {
        let devices = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        devices
            .iter()
            .enumerate()
            .map(|(gpu, d)| DeviceHealthReport {
                gpu,
                consecutive_failures: d.consecutive_failures,
                state: match d.state {
                    State::Closed => BreakerState::Closed,
                    State::HalfOpen => BreakerState::HalfOpen,
                    State::Open { since_us } => {
                        if now_us.saturating_sub(since_us) >= self.policy.cooldown_us {
                            BreakerState::HalfOpen
                        } else {
                            BreakerState::Open
                        }
                    }
                },
                trips: d.trips,
                metrics: self.hub.device_snapshot(gpu),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            trip_after: 3,
            cooldown_us: 1_000,
        }
    }

    fn ledger(gpus: usize) -> DeviceHealth {
        DeviceHealth::new(gpus, policy(), Arc::new(MetricsHub::new(gpus)))
    }

    #[test]
    fn healthy_ledger_is_wide_open_and_lock_free() {
        let h = ledger(4);
        assert!(!h.is_suspect());
        assert_eq!(h.allowed_gpus(0, 4), 4);
        assert!(h.report(0).iter().all(|d| d.state == BreakerState::Closed));
    }

    #[test]
    fn trips_at_threshold_quarantines_then_half_opens_and_recovers() {
        let h = ledger(4);
        assert!(!h.record_failure(2, 10));
        assert!(!h.record_failure(2, 20));
        assert!(h.record_failure(2, 30), "third consecutive failure trips");
        assert_eq!(h.report(30)[2].state, BreakerState::Open);
        assert_eq!(h.report(30)[2].trips, 1);
        // Quarantine: device 2 open halves the grid past it → limit 2.
        assert_eq!(h.allowed_gpus(31, 4), 2);
        // A degraded success must not close device 2's breaker.
        h.record_success(2, 40);
        assert_eq!(h.allowed_gpus(41, 4), 2);
        // Cooldown elapses: half-open, full grid offered again.
        assert_eq!(h.report(1_030)[2].state, BreakerState::HalfOpen);
        assert_eq!(h.allowed_gpus(1_030, 4), 4);
        // The probing success closes it.
        h.record_success(4, 1_040);
        assert!(!h.is_suspect());
        assert_eq!(h.report(1_040)[2].state, BreakerState::Closed);
    }

    #[test]
    fn failed_half_open_probe_retrips_immediately() {
        let h = ledger(4);
        for t in [0, 1, 2] {
            h.record_failure(1, t);
        }
        assert_eq!(h.allowed_gpus(2_000, 4), 4, "half-open after cooldown");
        assert!(h.record_failure(1, 2_010), "one half-open failure re-trips");
        assert_eq!(h.report(2_020)[1].state, BreakerState::Open);
        assert_eq!(h.report(2_020)[1].trips, 2);
        assert_eq!(h.allowed_gpus(2_020, 4), 1, "device 1 open caps the prefix");
    }

    #[test]
    fn open_device_zero_degrades_to_single_device() {
        let h = ledger(4);
        for t in [0, 1, 2] {
            h.record_failure(0, t);
        }
        assert_eq!(h.allowed_gpus(10, 4), 1);
    }

    #[test]
    fn successes_outside_the_grid_leave_other_devices_alone() {
        let h = ledger(4);
        h.record_failure(3, 0);
        h.record_failure(3, 1);
        // A 2-device success resets only devices 0-1.
        h.record_success(2, 5);
        assert_eq!(h.report(5)[3].consecutive_failures, 2);
        assert!(h.is_suspect());
        // A full-grid success clears everything.
        h.record_success(4, 6);
        assert!(!h.is_suspect());
    }
}
