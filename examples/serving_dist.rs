//! Distributed serving walkthrough: the same `kron-runtime` API as
//! `examples/serving.rs`, but batches shard across a simulated 8-GPU
//! machine (§5 of the paper, Algorithm 2) instead of one device.
//!
//! What to watch:
//! * the runtime stacks small requests row-wise, zero-pads the batch to a
//!   `GM` multiple, and executes it sharded `{GM, GK}`-ways with grouped
//!   exchanges between factor groups;
//! * every request gets back its prorated share of the *simulated*
//!   execution — seconds, inter-GPU bytes, launches — through
//!   `Ticket::wait_with_stats` / `Session::last_shard_summary`;
//! * a model the grid cannot shard falls back to single-node serving
//!   transparently (`local_fallbacks` in the stats);
//! * an injected device fault is retried away by the default
//!   `RetryPolicy` — the client sees a correct result and the receipt
//!   records the extra attempt.
//!
//! Run with `cargo run --release --example serving_dist`.

use fastkron::prelude::*;
use kron_core::shuffle::kron_matmul_shuffle;

fn main() {
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 64,
        batch_max_m: 16,
        backend: Backend::Distributed {
            gpus: 8,
            p2p: false,
        },
        ..RuntimeConfig::default()
    });

    // A shardable model: 16 ⊗ 16 ⊗ 16 (uniform square, K divides the grid).
    let factors: Vec<Matrix<f32>> = (0..3)
        .map(|i| Matrix::from_fn(16, 16, |r, c| ((i * 5 + r * 16 + c) % 11) as f32 - 5.0))
        .collect();
    let model = runtime.load_model(factors.clone()).expect("valid model");
    let refs: Vec<&Matrix<f32>> = factors.iter().collect();
    println!(
        "model: {} factors, K = L = {} — sharding over 8 simulated GPUs",
        model.num_factors(),
        model.input_cols()
    );

    // A burst of small requests: batched, padded, sharded, scattered back.
    let mut tickets = Vec::new();
    let mut oracles = Vec::new();
    for i in 0..24 {
        let m = 1 + i % 3;
        let x = Matrix::<f32>::from_fn(m, model.input_cols(), |r, c| {
            ((i + 3 * r + c) % 7) as f32 - 3.0
        });
        oracles.push(kron_matmul_shuffle(&x, &refs).expect("oracle"));
        tickets.push(runtime.submit(&model, x).expect("submit"));
    }
    let mut comm_bytes = 0u64;
    let mut sim_seconds = 0.0;
    for (i, (ticket, oracle)) in tickets.into_iter().zip(&oracles).enumerate() {
        let (y, stats) = ticket.wait_with_stats().expect("serve");
        assert_matrices_close(&y, oracle, &format!("request {i}"));
        if let Some(s) = stats {
            comm_bytes += s.comm_bytes;
            sim_seconds += s.seconds;
        }
    }
    println!(
        "served 24 sharded requests: {:.3} simulated ms, {:.1} KiB over the simulated fabric",
        sim_seconds * 1e3,
        comm_bytes as f64 / 1024.0
    );

    // Chaos drill: fault simulated device 3. With the default
    // `RetryPolicy` the failed batch is retried away transparently — the
    // client sees a correct result, and the receipt records the extra
    // attempt. (Set `retry.max_attempts: 0` to surface the raw
    // `KronError::DeviceFailure` instead.)
    runtime.inject_device_fault(3).expect("device 3 exists");
    let x = Matrix::<f32>::from_fn(4, model.input_cols(), |r, c| (r + c) as f32 % 5.0);
    let t = runtime.submit(&model, x.clone()).expect("submit");
    let (y, receipt) = t
        .wait_with_receipt()
        .expect("the fault is retried away, not surfaced");
    let expected = kron_matmul_shuffle(&x, &refs).expect("oracle");
    assert_matrices_close(&y, &expected, "recovered batch");
    assert!(receipt.attempts > 1, "receipt: {receipt}");
    println!(
        "fault drill: device 3 panicked mid-batch -> recovered in {} attempts on grid {:?}",
        receipt.attempts, receipt.grid
    );
    let y = runtime
        .execute(&model, x.clone())
        .expect("post-fault serve");
    assert_matrices_close(&y, &expected, "post-fault batch");
    println!("fault drill: next batch served correctly");

    // A rectangular model the grid cannot shard: transparent fallback.
    let rect: Vec<Matrix<f32>> = vec![
        Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 % 4.0 - 2.0),
        Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 % 3.0 - 1.0),
    ];
    let rect_model = runtime.load_model(rect.clone()).expect("valid model");
    let rect_refs: Vec<&Matrix<f32>> = rect.iter().collect();
    let x = Matrix::<f32>::from_fn(5, rect_model.input_cols(), |r, c| (r + 2 * c) as f32 % 6.0);
    let expected = kron_matmul_shuffle(&x, &rect_refs).expect("oracle");
    let y = runtime.execute(&rect_model, x).expect("fallback serve");
    assert_matrices_close(&y, &expected, "fallback result");
    println!("unshardable model served through the single-node fallback");

    let stats = runtime.stats();
    println!(
        "stats: served={} sharded_batches={} comm_bytes={} local_fallbacks={} \
         plan hits/misses={}/{}",
        stats.served,
        stats.sharded_batches,
        stats.comm_bytes,
        stats.local_fallbacks,
        stats.plan_hits,
        stats.plan_misses
    );
    runtime.shutdown();
    println!("runtime drained and shut down");
}
