//! Serving: run the persistent `kron-runtime` over a stream of small-M
//! requests — the Table 3/4-style traffic (GP inference, graph kernels)
//! that single executes underuse hardware on — and watch the plan cache
//! and cross-request batcher do their work.
//!
//! Run with `cargo run --release --example serving`.

use fastkron::prelude::*;
use kron_core::shuffle::kron_matmul_shuffle;

fn main() {
    // A runtime with a modest batch budget; `batch_linger_us` lets bursts
    // coalesce even on small hosts.
    let runtime = Runtime::<f32>::new(RuntimeConfig {
        max_batch_rows: 128,
        batch_max_m: 16,
        batch_linger_us: 200,
        ..RuntimeConfig::default()
    });

    // "Load the model once": a GP-style kernel operator 8 ⊗ 8 ⊗ 8.
    let factors: Vec<Matrix<f32>> = (0..3)
        .map(|i| Matrix::from_fn(8, 8, |r, c| ((i * 5 + r * 8 + c) % 11) as f32 - 5.0))
        .collect();
    let model = runtime.load_model(factors.clone()).expect("valid model");
    println!(
        "model: {} factors, X has {} cols, Y has {} cols",
        model.num_factors(),
        model.input_cols(),
        model.output_cols()
    );

    // Fire a burst of small-M requests, then collect: in-flight same-model
    // requests are stacked row-wise into large-M fused executes.
    let refs: Vec<&Matrix<f32>> = factors.iter().collect();
    let mut tickets = Vec::new();
    let mut oracles = Vec::new();
    for i in 0..64 {
        let m = 1 + i % 4; // M ∈ {1..4}: far too small to use a wide host alone
        let x = Matrix::<f32>::from_fn(m, model.input_cols(), |r, c| {
            ((i + 3 * r + c) % 7) as f32 - 3.0
        });
        oracles.push(kron_matmul_shuffle(&x, &refs).expect("oracle"));
        tickets.push(runtime.submit(&model, x).expect("submit"));
    }
    for (i, (ticket, oracle)) in tickets.into_iter().zip(&oracles).enumerate() {
        let y = ticket.wait().expect("serve");
        assert_matrices_close(&y, oracle, &format!("request {i}"));
    }
    println!("served and verified 64 burst requests");

    // Synchronous, allocation-free steady state: a session recycles its
    // buffers; after the first call of a shape, no allocation happens
    // anywhere in the process per request.
    let mut session = runtime.session();
    let mut x = Matrix::<f32>::from_fn(4, model.input_cols(), |r, c| (r + c) as f32);
    let mut y = Matrix::zeros(4, model.output_cols());
    for _ in 0..100 {
        (x, y) = session.call(&model, x, y).expect("session call");
    }
    println!("session served 100 recycled-buffer requests");

    let stats = runtime.stats();
    println!(
        "stats: served={} (batched={} over {} fused executes, solo={}), \
         plan cache hits/misses = {}/{}",
        stats.served,
        stats.batched_requests,
        stats.batches,
        stats.solo_requests,
        stats.plan_hits,
        stats.plan_misses
    );
    runtime.shutdown();
    println!("runtime drained and shut down");
}
