//! The COGENT / cuTensor baselines: the FTMMT algorithm with direct
//! caching and per-iteration global intermediates.
//!
//! Both systems fuse the transpose into the contraction (so they beat the
//! shuffle algorithm) but — per §2.2 of the paper — they
//!
//! 1. cache with the *direct* strategy ("cache contiguous P elements of
//!    the last dimension … to P registers of consecutive threads"), which
//!    serializes shared-memory banks when the slice stride hits the bank
//!    count, and
//! 2. store each iteration's output in global memory and re-load it for
//!    the next factor (no cross-iteration fusion).
//!
//! We model them with the same kernel emulator FastKron uses, constrained
//! to that caching strategy and never fused, with tiles tuned per system's
//! published behaviour. That makes Table 2 (shared-memory transactions,
//! COGENT vs FastKron) a controlled experiment over one variable.

use fastkron_core::kernel::SlicedMultiplyKernel;
use fastkron_core::tuner::{AutoTuner, Constraints};
use fastkron_core::Caching;
use gpu_sim::cost::CostModel;
use gpu_sim::device::DeviceSpec;
use gpu_sim::trace::Tracer;
use gpu_sim::ExecReport;
use kron_core::{Element, KronProblem, Matrix, Result};

use crate::engine::Engine;

/// Which FTMMT system is being modelled (they differ only in tuning
/// freedom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    /// COGENT: codegen with a whole slice per thread (`TP = P`, `RK = 1`).
    Cogent,
    /// cuTensor: runtime autotuning, free register tiling, still direct
    /// caching.
    CuTensor,
}

/// COGENT-style FTMMT engine.
pub struct FtmmtEngine {
    device: DeviceSpec,
    flavor: Flavor,
}

impl FtmmtEngine {
    /// Builds the COGENT model for `device`.
    pub fn new(device: &DeviceSpec) -> Self {
        FtmmtEngine {
            device: device.clone(),
            flavor: Flavor::Cogent,
        }
    }

    fn constraints(&self, p: usize) -> Constraints {
        match self.flavor {
            // COGENT's published strategy stages the whole slice and hands
            // one slice to each thread; its generated code only switches to
            // an element-per-lane mapping once the slice spans the full
            // bank width (P ≥ 32) — which is why Table 2 of the paper
            // measures ~P-way conflict inflation at P ∈ {8, 16} but only
            // 1.37–1.72× at P ∈ {32, 64}.
            Flavor::Cogent if p < 32 => Constraints {
                caching: Caching::Direct,
                tp: Some(p),
                rk: Some(1),
            },
            Flavor::Cogent | Flavor::CuTensor => Constraints {
                caching: Caching::Direct,
                tp: None,
                rk: None,
            },
        }
    }

    fn engine_name(&self) -> &'static str {
        match self.flavor {
            Flavor::Cogent => "COGENT",
            Flavor::CuTensor => "cuTensor",
        }
    }

    fn simulate_inner<T: Element>(&self, problem: &KronProblem) -> Result<ExecReport> {
        let tuner = AutoTuner::new(&self.device);
        let cost = CostModel::new(&self.device);
        let mut report = ExecReport::new(self.engine_name());
        let mut tracer = Tracer::new(&self.device);
        for it in problem.iterations() {
            let (p, q) = (it.factor.p, it.factor.q);
            let constraints = self.constraints(p);
            // COGENT's whole-factor staging may not fit shared memory for
            // very large P; fall back to cuTensor-style tiling then (real
            // COGENT also splits in that regime).
            let outcome = tuner
                .tune_constrained(problem.m, it.input_cols, p, q, T::DTYPE, constraints)
                .or_else(|_| {
                    tuner.tune_constrained(
                        problem.m,
                        it.input_cols,
                        p,
                        q,
                        T::DTYPE,
                        Constraints {
                            caching: Caching::Direct,
                            tp: None,
                            rk: None,
                        },
                    )
                })?;
            let cfg = outcome.config;
            let zeros = Matrix::<T>::zeros(p, q);
            let kern = SlicedMultiplyKernel::new(cfg, problem.m, it.input_cols, &zeros)?;
            let per_block = kern.trace_block(&mut tracer);
            let launch = cfg.launch(problem.m, it.input_cols, p, q, T::DTYPE);
            let stats = per_block.scaled(launch.grid_blocks as u64);
            let time = cost.kernel_time(&launch, &stats, T::DTYPE)?;
            report.add_step("contraction", time.total_s);
            report.stats += stats;
            report.launches += 1;
        }
        Ok(report)
    }
}

impl<T: Element> Engine<T> for FtmmtEngine {
    fn name(&self) -> &'static str {
        self.engine_name()
    }

    fn execute(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        kron_core::ftmmt::kron_matmul_ftmmt(x, factors)
    }

    fn simulate(&self, problem: &KronProblem) -> Result<ExecReport> {
        self.simulate_inner::<T>(problem)
    }
}

/// cuTensor-style FTMMT engine.
pub struct CuTensorEngine {
    inner: FtmmtEngine,
}

impl CuTensorEngine {
    /// Builds the cuTensor model for `device`.
    pub fn new(device: &DeviceSpec) -> Self {
        CuTensorEngine {
            inner: FtmmtEngine {
                device: device.clone(),
                flavor: Flavor::CuTensor,
            },
        }
    }
}

impl<T: Element> Engine<T> for CuTensorEngine {
    fn name(&self) -> &'static str {
        "cuTensor"
    }

    fn execute(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        kron_core::ftmmt::kron_matmul_ftmmt(x, factors)
    }

    fn simulate(&self, problem: &KronProblem) -> Result<ExecReport> {
        self.inner.simulate_inner::<T>(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FastKronEngine;
    use gpu_sim::device::V100;
    use kron_core::assert_matrices_close;
    use kron_core::naive::kron_matmul_naive;

    #[test]
    fn execute_matches_naive() {
        let x = Matrix::<f64>::from_fn(2, 36, |r, c| ((r * 36 + c) % 5) as f64 - 2.0);
        let f = Matrix::<f64>::from_fn(6, 6, |r, c| ((r * 6 + c) % 7) as f64 - 3.0);
        let engine = FtmmtEngine::new(&V100);
        let got = Engine::<f64>::execute(&engine, &x, &[&f, &f]).unwrap();
        assert_matrices_close(
            &got,
            &kron_matmul_naive(&x, &[&f, &f]).unwrap(),
            "ftmmt engine",
        );
    }

    #[test]
    fn cogent_has_more_shared_transactions_than_fastkron() {
        // The Table 2 experiment in miniature: same problem, COGENT's
        // direct caching vs FastKron's shift caching.
        let problem = KronProblem::uniform(64, 8, 4).unwrap();
        let cogent = Engine::<f32>::simulate(&FtmmtEngine::new(&V100), &problem).unwrap();
        let fastkron = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem).unwrap();
        let c = cogent.stats.smem_load_transactions;
        let f = fastkron.stats.smem_load_transactions;
        assert!(c > f, "COGENT loads {c} should exceed FastKron loads {f}");
    }

    #[test]
    fn cogent_slower_than_fastkron_but_faster_than_shuffle() {
        // Figure 9 ordering: GPyTorch < COGENT ≈ cuTensor < FastKron.
        let problem = KronProblem::uniform(1024, 16, 4).unwrap();
        let shuffle = Engine::<f32>::simulate(&crate::ShuffleEngine::new(&V100), &problem).unwrap();
        let cogent = Engine::<f32>::simulate(&FtmmtEngine::new(&V100), &problem).unwrap();
        let fastkron = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem).unwrap();
        assert!(
            fastkron.seconds < cogent.seconds,
            "FastKron {} vs COGENT {}",
            fastkron.seconds,
            cogent.seconds
        );
        assert!(
            cogent.seconds < shuffle.seconds,
            "COGENT {} vs GPyTorch {}",
            cogent.seconds,
            shuffle.seconds
        );
    }

    #[test]
    fn cutensor_within_band_of_cogent() {
        // §6.2.1: "both implementations perform within 10% of each other"
        // (for COGENT vs cuTensor the paper says they provide similar
        // performance). Allow a 2.5× band — the point is same order.
        let problem = KronProblem::uniform(256, 16, 3).unwrap();
        let cogent = Engine::<f32>::simulate(&FtmmtEngine::new(&V100), &problem).unwrap();
        let cut = Engine::<f32>::simulate(&CuTensorEngine::new(&V100), &problem).unwrap();
        let ratio = cogent.seconds / cut.seconds;
        assert!((0.4..=2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn large_p_falls_back_instead_of_failing() {
        // P = 128 f64 cannot stage a whole factor; the COGENT model must
        // still produce a report via the fallback tiling.
        let problem = KronProblem::uniform(16, 128, 2).unwrap();
        let r = Engine::<f64>::simulate(&FtmmtEngine::new(&V100), &problem).unwrap();
        assert!(r.seconds > 0.0);
    }
}
