//! The naive baseline: materialize the Kronecker matrix, then one GEMM.

use gpu_sim::device::DeviceSpec;
use gpu_sim::models::CublasModel;
use gpu_sim::ExecReport;
use kron_core::{Element, KronProblem, Matrix, Result};

use crate::engine::Engine;

/// Materialized-product engine (`O(M·Pᴺ·Qᴺ)`).
pub struct NaiveEngine {
    cublas: CublasModel,
    device: DeviceSpec,
}

impl NaiveEngine {
    /// Builds the engine for `device`.
    pub fn new(device: &DeviceSpec) -> Self {
        NaiveEngine {
            cublas: CublasModel::new(device),
            device: device.clone(),
        }
    }
}

impl<T: Element> Engine<T> for NaiveEngine {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn execute(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        kron_core::naive::kron_matmul_naive(x, factors)
    }

    fn simulate(&self, problem: &KronProblem) -> Result<ExecReport> {
        let dtype = T::DTYPE;
        let k = problem.input_cols();
        let q = problem.output_cols();
        let mut report = ExecReport::new("Naive");
        // Materialization: write P^N·Q^N elements (memory-bound stream).
        let kron_bytes = (k * q * dtype.bytes()) as f64;
        report.add_step("materialize", kron_bytes / self.device.dram_bw);
        // One huge GEMM.
        report.add_step("matmul", self.cublas.gemm_time(problem.m, k, q, dtype));
        report.launches += 2;
        report.stats.flops += problem.naive_flops();
        report.stats.gmem_useful_bytes += kron_bytes as u64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FastKronEngine;
    use gpu_sim::device::V100;

    #[test]
    fn naive_is_orders_of_magnitude_slower() {
        let problem = KronProblem::uniform(16, 8, 4).unwrap();
        let naive = Engine::<f32>::simulate(&NaiveEngine::new(&V100), &problem).unwrap();
        let fk = Engine::<f32>::simulate(&FastKronEngine::new(&V100), &problem).unwrap();
        assert!(
            naive.seconds > 10.0 * fk.seconds,
            "naive {} vs fastkron {}",
            naive.seconds,
            fk.seconds
        );
    }

    #[test]
    fn execute_works() {
        let x = Matrix::<f32>::identity(4);
        let f = Matrix::<f32>::identity(2);
        let engine = NaiveEngine::new(&V100);
        let y = Engine::<f32>::execute(&engine, &x, &[&f, &f]).unwrap();
        assert_eq!(y, x);
    }
}
