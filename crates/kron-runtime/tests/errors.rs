//! Error-path contract of the distributed serving stack: misconfigured
//! grids, unshardable shapes, and mixed-model batches return the
//! documented `KronError` variants — never a panic, never a hang.

use gpu_sim::device::V100;
use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::{assert_matrices_close, KronError, KronProblem, Matrix};
use kron_dist::DistFastKron;
use kron_runtime::{Backend, Runtime, RuntimeConfig};

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 5 * r * cols + 2 * c) % 17) as f64 - 8.0
    })
}

fn dist_runtime(gpus: usize) -> Runtime {
    Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        backend: Backend::Distributed { gpus, p2p: false },
        ..RuntimeConfig::default()
    })
}

#[test]
fn non_power_of_two_grid_is_a_clean_config_error() {
    // The SUMMA grid rule needs a power of two; 6 GPUs cannot be arranged.
    // The runtime still constructs (the scheduler must exist to reply),
    // but every request fails with the documented InvalidGrid error.
    let runtime = dist_runtime(6);
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let model = runtime.load_model(factors).unwrap();
    for i in 0..3 {
        let err = runtime
            .execute(&model, seq_matrix(4, model.input_cols(), i))
            .unwrap_err();
        match err {
            KronError::InvalidGrid { ref reason } => {
                assert!(reason.contains("power of two"), "{reason}")
            }
            other => panic!("expected InvalidGrid, got {other:?}"),
        }
    }
    // Shutdown still drains cleanly.
    runtime.shutdown();
}

#[test]
fn indivisible_k_errors_directly_and_falls_back_in_the_runtime() {
    // K = 3² = 9 does not divide over GK = 2.
    let problem = KronProblem::uniform(4, 3, 2).unwrap();
    let engine = DistFastKron::new(&V100, 4).unwrap();
    match engine.workspace::<f64>(&problem) {
        Err(KronError::InvalidGrid { ref reason }) => {
            assert!(reason.contains("not divisible by GK"), "{reason}")
        }
        other => panic!("expected InvalidGrid, got {other:?}"),
    }
    assert!(matches!(
        engine.simulate::<f64>(&problem),
        Err(KronError::InvalidGrid { .. })
    ));

    // The runtime's Distributed backend serves the same model through the
    // documented local fallback — correct results, fallback counted.
    let runtime = dist_runtime(4);
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(3, 3, i + 1)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    let x = seq_matrix(4, model.input_cols(), 3);
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let expected = kron_matmul_shuffle(&x, &refs).unwrap();
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "fallback serve");
    assert!(runtime.stats().local_fallbacks >= 1);
    assert_eq!(runtime.stats().sharded_batches, 0);
}

#[test]
fn indivisible_m_errors_directly_but_the_runtime_pads() {
    // Direct engine: M = 3 does not divide over GM = 2.
    let engine = DistFastKron::new(&V100, 4).unwrap();
    let x = seq_matrix(3, 16, 0);
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    match engine.execute(&x, &refs) {
        Err(KronError::InvalidGrid { ref reason }) => {
            assert!(reason.contains("not divisible by GM"), "{reason}")
        }
        other => panic!("expected InvalidGrid, got {other:?}"),
    }

    // The runtime zero-pads the batch to a GM multiple and shards anyway.
    let runtime = dist_runtime(4);
    let model = runtime.load_model(factors.clone()).unwrap();
    let expected = kron_matmul_shuffle(&x, &refs).unwrap();
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "padded serve");
    let stats = runtime.stats();
    assert_eq!(stats.sharded_batches, 1, "stats: {stats:?}");
    assert_eq!(stats.local_fallbacks, 0, "stats: {stats:?}");
}

#[test]
fn mixed_model_linked_batch_is_rejected_atomically() {
    let runtime = dist_runtime(4);
    let fa: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let fb: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(2, 2, i)).collect();
    let a = runtime.load_model(fa).unwrap();
    let b = runtime.load_model(fb).unwrap();

    let err = runtime
        .submit_linked(vec![
            (&a, seq_matrix(2, a.input_cols(), 0)),
            (&a, seq_matrix(1, a.input_cols(), 1)),
            (&b, seq_matrix(2, b.input_cols(), 2)),
        ])
        .unwrap_err();
    assert_eq!(
        err,
        KronError::MixedModelBatch {
            first: a.id(),
            conflicting: b.id(),
        }
    );
    // Rejection is atomic: nothing entered the queue.
    assert_eq!(runtime.stats().submitted, 0);

    // A shape error anywhere also rejects the whole batch.
    let err = runtime
        .submit_linked(vec![
            (&a, seq_matrix(2, a.input_cols(), 0)),
            (&a, seq_matrix(2, a.input_cols() + 1, 1)),
        ])
        .unwrap_err();
    assert!(matches!(err, KronError::ShapeMismatch { .. }));
    assert_eq!(runtime.stats().submitted, 0);
}

#[test]
fn fault_on_single_node_backend_is_inert() {
    // No devices to fault: the flag is simply never consumed.
    let runtime = Runtime::new(RuntimeConfig::default());
    let factors: Vec<Matrix<f64>> = (0..2).map(|i| seq_matrix(4, 4, i)).collect();
    let model = runtime.load_model(factors.clone()).unwrap();
    runtime.inject_device_fault(0).unwrap();
    let x = seq_matrix(4, model.input_cols(), 1);
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    let expected = kron_matmul_shuffle(&x, &refs).unwrap();
    let y = runtime.execute(&model, x).unwrap();
    assert_matrices_close(&y, &expected, "single-node serve with armed fault");
}
