//! # kron-baselines
//!
//! The rival Kron-Matmul engines FastKron is evaluated against in §6 of the
//! paper, rebuilt at the fidelity the experiments need:
//!
//! * [`ShuffleEngine`] — GPyTorch 1.11 / PyKronecker: per factor
//!   `reshape → cuBLAS GEMM → 3-D inner transpose`. Functionally exact
//!   (`kron-core`'s shuffle reference); timed with the calibrated cuBLAS
//!   and transpose models. Reports the matmul/transpose split of Table 1.
//! * [`FtmmtEngine`] — COGENT (CGO'19 tensor-contraction code generator):
//!   fused transpose+multiply per factor, *direct* shared-memory caching
//!   with a whole slice per thread (§2.2), per-iteration global
//!   intermediates. Timed by tracing the same kernel emulator FastKron
//!   uses, constrained to COGENT's caching strategy — this is what makes
//!   Table 2 (shared-memory transactions) a controlled comparison.
//! * [`CuTensorEngine`] — NVIDIA cuTensor: same FTMMT structure, direct
//!   caching, runtime-autotuned tiles (the paper finds it within ~10% of
//!   COGENT and "as good as manually tuned CUTLASS").
//! * [`NaiveEngine`] — materialize `F1 ⊗ … ⊗ FN`, one huge GEMM; the
//!   `O(M·Pᴺ·Qᴺ)` strawman of §2.
//!
//! All engines implement [`Engine`] so examples and benches can swap them.

#![deny(missing_docs)]

pub mod engine;
pub mod ftmmt;
pub mod naive;
pub mod shuffle;

pub use engine::{Engine, FastKronEngine};
pub use ftmmt::{CuTensorEngine, FtmmtEngine};
pub use naive::NaiveEngine;
pub use shuffle::ShuffleEngine;
