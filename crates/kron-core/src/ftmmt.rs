//! The Fused Tensor-Matrix Multiply Transpose (FTMMT) algorithm
//! (Langville & Stewart 2004), as executed by COGENT and cuTensor: the
//! intermediate is viewed as a 3-D tensor `M × S × P` and each iteration
//! contracts the last dimension with the factor while writing the result
//! transposed, `Y[m][q][s] = Σ_p X[m][s][p] · F[p][q]`, so no separate
//! transpose pass is needed.
//!
//! This is the functional reference for the FTMMT baselines; the GPU-time
//! and shared-memory models (direct caching, per-iteration global
//! intermediates) live in `kron-baselines`.

use crate::element::Element;
use crate::error::{KronError, Result};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Row-count threshold below which the contraction stays single-threaded.
const PAR_ROW_THRESHOLD: usize = 8;

/// One fused tensor-contraction iteration: input `M×(S·P)` viewed as
/// `M×S×P`, output `M×(Q·S)` viewed as `M×Q×S`.
pub fn ftmmt_iteration<T: Element>(x: &Matrix<T>, f: &Matrix<T>) -> Result<Matrix<T>> {
    let (p, q) = (f.rows(), f.cols());
    if !x.cols().is_multiple_of(p) {
        return Err(KronError::ShapeMismatch {
            expected: format!("cols divisible by P = {p}"),
            found: format!("{} cols", x.cols()),
        });
    }
    let slices = x.cols() / p;
    let m = x.rows();
    let mut y = Matrix::zeros(m, q * slices);

    let run_row = |(x_row, y_row): (&[T], &mut [T])| {
        for s in 0..slices {
            let x_slice = &x_row[s * p..(s + 1) * p];
            for qi in 0..q {
                let mut acc = T::ZERO;
                for (pi, xv) in x_slice.iter().enumerate() {
                    acc = xv.mul_add(f[(pi, qi)], acc);
                }
                // Fused transpose: q is the slow dimension of the output.
                y_row[qi * slices + s] = acc;
            }
        }
    };

    if m >= PAR_ROW_THRESHOLD {
        x.as_slice()
            .par_chunks(x.cols())
            .zip(y.as_mut_slice().par_chunks_mut(q * slices))
            .for_each(run_row);
    } else {
        x.as_slice()
            .chunks(x.cols())
            .zip(y.as_mut_slice().chunks_mut(q * slices))
            .for_each(run_row);
    }
    Ok(y)
}

/// Computes `Y = X · (F1 ⊗ … ⊗ FN)` with the FTMMT algorithm (factors
/// processed last to first, each iteration a fused contraction).
///
/// # Errors
/// Shape errors if `X.cols() != ∏Pᵢ` or `factors` is empty.
pub fn kron_matmul_ftmmt<T: Element>(x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
    if factors.is_empty() {
        return Err(KronError::NoFactors);
    }
    let expected_cols: usize = factors.iter().map(|f| f.rows()).product();
    if x.cols() != expected_cols {
        return Err(KronError::ShapeMismatch {
            expected: format!("X with ∏Pᵢ = {expected_cols} cols"),
            found: format!("X with {} cols", x.cols()),
        });
    }
    let mut y = x.clone();
    for f in factors.iter().rev() {
        y = ftmmt_iteration(&y, f)?;
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_matrices_close;
    use crate::naive::kron_matmul_naive;
    use crate::shuffle::kron_matmul_shuffle;

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + r * cols + c) % 11) as f64 - 5.0
        })
    }

    #[test]
    fn iteration_matches_shuffle_iteration() {
        // A single FTMMT iteration must equal reshape→GEMM→transpose-inner.
        let x = seq_matrix(3, 12, 0);
        let f = seq_matrix(4, 2, 5);
        let fused = ftmmt_iteration(&x, &f).unwrap();
        let via_shuffle = {
            let tall = x.clone().reshape(3 * 3, 4).unwrap();
            let mm = crate::gemm::gemm(&tall, &f).unwrap();
            mm.reshape(3, 6).unwrap().transpose_inner(3, 2).unwrap()
        };
        assert_matrices_close(&fused, &via_shuffle, "ftmmt iteration");
    }

    #[test]
    fn matches_naive_and_shuffle() {
        let x = seq_matrix(4, 36, 1);
        let a = seq_matrix(6, 2, 2);
        let b = seq_matrix(6, 3, 3);
        let got = kron_matmul_ftmmt(&x, &[&a, &b]).unwrap();
        let naive = kron_matmul_naive(&x, &[&a, &b]).unwrap();
        let shuffle = kron_matmul_shuffle(&x, &[&a, &b]).unwrap();
        assert_matrices_close(&got, &naive, "ftmmt vs naive");
        assert_matrices_close(&got, &shuffle, "ftmmt vs shuffle");
    }

    #[test]
    fn matches_naive_above_parallel_threshold() {
        let x = seq_matrix(PAR_ROW_THRESHOLD * 2, 16, 2);
        let f = seq_matrix(4, 4, 7);
        let got = kron_matmul_ftmmt(&x, &[&f, &f]).unwrap();
        let naive = kron_matmul_naive(&x, &[&f, &f]).unwrap();
        assert_matrices_close(&got, &naive, "ftmmt parallel path");
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Matrix::<f64>::zeros(2, 9);
        let f = Matrix::<f64>::identity(2);
        assert!(kron_matmul_ftmmt(&x, &[&f, &f]).is_err());
        assert!(kron_matmul_ftmmt::<f64>(&x, &[]).is_err());
        assert!(ftmmt_iteration(&x, &f).is_err());
    }
}
