//! Admission-control contract, time-virtualized via the manual clock:
//! expired deadlines shed without executing, high-priority groups drain
//! before low within a scheduling window, starving low-priority work ages
//! past fresh high-priority traffic, tighter deadlines serve first at
//! equal priority, mixed f32/f64 traffic shares one window and one
//! priority order through the erased runtime, linked batches inherit one
//! deadline atomically, and the linger window adapts to load.

use kron_core::shuffle::kron_matmul_shuffle;
use kron_core::{assert_matrices_close, KronError, Matrix};
use kron_runtime::{Clock, ManualClock, Runtime, RuntimeConfig, SubmitOptions};
use std::sync::Arc;

/// Pumps virtual time forward until the runtime has served `target`
/// requests. The scheduler computes its linger deadline from virtual
/// "now" whenever it opens a window, so a single big advance can land
/// *before* the window opens and never close it; stepping until the work
/// lands is robust against that ordering while staying exact about
/// *which* requests share the window (everything already submitted is
/// drained from the channel before the scheduler re-checks the
/// deadline).
fn pump_until_served(runtime: &Runtime, time: &Arc<ManualClock>, target: u64) {
    while runtime.stats().served < target {
        time.advance_us(50_000);
        std::thread::yield_now();
    }
}

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 5 * r * cols + 2 * c) % 17) as f64 - 8.0
    })
}

fn model_factors(shapes: &[(usize, usize)], seed: usize) -> Vec<Matrix<f64>> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| seq_matrix(p, q, seed + 5 * i + 1))
        .collect()
}

fn oracle(x: &Matrix<f64>, factors: &[Matrix<f64>]) -> Matrix<f64> {
    let refs: Vec<&Matrix<f64>> = factors.iter().collect();
    kron_matmul_shuffle(x, &refs).unwrap()
}

#[test]
fn expired_deadline_sheds_without_executing() {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        clock,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 1);
    let model = runtime.load_model(factors.clone()).unwrap();

    // Virtual now = 1000; the request's deadline (500) already passed.
    time.set_us(1_000);
    let x = seq_matrix(2, model.input_cols(), 3);
    let ticket = runtime
        .submit_with(&model, x, SubmitOptions::default().with_deadline_us(500))
        .unwrap();
    match ticket.wait() {
        Err(KronError::DeadlineExceeded {
            deadline_us,
            now_us,
        }) => {
            assert_eq!(deadline_us, 500);
            assert!(now_us >= 1_000, "shed at virtual {now_us}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // Shed before any execute — or even a plan lookup.
    let stats = runtime.stats();
    assert_eq!(stats.deadline_shed, 1, "stats: {stats:?}");
    assert_eq!(stats.served, 1, "shed requests still complete: {stats:?}");
    assert_eq!(stats.plan_misses, 0, "no plan was built: {stats:?}");
    assert_eq!(stats.batches, 0, "stats: {stats:?}");
    assert_eq!(stats.solo_requests, 0, "stats: {stats:?}");
    assert_eq!(stats.batched_requests, 0, "stats: {stats:?}");

    // A timely request on the same runtime still executes correctly.
    let x = seq_matrix(2, model.input_cols(), 4);
    let expected = oracle(&x, &factors);
    let y = runtime
        .execute(&model, x)
        .expect("no-deadline requests are never shed");
    assert_matrices_close(&y, &expected, "timely request after a shed one");
}

#[test]
fn high_priority_groups_drain_before_low_under_a_full_window() {
    // Manual clock + a fixed linger window: the scheduler opens the
    // window on the first submit and cannot close it until virtual time
    // advances, so every request below is guaranteed to share ONE
    // scheduling window — the "full queue" case, deterministically.
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 8,
        batch_linger_us: 10_000,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    let f_low = model_factors(&[(4, 4), (4, 4)], 1);
    let f_high = model_factors(&[(2, 2), (2, 2)], 2);
    let low = runtime.load_model(f_low.clone()).unwrap();
    let high = runtime.load_model(f_high.clone()).unwrap();

    // Low-priority group submitted FIRST; high-priority second. Also two
    // solo (large-M) requests with the same priority inversion.
    let mut low_tickets = Vec::new();
    let mut high_tickets = Vec::new();
    for i in 0..3 {
        let x = seq_matrix(2, low.input_cols(), 10 + i);
        low_tickets.push((
            runtime
                .submit_with(&low, x.clone(), SubmitOptions::priority(1))
                .unwrap(),
            oracle(&x, &f_low),
        ));
    }
    for i in 0..3 {
        let x = seq_matrix(2, high.input_cols(), 20 + i);
        high_tickets.push((
            runtime
                .submit_with(&high, x.clone(), SubmitOptions::priority(7))
                .unwrap(),
            oracle(&x, &f_high),
        ));
    }
    let x_solo_low = seq_matrix(12, low.input_cols(), 30);
    let solo_low = (
        runtime
            .submit_with(&low, x_solo_low.clone(), SubmitOptions::priority(0))
            .unwrap(),
        oracle(&x_solo_low, &f_low),
    );
    let x_solo_high = seq_matrix(12, high.input_cols(), 31);
    let solo_high = (
        runtime
            .submit_with(&high, x_solo_high.clone(), SubmitOptions::priority(9))
            .unwrap(),
        oracle(&x_solo_high, &f_high),
    );

    // Close the window: everything above drains as one cycle (all eight
    // submissions completed before any advance, and the scheduler drains
    // the whole channel before re-checking its window deadline).
    pump_until_served(&runtime, &time, 8);

    let low_seqs: Vec<u64> = low_tickets
        .into_iter()
        .enumerate()
        .map(|(i, (t, expected))| {
            let (y, receipt) = t.wait_with_receipt().unwrap();
            assert_matrices_close(&y, &expected, &format!("low request {i}"));
            receipt.seq
        })
        .collect();
    let high_seqs: Vec<u64> = high_tickets
        .into_iter()
        .enumerate()
        .map(|(i, (t, expected))| {
            let (y, receipt) = t.wait_with_receipt().unwrap();
            assert_matrices_close(&y, &expected, &format!("high request {i}"));
            receipt.seq
        })
        .collect();

    // The high-priority group drained before the low one despite
    // arriving later.
    let max_high = *high_seqs.iter().max().unwrap();
    let min_low = *low_seqs.iter().min().unwrap();
    assert!(
        max_high < min_low,
        "high group must fully drain first: high {high_seqs:?} vs low {low_seqs:?}"
    );

    // Same inversion among solos (solos drain after batched groups).
    let (t, expected) = solo_high;
    let (y, high_receipt) = t.wait_with_receipt().unwrap();
    assert_matrices_close(&y, &expected, "solo high");
    let (t, expected) = solo_low;
    let (y, low_receipt) = t.wait_with_receipt().unwrap();
    assert_matrices_close(&y, &expected, "solo low");
    assert!(
        high_receipt.seq < low_receipt.seq,
        "high solo ({}) must precede low solo ({})",
        high_receipt.seq,
        low_receipt.seq
    );

    // And the window really did coalesce: the two groups batched.
    let stats = runtime.stats();
    assert_eq!(stats.batched_requests, 6, "stats: {stats:?}");
    assert_eq!(stats.solo_requests, 2, "stats: {stats:?}");
}

/// The shared setup for the two aging cases below: a low-priority request
/// enqueued 300 virtual ms before a high-priority one, both guaranteed to
/// share ONE scheduling window (the fixed linger holds it open far past
/// the advance). Returns `(low_seq, high_seq)`.
fn aging_inversion_seqs(priority_aging_us: u64) -> (u64, u64) {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 8,
        // A very wide fixed window: it cannot close during the 300 ms
        // virtual wait below, so both submissions land in one cycle.
        batch_linger_us: 10_000_000,
        adaptive_linger: false,
        priority_aging_us,
        clock,
        ..RuntimeConfig::default()
    });
    let f_low = model_factors(&[(4, 4), (4, 4)], 1);
    let f_high = model_factors(&[(2, 2), (2, 2)], 2);
    let low = runtime.load_model(f_low.clone()).unwrap();
    let high = runtime.load_model(f_high.clone()).unwrap();

    // The starving request: priority 0, enqueued at t = 0.
    let x_low = seq_matrix(2, low.input_cols(), 10);
    let t_low = runtime
        .submit_with(&low, x_low.clone(), SubmitOptions::priority(0))
        .unwrap();
    // It waits 300 virtual ms (the window is still open), then fresh
    // high-priority traffic arrives.
    time.advance_us(300_000);
    let x_high = seq_matrix(2, high.input_cols(), 20);
    let t_high = runtime
        .submit_with(&high, x_high.clone(), SubmitOptions::priority(7))
        .unwrap();

    pump_until_served(&runtime, &time, 2);
    let (y_low, low_receipt) = t_low.wait_with_receipt().unwrap();
    assert_matrices_close(&y_low, &oracle(&x_low, &f_low), "aged low request");
    let (y_high, high_receipt) = t_high.wait_with_receipt().unwrap();
    assert_matrices_close(&y_high, &oracle(&x_high, &f_high), "fresh high request");
    (low_receipt.seq, high_receipt.seq)
}

#[test]
fn starving_low_priority_ages_past_fresh_high_priority() {
    // With aging at one step per virtual millisecond, 300 ms of queue age
    // boosts priority 0 by ~300 steps over priority 7's head start (both
    // also age while the window drains, but by the same amount — only
    // the 300 ms enqueue gap differs). The starving request drains first.
    let (low_seq, high_seq) = aging_inversion_seqs(1_000);
    assert!(
        low_seq < high_seq,
        "aged low-priority must outrank fresh high-priority: low {low_seq} vs high {high_seq}"
    );
}

#[test]
fn aging_disabled_restores_strict_priority_order() {
    // The identical trace with aging off: static priorities rule and the
    // high-priority request drains first however long the other waited.
    let (low_seq, high_seq) = aging_inversion_seqs(0);
    assert!(
        high_seq < low_seq,
        "with aging disabled strict priority must hold: low {low_seq} vs high {high_seq}"
    );
}

#[test]
fn tighter_deadline_group_serves_first_at_equal_priority() {
    // Three same-priority model groups in one held window, submitted in
    // the order no-deadline, loose-deadline, tight-deadline (arrival
    // order favors the WRONG outcome, so only deadline-aware ordering
    // can produce the right one). All deadlines are far in the future —
    // nothing sheds; the deadline shapes the *order*.
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 8,
        batch_linger_us: 200_000,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    let f_none = model_factors(&[(4, 4), (4, 4)], 1);
    let f_loose = model_factors(&[(2, 2), (2, 2)], 2);
    let f_tight = model_factors(&[(3, 3)], 3);
    let none = runtime.load_model(f_none.clone()).unwrap();
    let loose = runtime.load_model(f_loose.clone()).unwrap();
    let tight = runtime.load_model(f_tight.clone()).unwrap();

    let submit_pair = |model: &kron_runtime::Model<f64>,
                       factors: &[Matrix<f64>],
                       seed: usize,
                       opts: SubmitOptions| {
        (0..2)
            .map(|i| {
                let x = seq_matrix(2, model.input_cols(), seed + i);
                let expected = oracle(&x, factors);
                (runtime.submit_with(model, x, opts).unwrap(), expected)
            })
            .collect::<Vec<_>>()
    };
    let now = runtime.now_us();
    let group_none = submit_pair(&none, &f_none, 10, SubmitOptions::priority(2));
    let group_loose = submit_pair(
        &loose,
        &f_loose,
        20,
        SubmitOptions::priority(2).with_deadline_us(now + 1_000_000_000),
    );
    let group_tight = submit_pair(
        &tight,
        &f_tight,
        30,
        SubmitOptions::priority(2).with_deadline_us(now + 500_000_000),
    );

    pump_until_served(&runtime, &time, 6);
    let seqs = |group: Vec<(kron_runtime::Ticket<f64>, Matrix<f64>)>, tag: &str| {
        group
            .into_iter()
            .enumerate()
            .map(|(i, (t, expected))| {
                let (y, receipt) = t.wait_with_receipt().unwrap();
                assert_matrices_close(&y, &expected, &format!("{tag} request {i}"));
                receipt.seq
            })
            .collect::<Vec<u64>>()
    };
    let seq_none = seqs(group_none, "no-deadline");
    let seq_loose = seqs(group_loose, "loose-deadline");
    let seq_tight = seqs(group_tight, "tight-deadline");

    // Full group order: tight < loose < none, despite inverse arrival.
    assert!(
        seq_tight.iter().max() < seq_loose.iter().min(),
        "tightest deadline must drain first: tight {seq_tight:?} vs loose {seq_loose:?}"
    );
    assert!(
        seq_loose.iter().max() < seq_none.iter().min(),
        "deadline-less work drains last at equal priority: loose {seq_loose:?} vs none {seq_none:?}"
    );
}

#[test]
fn mixed_dtype_requests_share_one_window_and_one_priority_order() {
    // The erased runtime's cross-dtype admission contract: f32 and f64
    // requests drain from ONE window in ONE priority order, each batched
    // within its own (typed) model group, every result bit-correct for
    // its dtype.
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 8,
        batch_linger_us: 10_000,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    let f_f64 = model_factors(&[(4, 4), (4, 4)], 1);
    let model_f64 = runtime.load_model(f_f64.clone()).unwrap();
    let f_f32: Vec<Matrix<f32>> = (0..2)
        .map(|i| Matrix::from_fn(2, 2, |r, c| ((i * 5 + r * 2 + c) % 7) as f32 - 3.0))
        .collect();
    let model_f32 = runtime.load_model(f_f32.clone()).unwrap();
    let refs_f32: Vec<&Matrix<f32>> = f_f32.iter().collect();

    // Low-priority f32 group submitted FIRST, high-priority f64 second:
    // the f64 group must fully drain before any f32 request, which is
    // only possible if one priority order spans both dtypes.
    let mut f32_tickets = Vec::new();
    for i in 0..3 {
        let x = Matrix::<f32>::from_fn(2, model_f32.input_cols(), |r, c| {
            ((i + 2 * r + c) % 5) as f32 - 2.0
        });
        let expected = kron_core::shuffle::kron_matmul_shuffle(&x, &refs_f32).unwrap();
        f32_tickets.push((
            runtime
                .submit_with(&model_f32, x, SubmitOptions::priority(1))
                .unwrap(),
            expected,
        ));
    }
    let mut f64_tickets = Vec::new();
    for i in 0..3 {
        let x = seq_matrix(2, model_f64.input_cols(), 40 + i);
        f64_tickets.push((
            runtime
                .submit_with(&model_f64, x.clone(), SubmitOptions::priority(7))
                .unwrap(),
            oracle(&x, &f_f64),
        ));
    }

    pump_until_served(&runtime, &time, 6);
    let f64_seqs: Vec<u64> = f64_tickets
        .into_iter()
        .enumerate()
        .map(|(i, (t, expected))| {
            let (y, receipt) = t.wait_with_receipt().unwrap();
            assert_matrices_close(&y, &expected, &format!("f64 request {i}"));
            receipt.seq
        })
        .collect();
    let f32_seqs: Vec<u64> = f32_tickets
        .into_iter()
        .enumerate()
        .map(|(i, (t, expected))| {
            let (y, receipt) = t.wait_with_receipt().unwrap();
            assert_matrices_close(&y, &expected, &format!("f32 request {i}"));
            receipt.seq
        })
        .collect();
    assert!(
        f64_seqs.iter().max() < f32_seqs.iter().min(),
        "high-priority f64 group must drain before the low-priority f32 one: \
         f64 {f64_seqs:?} vs f32 {f32_seqs:?}"
    );

    // Both dtypes batched (one fused execute each), through one runtime.
    let stats = runtime.stats();
    assert_eq!(stats.requests_f32, 3, "stats: {stats:?}");
    assert_eq!(stats.requests_f64, 3, "stats: {stats:?}");
    assert_eq!(stats.batched_requests, 6, "stats: {stats:?}");
    assert_eq!(stats.batches, 2, "stats: {stats:?}");
    assert_eq!(stats.plan_misses, 2, "one entry per dtype: {stats:?}");
}

#[test]
fn linked_batches_inherit_one_deadline_atomically() {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 16,
        batch_max_m: 8,
        clock,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 1);
    let model = runtime.load_model(factors.clone()).unwrap();

    // Late: the whole linked group shares the expired deadline — every
    // member is shed, none executes.
    time.set_us(1_000);
    let xs: Vec<Matrix<f64>> = (0..3)
        .map(|i| seq_matrix(1 + i, model.input_cols(), 40 + i))
        .collect();
    let tickets = runtime
        .submit_linked_with(
            xs.iter().map(|x| (&model, x.clone())).collect(),
            SubmitOptions::priority(3).with_deadline_us(900),
        )
        .unwrap();
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Err(KronError::DeadlineExceeded { deadline_us, .. }) => {
                assert_eq!(deadline_us, 900, "request {i}")
            }
            other => panic!("request {i}: expected DeadlineExceeded, got {other:?}"),
        }
    }
    let stats = runtime.stats();
    assert_eq!(stats.deadline_shed, 3, "stats: {stats:?}");
    assert_eq!(stats.plan_misses, 0, "nothing executed: {stats:?}");

    // Timely: the same group with a future deadline fully executes,
    // bit-correct.
    let tickets = runtime
        .submit_linked_with(
            xs.iter().map(|x| (&model, x.clone())).collect(),
            SubmitOptions::priority(3).with_deadline_us(runtime.now_us() + 1_000_000),
        )
        .unwrap();
    for (i, (t, x)) in tickets.into_iter().zip(xs.iter()).enumerate() {
        let y = t.wait().unwrap();
        assert_matrices_close(&y, &oracle(x, &factors), &format!("timely linked {i}"));
    }
    let stats = runtime.stats();
    assert_eq!(stats.deadline_shed, 3, "no further sheds: {stats:?}");
    assert_eq!(stats.served, 6, "stats: {stats:?}");
}

#[test]
fn adaptive_linger_breathes_with_load() {
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 64,
        batch_max_m: 8,
        batch_linger_us: 400,
        adaptive_linger: true,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 1);
    let model = runtime.load_model(factors.clone()).unwrap();
    let expected1 = oracle(&seq_matrix(1, model.input_cols(), 0), &factors);

    // Burst phase: linked batches arrive atomically, so once the
    // scheduler drains one whole burst in a cycle the smoothed depth
    // crosses the linger threshold and the gauge opens. (Bounded retry
    // only because a cycle may catch a partial burst; one pass is the
    // overwhelmingly common case.)
    let mut opened = 0;
    for round in 0..50 {
        let xs: Vec<Matrix<f64>> = (0..12)
            .map(|i| seq_matrix(1, model.input_cols(), 100 * round + i))
            .collect();
        let tickets = runtime
            .submit_linked(xs.iter().map(|x| (&model, x.clone())).collect())
            .unwrap();
        for t in tickets {
            t.wait().unwrap();
        }
        opened = runtime.stats().current_linger_us;
        if opened > 0 {
            break;
        }
    }
    assert!(opened > 0, "linger must open under burst load");
    assert!(opened <= 400, "linger never exceeds the cap");

    // Sequential phase: strictly one request per cycle decays the
    // smoothed depth back to one, collapsing the window to zero — solo
    // traffic pays no linger latency.
    for i in 0..64 {
        let x = seq_matrix(1, model.input_cols(), i);
        let y = runtime.execute(&model, x).unwrap();
        if i == 0 {
            assert_matrices_close(&y, &expected1, "sequential request 0");
        }
    }
    assert_eq!(
        runtime.stats().current_linger_us,
        0,
        "sequential traffic must not linger"
    );
}

#[test]
fn fixed_linger_reports_the_cap() {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        batch_linger_us: 750,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(2, 2)], 1);
    let model = runtime.load_model(factors.clone()).unwrap();
    let x = seq_matrix(1, model.input_cols(), 0);
    let ticket = runtime.submit(&model, x.clone()).unwrap();
    pump_until_served(&runtime, &time, 1);
    let y = ticket.wait().unwrap();
    assert_matrices_close(&y, &oracle(&x, &factors), "fixed-linger request");
    assert_eq!(runtime.stats().current_linger_us, 750);
}

/// An already-expired deadline sheds with `DeadlineExceeded` before any
/// plan lookup or execution on BOTH lanes: inline on the bypass lane
/// (resolved at submit time, no scheduler round-trip) and at drain time
/// on the scheduler lane. The two lanes must account the shed
/// identically — same counters, same error payload.
#[test]
fn expired_deadline_sheds_identically_on_both_lanes() {
    let run = |inline_bypass: bool| {
        let clock = Clock::manual();
        let time = clock.manual_handle().unwrap();
        let runtime = Runtime::new(RuntimeConfig {
            inline_bypass,
            batch_linger_us: 0,
            adaptive_linger: false,
            clock,
            ..RuntimeConfig::default()
        });
        let factors = model_factors(&[(4, 4), (4, 4)], 5);
        let model = runtime.load_model(factors.clone()).unwrap();

        // Warm the plan through the scheduler (the first submit is cold
        // on either lane), then claim it so the bypass gate sees an idle
        // runtime.
        time.set_us(1_000);
        let x = seq_matrix(2, model.input_cols(), 6);
        let expected = oracle(&x, &factors);
        let warm = runtime.submit(&model, x).unwrap();
        pump_until_served(&runtime, &time, 1);
        let y = warm.wait().unwrap();
        assert_matrices_close(&y, &expected, "warming request");

        // Virtual now = 1_000_000; the deadline (500_000) already passed.
        time.set_us(1_000_000);
        let t = runtime
            .submit_with(
                &model,
                seq_matrix(2, model.input_cols(), 7),
                SubmitOptions::default().with_deadline_us(500_000),
            )
            .unwrap();
        if inline_bypass {
            // The bypass lane resolves the shed inline at submit time —
            // no pumping, no scheduler involvement.
            assert_eq!(runtime.stats().served, 2, "shed resolved inline");
        }
        pump_until_served(&runtime, &time, 2);
        match t.wait() {
            Err(KronError::DeadlineExceeded {
                deadline_us,
                now_us,
            }) => {
                assert_eq!(deadline_us, 500_000);
                assert!(now_us >= 1_000_000, "shed at virtual {now_us}");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        runtime.stats()
    };

    let bypass = run(true);
    let sched = run(false);
    for (name, a, b) in [
        ("submitted", bypass.submitted, sched.submitted),
        ("served", bypass.served, sched.served),
        ("deadline_shed", bypass.deadline_shed, sched.deadline_shed),
        ("error_replies", bypass.error_replies, sched.error_replies),
        ("plan_hits", bypass.plan_hits, sched.plan_hits),
        ("plan_misses", bypass.plan_misses, sched.plan_misses),
        (
            "inflight_requests",
            bypass.inflight_requests,
            sched.inflight_requests,
        ),
    ] {
        assert_eq!(a, b, "{name} must match across lanes");
    }
    assert_eq!(bypass.deadline_shed, 1, "stats: {bypass:?}");
    assert_eq!(bypass.error_replies, 1, "stats: {bypass:?}");
    assert_eq!(bypass.served, 2, "stats: {bypass:?}");
    assert_eq!(bypass.inflight_requests, 0, "nothing left unclaimed");
    // The shed never ran: no bypassed success was recorded on either
    // lane (the shed is an error reply, not a bypassed serve).
    assert_eq!(bypass.bypassed_requests, 0, "stats: {bypass:?}");
}

/// The bypass eligibility gate is scoped to the **submit lane**, not the
/// whole runtime: an unclaimed ticket pinning one lane's inflight gauge
/// at 1 closes the bypass door for models hashed to that lane only —
/// a warm model on an idle sibling lane still serves inline.
#[test]
fn bypass_eligibility_is_scoped_to_the_submit_lane() {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        scheduler_lanes: 4,
        batch_linger_us: 0,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    time.set_us(1_000);

    // Lane placement hashes the plan shape, so hash-distinct chains
    // land on different lanes; pick the first two that diverge.
    let chains: &[&[(usize, usize)]] = &[
        &[(4, 4), (4, 4)],
        &[(8, 8)],
        &[(16, 16)],
        &[(2, 2), (2, 2)],
        &[(2, 2), (2, 2), (2, 2)],
        &[(4, 4), (4, 4), (4, 4)],
        &[(2, 2), (4, 4)],
        &[(4, 4), (2, 2)],
    ];
    let mut models = Vec::new();
    for (i, chain) in chains.iter().enumerate() {
        let factors = model_factors(chain, 11 + i);
        let model = runtime.load_model(factors.clone()).unwrap();
        let lane = runtime.lane_for(&model);
        models.push((model, factors, lane));
    }
    let free_idx = (1..models.len())
        .find(|&i| models[i].2 != models[0].2)
        .expect("two of eight shape chains must hash to distinct lanes");
    let (held_model, held_factors, held_lane) = &models[0];
    let (free_model, free_factors, free_lane) = &models[free_idx];
    let (held_lane, free_lane) = (*held_lane, *free_lane);

    // Warm both plans through the scheduler (first submits are cold).
    for (model, factors) in [(held_model, held_factors), (free_model, free_factors)] {
        let x = seq_matrix(2, model.input_cols(), 6);
        let t = runtime.submit(model, x.clone()).unwrap();
        pump_until_served(&runtime, &time, runtime.stats().submitted);
        assert_matrices_close(&t.wait().unwrap(), &oracle(&x, factors), "warming request");
    }

    // Pin the held lane: a warm-plan submit bypasses inline, but its
    // admission claim is only released when the ticket is claimed — so
    // leaving the ticket unwaited keeps the lane's inflight gauge at 1.
    let hold = runtime
        .submit(held_model, seq_matrix(2, held_model.input_cols(), 30))
        .unwrap();
    let pinned = runtime.stats();
    assert_eq!(pinned.bypassed_requests, 1, "stats: {pinned:?}");
    assert_eq!(pinned.lanes()[held_lane].inflight, 1, "stats: {pinned:?}");
    assert_eq!(pinned.lanes()[free_lane].inflight, 0, "stats: {pinned:?}");

    // The idle sibling lane's door is still open: a warm model hashed
    // there serves inline at submit time.
    let x_free = seq_matrix(2, free_model.input_cols(), 31);
    let t_free = runtime.submit(free_model, x_free.clone()).unwrap();
    let after_free = runtime.stats();
    assert_eq!(
        after_free.bypassed_requests, 2,
        "idle lane must bypass: {after_free:?}"
    );
    assert_eq!(after_free.lanes()[free_lane].bypassed_requests, 1);

    // The pinned lane's door is closed: the same warm model that just
    // bypassed now routes through the scheduler instead.
    let x_held = seq_matrix(2, held_model.input_cols(), 32);
    let t_held = runtime.submit(held_model, x_held.clone()).unwrap();
    let after_held = runtime.stats();
    assert_eq!(
        after_held.bypassed_requests, 2,
        "pinned lane must not bypass: {after_held:?}"
    );

    pump_until_served(&runtime, &time, after_held.submitted);
    assert_matrices_close(
        &t_free.wait().unwrap(),
        &oracle(&x_free, free_factors),
        "bypassed",
    );
    assert_matrices_close(
        &t_held.wait().unwrap(),
        &oracle(&x_held, held_factors),
        "batched",
    );
    drop(hold);

    let stats = runtime.stats();
    assert_eq!(stats.inflight_requests, 0, "stats: {stats:?}");
    for (i, lane) in stats.lanes().iter().enumerate() {
        assert_eq!(lane.inflight, 0, "lane {i} gauge: {lane:?}");
    }
    assert_eq!(stats.lanes()[held_lane].bypassed_requests, 1, "the hold");
    runtime.shutdown();
}
