//! Roofline kernel timing with occupancy and wave quantization.

use crate::device::DeviceSpec;
use crate::stats::KernelStats;
use kron_core::{DType, KronError, Result};

/// Launch geometry and per-block resource usage of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Total thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared memory allocated per block, bytes.
    pub shared_mem_per_block: usize,
    /// Registers used per thread (32-bit each).
    pub regs_per_thread: usize,
}

/// Residency outcome for a launch on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Fraction of the device's warp capacity in use (0‥1).
    pub occupancy: f64,
    /// Which resource capped residency.
    pub limiter: OccupancyLimiter,
}

/// The resource that limited how many blocks fit on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// Hardware cap on resident blocks.
    BlockSlots,
    /// Shared-memory capacity.
    SharedMemory,
    /// Register file.
    Registers,
    /// Resident-thread cap.
    Threads,
}

/// Which roofline term dominated a kernel's time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Arithmetic throughput.
    Compute,
    /// DRAM bandwidth.
    Dram,
    /// Shared-memory throughput (bank conflicts inflate this).
    SharedMemory,
}

/// Timing breakdown of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTime {
    /// Seconds the arithmetic pipeline needs.
    pub compute_s: f64,
    /// Seconds the DRAM traffic needs.
    pub dram_s: f64,
    /// Seconds the shared-memory traffic needs.
    pub smem_s: f64,
    /// Fixed launch overhead.
    pub overhead_s: f64,
    /// Final simulated time (roofline max × wave quantization + overhead).
    pub total_s: f64,
    /// Dominant roofline term.
    pub bound: Bound,
}

/// Analytic timing model over a [`DeviceSpec`].
///
/// `t = max(flops/C, dram_bytes/BW_dram, smem_transactions·W/BW_smem) ×
/// wave_quantization + launch_overhead`, with the compute and
/// shared-memory capacities `C` scaled by (a) how many SMs the grid can
/// cover and (b) an issue-efficiency term that degrades when occupancy is
/// too low to hide latency.
#[derive(Debug, Clone)]
pub struct CostModel {
    device: DeviceSpec,
    /// Fraction of peak arithmetic a well-tuned kernel sustains (address
    /// arithmetic, predication and epilogues keep this below 1.0; 0.90
    /// reproduces the paper's "87% of maximum FLOPS" at the largest size).
    pub compute_efficiency: f64,
}

impl CostModel {
    /// Builds a cost model for `device` with default efficiency constants.
    pub fn new(device: &DeviceSpec) -> Self {
        CostModel {
            device: device.clone(),
            compute_efficiency: 0.90,
        }
    }

    /// The device this model times for.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Computes residency for a launch.
    ///
    /// # Errors
    /// [`KronError::ResourceExhausted`] when even a single block exceeds a
    /// per-SM or per-block limit.
    pub fn occupancy(&self, cfg: &LaunchConfig) -> Result<Occupancy> {
        let d = &self.device;
        if cfg.threads_per_block == 0 || cfg.grid_blocks == 0 {
            return Err(KronError::ResourceExhausted {
                what: "empty launch".into(),
            });
        }
        if cfg.threads_per_block > d.max_threads_per_block {
            return Err(KronError::ResourceExhausted {
                what: format!(
                    "{} threads/block > device limit {}",
                    cfg.threads_per_block, d.max_threads_per_block
                ),
            });
        }
        if cfg.shared_mem_per_block > d.shared_mem_per_block {
            return Err(KronError::ResourceExhausted {
                what: format!(
                    "{} B shared/block > device limit {} B",
                    cfg.shared_mem_per_block, d.shared_mem_per_block
                ),
            });
        }
        if cfg.regs_per_thread > d.max_registers_per_thread {
            return Err(KronError::ResourceExhausted {
                what: format!(
                    "{} regs/thread > device limit {}",
                    cfg.regs_per_thread, d.max_registers_per_thread
                ),
            });
        }

        let mut blocks = d.max_blocks_per_sm;
        let mut limiter = OccupancyLimiter::BlockSlots;

        let by_threads = d.max_threads_per_sm / cfg.threads_per_block;
        if by_threads < blocks {
            blocks = by_threads;
            limiter = OccupancyLimiter::Threads;
        }
        if let Some(by_smem) = d.shared_mem_per_sm.checked_div(cfg.shared_mem_per_block) {
            if by_smem < blocks {
                blocks = by_smem;
                limiter = OccupancyLimiter::SharedMemory;
            }
        }
        let regs_per_block = cfg.regs_per_thread.max(1) * cfg.threads_per_block;
        let by_regs = d.registers_per_sm / regs_per_block;
        if by_regs < blocks {
            blocks = by_regs;
            limiter = OccupancyLimiter::Registers;
        }
        if blocks == 0 {
            return Err(KronError::ResourceExhausted {
                what: format!("block needs more {limiter:?} than one SM has"),
            });
        }

        let warps_per_block = cfg.threads_per_block.div_ceil(d.warp_size);
        let warps = blocks * warps_per_block;
        Ok(Occupancy {
            blocks_per_sm: blocks,
            warps_per_sm: warps,
            occupancy: warps as f64 / d.max_warps_per_sm() as f64,
            limiter,
        })
    }

    /// Times a kernel launch whose aggregate work is described by `stats`.
    ///
    /// # Errors
    /// Propagates occupancy failures.
    pub fn kernel_time(
        &self,
        cfg: &LaunchConfig,
        stats: &KernelStats,
        dtype: DType,
    ) -> Result<KernelTime> {
        let d = &self.device;
        let occ = self.occupancy(cfg)?;

        // Issue efficiency: below `full_throughput_occupancy`, there are too
        // few resident warps to hide pipeline/memory latency.
        let issue_eff = (occ.occupancy / d.full_throughput_occupancy).min(1.0);
        // SM coverage: a grid smaller than the SM count leaves SMs idle.
        let sm_coverage = (cfg.grid_blocks as f64 / d.sm_count as f64).min(1.0);

        let compute_capacity =
            d.peak_flops(dtype) * self.compute_efficiency * issue_eff * sm_coverage;
        let smem_capacity = d.shared_mem_bw() * issue_eff * sm_coverage;

        let compute_s = stats.flops as f64 / compute_capacity;
        let dram_s = (stats.gmem_sectors() * d.dram_sector_bytes as u64) as f64 / d.dram_bw;
        let smem_s = (stats.smem_transactions() * d.shared_transaction_bytes() as u64) as f64
            / smem_capacity;

        // Wave quantization: the tail wave occupies the device as long as a
        // full one.
        let concurrent = occ.blocks_per_sm * d.sm_count;
        let waves = cfg.grid_blocks.div_ceil(concurrent);
        let quant = if waves > 1 {
            (waves * concurrent) as f64 / cfg.grid_blocks as f64
        } else {
            1.0
        };

        let (bound, peak_term) = {
            let mut b = Bound::Compute;
            let mut t = compute_s;
            if dram_s > t {
                b = Bound::Dram;
                t = dram_s;
            }
            if smem_s > t {
                b = Bound::SharedMemory;
                t = smem_s;
            }
            (b, t)
        };

        Ok(KernelTime {
            compute_s,
            dram_s,
            smem_s,
            overhead_s: d.kernel_launch_overhead,
            total_s: peak_term * quant + d.kernel_launch_overhead,
            bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::V100;

    fn model() -> CostModel {
        CostModel::new(&V100)
    }

    fn cfg(grid: usize, threads: usize, smem: usize, regs: usize) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: grid,
            threads_per_block: threads,
            shared_mem_per_block: smem,
            regs_per_thread: regs,
        }
    }

    #[test]
    fn occupancy_thread_limited() {
        let o = model().occupancy(&cfg(1000, 1024, 0, 32)).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::Threads);
        assert_eq!(o.occupancy, 1.0);
    }

    #[test]
    fn occupancy_shared_limited() {
        let o = model().occupancy(&cfg(1000, 128, 48 * 1024, 32)).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn occupancy_register_limited() {
        let o = model().occupancy(&cfg(1000, 256, 0, 255)).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    fn occupancy_rejects_oversized_block() {
        assert!(model().occupancy(&cfg(1, 2048, 0, 32)).is_err());
        assert!(model().occupancy(&cfg(1, 128, 200 * 1024, 32)).is_err());
        assert!(model().occupancy(&cfg(0, 128, 0, 32)).is_err());
    }

    #[test]
    fn compute_bound_kernel_near_peak() {
        // A huge, high-occupancy, FLOP-heavy launch should run at
        // compute_efficiency × peak.
        let stats = KernelStats {
            flops: 1_570_000_000_000, // 0.1 s at peak f32
            ..Default::default()
        };
        let t = model()
            .kernel_time(&cfg(80 * 16, 256, 8 * 1024, 64), &stats, DType::F32)
            .unwrap();
        assert_eq!(t.bound, Bound::Compute);
        let achieved = stats.flops as f64 / t.total_s / 15.7e12;
        assert!((0.80..=0.95).contains(&achieved), "achieved {achieved}");
    }

    #[test]
    fn dram_bound_kernel_at_bandwidth() {
        let stats = KernelStats {
            flops: 1000,
            gmem_load_sectors: 900_000_000 / 32, // ~0.9 GB -> ~1 ms
            ..Default::default()
        };
        let t = model()
            .kernel_time(&cfg(80 * 8, 256, 0, 32), &stats, DType::F32)
            .unwrap();
        assert_eq!(t.bound, Bound::Dram);
        assert!((t.total_s - 1e-3).abs() / 1e-3 < 0.1, "t = {}", t.total_s);
    }

    #[test]
    fn bank_conflicts_slow_smem_bound_kernel() {
        let base = KernelStats {
            flops: 1,
            smem_load_transactions: 1_000_000_000,
            smem_load_ideal: 1_000_000_000,
            ..Default::default()
        };
        let conflicted = KernelStats {
            smem_load_transactions: 4_000_000_000, // 4-way conflicts
            ..base
        };
        let m = model();
        let c = cfg(80 * 8, 256, 16 * 1024, 64);
        let t0 = m.kernel_time(&c, &base, DType::F32).unwrap();
        let t1 = m.kernel_time(&c, &conflicted, DType::F32).unwrap();
        assert_eq!(t1.bound, Bound::SharedMemory);
        assert!(t1.total_s > 3.0 * t0.total_s);
    }

    #[test]
    fn f64_peak_is_half() {
        let stats = KernelStats {
            flops: 780_000_000_000,
            ..Default::default()
        };
        let c = cfg(80 * 8, 256, 0, 64);
        let t32 = model().kernel_time(&c, &stats, DType::F32).unwrap();
        let t64 = model().kernel_time(&c, &stats, DType::F64).unwrap();
        let ratio = t64.total_s / t32.total_s;
        assert!((ratio - 15.7 / 7.8).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn small_grid_underuses_device() {
        let stats = KernelStats {
            flops: 1_000_000_000,
            ..Default::default()
        };
        let t_small = model()
            .kernel_time(&cfg(8, 256, 0, 64), &stats, DType::F32)
            .unwrap();
        // 640 blocks = exactly one full wave (8 blocks/SM × 80 SMs).
        let t_big = model()
            .kernel_time(&cfg(640, 256, 0, 64), &stats, DType::F32)
            .unwrap();
        // 8 blocks can cover only 10% of the SMs.
        assert!(t_small.total_s > 8.0 * t_big.total_s);
    }

    #[test]
    fn wave_quantization_penalizes_tail() {
        let m = model();
        // blocks_per_sm = 8 with these resources → concurrent = 640.
        let make = |grid: usize| {
            let stats = KernelStats {
                flops: grid as u64 * 1_000_000,
                ..Default::default()
            };
            m.kernel_time(&cfg(grid, 256, 12 * 1024, 32), &stats, DType::F32)
                .unwrap()
                .total_s
        };
        let full = make(1280); // exactly 2 waves
        let tail = make(1281); // 2 waves + 1 block -> 3 waves
        assert!(tail > full * 1.3, "tail {tail} full {full}");
    }

    #[test]
    fn low_occupancy_degrades_issue_rate() {
        let stats = KernelStats {
            flops: 10_000_000_000,
            ..Default::default()
        };
        let m = model();
        // One 32-thread block per SM: occupancy 1/64 ≪ 0.25.
        let t_low = m
            .kernel_time(&cfg(80, 32, 90 * 1024, 32), &stats, DType::F32)
            .unwrap();
        let t_high = m
            .kernel_time(&cfg(80 * 8, 256, 8 * 1024, 32), &stats, DType::F32)
            .unwrap();
        assert!(t_low.total_s > 5.0 * t_high.total_s);
    }
}
