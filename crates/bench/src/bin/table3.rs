//! Table 3: achieved TFLOPS of GPyTorch, COGENT, and FastKron for float
//! and double with M = 16 and the largest P^N.

use bench::table3_cases;
use gpu_sim::device::V100;
use kron_baselines::{Engine, FastKronEngine, FtmmtEngine, ShuffleEngine};
use kron_core::{Element, KronProblem};

fn tflops_of<T: Element, E: Engine<T>>(engine: &E, problem: &KronProblem) -> f64 {
    let r = engine.simulate(problem).unwrap();
    problem.flops() as f64 / r.seconds / 1e12
}

fn main() {
    println!("Table 3 — achieved TFLOPS with M = 16 (simulated V100)");
    println!(
        "{:>3} {:>3} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "P", "N", "FK-f32", "FK-f64", "CO-f32", "CO-f64", "GPy-f32", "GPy-f64"
    );
    for (p, n) in table3_cases() {
        let problem = KronProblem::uniform(16, p, n).expect("valid case");
        let fk = FastKronEngine::new(&V100);
        let co = FtmmtEngine::new(&V100);
        let gp = ShuffleEngine::new(&V100);
        println!(
            "{:>3} {:>3} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2}",
            p,
            n,
            tflops_of::<f32, _>(&fk, &problem),
            tflops_of::<f64, _>(&fk, &problem),
            tflops_of::<f32, _>(&co, &problem),
            tflops_of::<f64, _>(&co, &problem),
            tflops_of::<f32, _>(&gp, &problem),
            tflops_of::<f64, _>(&gp, &problem),
        );
    }
    println!("\nPaper FastKron: f32 3.90/6.17/7.75/11.0, f64 1.80/3.20/3.88/5.40");
    println!("Paper COGENT:   f32 0.67/1.98/5.38/7.98, f64 0.26/0.91/2.26/3.40");
    println!("Paper GPyTorch: f32 0.26/0.46/1.36/2.70, f64 0.13/0.21/0.64/1.29");
}
