//! Ablation: autotuned vs minimal tile configuration, and the tuner's own
//! wall-clock cost per shape (§6.1).

use criterion::{criterion_group, criterion_main, Criterion};
use fastkron_core::tuner::{estimate_stats, AutoTuner};
use fastkron_core::TileConfig;
use gpu_sim::cost::CostModel;
use gpu_sim::device::V100;
use kron_core::DType;
use std::hint::black_box;

fn bench_tuning(c: &mut Criterion) {
    let tuner = AutoTuner::new(&V100);
    let cost = CostModel::new(&V100);
    let mut group = c.benchmark_group("autotuner");
    group.sample_size(10);
    for &(m, p, n) in &[(1024usize, 8usize, 5usize), (16, 64, 3), (1024, 32, 3)] {
        let k = p.pow(n as u32);
        group.bench_function(format!("tune_M{m}_P{p}_N{n}"), |b| {
            b.iter(|| black_box(tuner.tune(m, k, p, p, DType::F32).unwrap()))
        });
        let tuned = tuner.tune(m, k, p, p, DType::F32).unwrap();
        let minimal = TileConfig::minimal(m, k, p, p);
        let stats = estimate_stats(&minimal, &V100, m, k, p, p, DType::F32, 1);
        let t_min = cost
            .kernel_time(&minimal.launch(m, k, p, p, DType::F32), &stats, DType::F32)
            .unwrap()
            .total_s;
        eprintln!(
            "[tuning ablation] M{m} {p}^{n}: tuned {:.3} ms vs minimal {:.3} ms ({:.1}x) over {} scored configs",
            tuned.est_seconds * 1e3,
            t_min * 1e3,
            t_min / tuned.est_seconds,
            tuned.report.scored
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tuning);
criterion_main!(benches);
