//! Vendored API-subset shim of [crossbeam](https://crates.io/crates/crossbeam).
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with
//! clonable ends — the surface the simulated multi-GPU fabric uses as its
//! NCCL stand-in. Backed by a `Mutex<VecDeque>` + `Condvar`; throughput is
//! irrelevant at the fabric's message counts (a few per GPU pair per run).

#![deny(missing_docs)]

/// Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Queue<T>>,
        ready: Condvar,
    }

    struct Queue<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    /// Creates an unbounded channel; both ends are clonable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Receivers alive ⇔ some Arc is held by a Receiver. With both
            // ends counted in one Arc we cannot distinguish cheaply, so the
            // shim (like a fabric with pre-created mailboxes) always
            // accepts; a dropped receiver just discards the queue.
            let mut q = self.shared.queue.lock().unwrap();
            q.items.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap();
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message — a timed [`Self::recv`]
        /// (parks on the condvar; no spinning).
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
        }

        /// Dequeues a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            match q.items.pop_front() {
                Some(v) => Ok(v),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};

    #[test]
    fn send_recv_fifo() {
        let (s, r) = unbounded();
        s.send(1).unwrap();
        s.send(2).unwrap();
        assert_eq!(r.recv().unwrap(), 1);
        assert_eq!(r.try_recv().unwrap(), 2);
        assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_after_last_sender_drops() {
        let (s, r) = unbounded::<u8>();
        let s2 = s.clone();
        drop(s);
        s2.send(9).unwrap();
        drop(s2);
        assert_eq!(r.recv().unwrap(), 9);
        assert!(r.recv().is_err());
        assert_eq!(r.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (s, r) = unbounded::<u8>();
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        s.send(7).unwrap();
        assert_eq!(r.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(s);
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_handoff() {
        let (s, r) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                s.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += r.recv().unwrap();
        }
        t.join().unwrap();
        assert_eq!(sum, (0..100).sum::<i32>());
    }
}
