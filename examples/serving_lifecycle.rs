//! Serving lifecycle: a capacity- and byte-bounded plan cache serving a
//! rotating model set of both dtypes through one erased runtime, with
//! pinning, idle eviction, deadlines, priorities (aged), and the adaptive
//! linger window — the admission-control layer on top of the batching
//! runtime.
//!
//! Run with `cargo run --release --example serving_lifecycle`.

use fastkron::prelude::*;
use kron_runtime::Model;

fn factors_for(shapes: &[(usize, usize)], seed: usize) -> Vec<Matrix<f32>> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| {
            Matrix::from_fn(p, q, |r, c| ((seed + 5 * i + r * q + c) % 11) as f32 - 5.0)
        })
        .collect()
}

fn main() {
    // A bounded (dtype-erased) runtime over the simulated 4-GPU machine:
    // at most TWO resident plan-cache entries (each `Distributed` entry
    // pins GM·GK parked device threads, so the bound is also a
    // thread/memory bound), at most 64 MiB of accounted execution state
    // (workspace + staging + engine blocks, across every dtype served),
    // entries idle > 50 ms age out, and the linger window adapts to load
    // under a 200 us cap.
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 128,
        batch_max_m: 16,
        batch_linger_us: 200,
        adaptive_linger: true,
        cache: CachePolicy {
            max_entries: 2,
            max_idle_us: Some(50_000),
            max_bytes: Some(64 << 20),
        },
        backend: Backend::Distributed { gpus: 4, p2p: true },
        ..RuntimeConfig::default()
    });

    // Four distinct model shapes — twice the cache capacity, so serving
    // the full rotation must evict and rebuild.
    let model_shapes: &[&[(usize, usize)]] = &[
        &[(4, 4), (4, 4)],
        &[(8, 8), (8, 8)],
        &[(4, 4), (4, 4), (4, 4)],
        &[(16, 16), (16, 16)],
    ];
    let factor_sets: Vec<Vec<Matrix<f32>>> = model_shapes
        .iter()
        .enumerate()
        .map(|(i, s)| factors_for(s, 3 * i + 1))
        .collect();
    let models: Vec<Model<f32>> = factor_sets
        .iter()
        .map(|fs| runtime.load_model(fs.clone()).expect("valid model"))
        .collect();

    // Pin the hot model: model 0 stays resident (and pre-warmed) however
    // hard the rotation churns the other entries.
    let _pin = runtime.pin_model(&models[0]).expect("pin hot model");
    println!(
        "pinned model 0; live simulated-device threads: {}",
        live_sim_worker_threads()
    );

    // The runtime is dtype-erased: an f64 model joins the same rotation,
    // competing for the same two cache slots and the same byte budget as
    // the f32 models.
    let f64_factors: Vec<Matrix<f64>> = (0..2)
        .map(|i| Matrix::from_fn(4, 4, |r, c| ((7 + 5 * i + r * 4 + c) % 11) as f64 - 5.0))
        .collect();
    let model_f64 = runtime.load_model(f64_factors).expect("valid f64 model");

    // Rotate traffic across all five shapes (four f32 + one f64). The
    // cache can hold only two entries, so the unpinned models churn
    // (evict + rebuild) while model 0 rides its pin; the worker-thread
    // count and the accounted bytes stay bounded throughout.
    for round in 0..3 {
        for (i, model) in models.iter().enumerate() {
            let m = 2 + (round + i) % 6;
            let x = Matrix::<f32>::from_fn(m, model.input_cols(), |r, c| {
                ((round + i + r + c) % 7) as f32 - 3.0
            });
            let y = runtime
                .submit_with(
                    model,
                    x,
                    SubmitOptions::priority(if i == 0 { 5 } else { 1 })
                        .with_deadline_us(runtime.now_us() + 5_000_000),
                )
                .expect("submit")
                .wait()
                .expect("timely request");
            assert_eq!(y.cols(), model.output_cols());
        }
        let x = Matrix::<f64>::from_fn(2, model_f64.input_cols(), |r, c| {
            ((round + r + 2 * c) % 9) as f64 - 4.0
        });
        let y = runtime.execute(&model_f64, x).expect("f64 request");
        assert_eq!(y.cols(), model_f64.output_cols());
        let s = runtime.stats();
        println!(
            "round {round}: entries={} (~{} KiB) evictions={} rebuilds={} hits/misses={}/{} \
             live-threads={}",
            s.cached_entries,
            s.cached_bytes / 1024,
            s.evictions,
            s.rebuilds,
            s.plan_hits,
            s.plan_misses,
            live_sim_worker_threads(),
        );
    }

    // Deadline admission: a request whose deadline is already in the
    // past is shed before any execute — the error names both times.
    let late = runtime
        .submit_with(
            &models[0],
            Matrix::<f32>::from_fn(2, models[0].input_cols(), |r, c| (r + c) as f32),
            SubmitOptions::default().with_deadline_us(runtime.now_us().saturating_sub(1)),
        )
        .expect("accepted at submit; shed at scheduling")
        .wait();
    println!("expired-deadline request: {late:?}");

    let s = runtime.stats();
    println!(
        "\ntotals: served={} (f32={}, f64={}) batched={} solo={} deadline_shed={} \
         evictions={} rebuilds={} linger_now={}us",
        s.served,
        s.requests_f32,
        s.requests_f64,
        s.batched_requests,
        s.solo_requests,
        s.deadline_shed,
        s.evictions,
        s.rebuilds,
        s.current_linger_us,
    );

    // Shutdown drains and joins every engine: no simulated-device thread
    // survives the runtime.
    drop(_pin);
    runtime.shutdown();
    println!(
        "after shutdown: live simulated-device threads = {}",
        live_sim_worker_threads()
    );
}
