//! Interior-mutability passthrough for model-checked code.

/// An untracked `UnsafeCell` with the same `get`/`get_mut` surface as
/// `std::cell::UnsafeCell`, so facade code compiles identically under
/// `cfg(kron_loom)`. Data races *through the cell* are not themselves
/// detected (the single-baton scheduler serializes all model threads);
/// what the explorer detects is protocol violations — torn or stale
/// protocol state, lost values, lost wakeups — via the atomics guarding
/// the cell.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

impl<T> UnsafeCell<T> {
    pub const fn new(value: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    pub const fn get(&self) -> *mut T {
        self.0.get()
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}
