//! Observability contract against the public runtime API: the stats
//! decomposition invariant (`served == batched + solo + error_replies`),
//! per-stage and per-outcome latency histograms, the per-model registry,
//! the flight recorder's causal event trace under a chaos drill, and the
//! stable JSON / Prometheus renderings of one coherent snapshot.

use kron_core::Matrix;
use kron_runtime::{
    Backend, Clock, FaultPlan, ManualClock, Outcome, Runtime, RuntimeConfig, ServeEventKind, Stage,
    SubmitOptions,
};
use std::sync::Arc;

fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((start + 5 * r * cols + 2 * c) % 17) as f64 - 8.0
    })
}

fn model_factors(shapes: &[(usize, usize)], seed: usize) -> Vec<Matrix<f64>> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| seq_matrix(p, q, seed + 5 * i + 1))
        .collect()
}

/// Pumps virtual time forward until the runtime has served `target`
/// requests (see `tests/admission.rs` for why stepping beats one big
/// advance).
fn pump_until_served(runtime: &Runtime, time: &Arc<ManualClock>, target: u64) {
    while runtime.stats().served < target {
        time.advance_us(50_000);
        std::thread::yield_now();
    }
}

/// Mixed traffic — a batched group, a large-M solo, and an
/// expired-deadline shed — must decompose `served` exactly: every reply
/// lands in exactly one of `batched_requests`, `solo_requests`, or
/// `error_replies`. (Before the centralized reply path, error replies
/// leaked into the batched/solo counters, so nothing pinned this.)
#[test]
fn served_decomposes_into_batched_solo_and_error_replies() {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 8,
        batch_linger_us: 10_000,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 1);
    let model = runtime.load_model(factors).unwrap();

    time.set_us(1_000);
    // One window: three batchable members, one large-M solo, one request
    // whose deadline (500) already passed at virtual now = 1000.
    let mut tickets = Vec::new();
    for i in 0..3 {
        let x = seq_matrix(2, model.input_cols(), 10 + i);
        tickets.push(runtime.submit(&model, x).unwrap());
    }
    let solo_x = seq_matrix(16, model.input_cols(), 20);
    tickets.push(runtime.submit(&model, solo_x).unwrap());
    let shed_x = seq_matrix(2, model.input_cols(), 30);
    let shed = runtime
        .submit_with(
            &model,
            shed_x,
            SubmitOptions::default().with_deadline_us(500),
        )
        .unwrap();

    pump_until_served(&runtime, &time, 5);
    for t in tickets {
        t.wait().expect("timely requests serve");
    }
    shed.wait().expect_err("expired deadline must shed");

    let stats = runtime.stats();
    assert_eq!(stats.served, 5, "stats: {stats}");
    assert_eq!(stats.batched_requests, 3, "stats: {stats}");
    assert_eq!(stats.solo_requests, 1, "stats: {stats}");
    assert_eq!(stats.error_replies, 1, "stats: {stats}");
    assert_eq!(stats.deadline_shed, 1, "stats: {stats}");
    assert_eq!(
        stats.served,
        stats.batched_requests + stats.solo_requests + stats.error_replies,
        "decomposition invariant: {stats}"
    );
    assert_eq!(stats.submitted, stats.served, "nothing in flight: {stats}");

    // The same traffic, attributed in the histograms: every stage saw
    // every reply, and the outcomes split 4 ok / 1 shed / 0 error.
    let snap = runtime.metrics_snapshot();
    for (stage, h) in &snap.stages {
        assert_eq!(h.count, 5, "stage {} saw every reply", stage.name());
    }
    let outcome = |want: Outcome| {
        snap.outcomes
            .iter()
            .find(|(o, _)| *o == want)
            .map(|(_, h)| h.count)
            .unwrap()
    };
    assert_eq!(outcome(Outcome::Ok), 4);
    assert_eq!(outcome(Outcome::Shed), 1);
    assert_eq!(outcome(Outcome::Error), 0);
}

/// The per-model registry attributes serves, plan hits, and plan misses
/// to the plan key that served them.
#[test]
fn model_registry_tracks_serves_hits_and_misses() {
    let runtime = Runtime::new(RuntimeConfig {
        batch_linger_us: 0,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 3);
    let model = runtime.load_model(factors).unwrap();

    for i in 0..3 {
        let x = seq_matrix(2, model.input_cols(), 40 + i);
        runtime.execute(&model, x).unwrap();
    }

    let models = runtime.model_stats();
    let entry = models
        .iter()
        .find(|m| m.shape_key == model.shape_key())
        .expect("served model is in the registry");
    assert_eq!(entry.serves, 3, "entry: {entry:?}");
    assert_eq!(entry.errors, 0, "entry: {entry:?}");
    assert_eq!(entry.plan_misses, 1, "first lookup builds: {entry:?}");
    assert_eq!(entry.plan_hits, 2, "warm lookups hit: {entry:?}");
    assert_eq!(entry.latency.count, 3, "entry: {entry:?}");
    assert!(!entry.overflow);
}

/// A chaos drill leaves a causal post-mortem in the flight recorder:
/// admit, the injected fault, the failed execute, the blamed device, the
/// eviction, the retry, and the recovering execute — in that order, with
/// non-decreasing timestamps. A second drain starts after the first.
#[test]
fn flight_recorder_yields_causally_ordered_chaos_trace() {
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        backend: Backend::Distributed {
            gpus: 4,
            p2p: false,
        },
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 5);
    let model = runtime.load_model(factors).unwrap();
    runtime
        .install_fault_plan(FaultPlan::new().panic_on_batch(0, 0))
        .unwrap();

    let x = seq_matrix(4, model.input_cols(), 50);
    let t = runtime.submit(&model, x).unwrap();
    let (_, receipt) = t.wait_with_receipt().unwrap();
    assert!(receipt.attempts > 1, "receipt: {receipt}");

    let events = runtime.drain_events();
    assert!(!events.is_empty());
    for w in events.windows(2) {
        assert!(w[0].at_us <= w[1].at_us, "timestamps are causal");
    }
    let pos = |pred: &dyn Fn(&ServeEventKind) -> bool| events.iter().position(|e| pred(&e.kind));
    let admit = pos(&|k| matches!(k, ServeEventKind::Admit { .. })).expect("admit");
    let injected =
        pos(&|k| matches!(k, ServeEventKind::FaultInjected { gpu: 0, .. })).expect("injected");
    let failed = pos(&|k| matches!(k, ServeEventKind::Execute { ok: false, .. })).expect("failed");
    let fault = pos(&|k| matches!(k, ServeEventKind::Fault { gpu: 0, .. })).expect("fault");
    let eviction = pos(&|k| matches!(k, ServeEventKind::Eviction { .. })).expect("eviction");
    let retry = pos(&|k| matches!(k, ServeEventKind::Retry { attempt: 2, .. })).expect("retry");
    let recovered = events
        .iter()
        .rposition(|e| matches!(e.kind, ServeEventKind::Execute { ok: true, .. }))
        .expect("recovered");
    assert!(admit < injected, "admitted before the fault armed");
    assert!(injected < failed, "armed before the execute failed");
    assert!(failed < fault, "execute failed before blame assigned");
    assert!(fault < eviction, "blamed before the engine was evicted");
    assert!(eviction < retry, "evicted before the retry was scheduled");
    assert!(retry < recovered, "retried before the recovery execute");

    // The drain cursor advanced: nothing served since, nothing returned.
    assert!(runtime.drain_events().is_empty());
}

/// The snapshot renders to stable JSON and Prometheus text carrying the
/// counters, stage histograms, model registry, and device registry.
#[test]
fn snapshot_renders_stable_json_and_prometheus_text() {
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 16,
        backend: Backend::Distributed {
            gpus: 2,
            p2p: false,
        },
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 7);
    let model = runtime.load_model(factors).unwrap();
    for i in 0..2 {
        let x = seq_matrix(4, model.input_cols(), 60 + i);
        runtime.execute(&model, x).unwrap();
    }

    let snap = runtime.metrics_snapshot();
    let json = snap.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    for needle in [
        "\"served\":2",
        "\"error_replies\":0",
        "\"stages\":{\"queue\":",
        "\"total\":{\"count\":2",
        "\"outcomes\":{\"ok\":",
        "\"models\":[{\"dtype\":\"f64\"",
        "\"devices\":[{\"gpu\":0,",
        "\"scheduler_lanes\":1",
        "\"lanes\":[{\"lane\":0,",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }

    let prom = snap.to_prometheus();
    for needle in [
        "# TYPE kron_served_total counter\nkron_served_total 2",
        "# TYPE kron_stage_total_us histogram",
        "kron_stage_total_us_bucket{le=\"+Inf\"} 2",
        "kron_stage_total_us_count 2",
        "kron_model_serves_total{dtype=\"f64\"",
        "kron_device_executes_total{gpu=\"0\"} 2",
        "# TYPE kron_scheduler_lanes gauge\nkron_scheduler_lanes 1",
        "kron_lane_served_total{lane=\"0\"} 2",
    ] {
        assert!(prom.contains(needle), "missing {needle} in {prom}");
    }

    // Per-device execute latencies surfaced through device_health too.
    let health = runtime.device_health();
    assert_eq!(health.len(), 2);
    for d in &health {
        assert_eq!(d.metrics.executes, 2, "device {}: {d:?}", d.gpu);
        assert_eq!(d.metrics.faults, 0);
        assert_eq!(d.metrics.exec_latency.count, 2);
    }
}

/// Percentile readout walks the log2 buckets and interpolates inside the
/// bucket holding the requested rank, so readouts stay within the span of
/// an occupied bucket instead of snapping to its upper bound.
#[test]
fn snapshot_percentiles_read_from_log2_buckets() {
    let runtime = Runtime::new(RuntimeConfig::default());
    let factors = model_factors(&[(4, 4), (4, 4)], 9);
    let model = runtime.load_model(factors).unwrap();
    for i in 0..8 {
        let x = seq_matrix(2, model.input_cols(), 70 + i);
        runtime.execute(&model, x).unwrap();
    }
    let snap = runtime.metrics_snapshot();
    let total = snap
        .stages
        .iter()
        .find(|(s, _)| *s == Stage::Total)
        .map(|(_, h)| *h)
        .unwrap();
    assert_eq!(total.count, 8);
    let p50 = total.percentile(0.50);
    let p99 = total.percentile(0.99);
    assert!(p50 <= p99, "p50 {p50} <= p99 {p99}");
    // Every percentile readout interpolates inside an occupied log2
    // bucket: bucket 0 holds exactly 0, bucket i spans [2^(i-1), 2^i - 1].
    let inside_occupied = |v: u64| {
        total
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .any(|(i, _)| {
                if i == 0 {
                    v == 0
                } else {
                    v >= (1u64 << (i - 1)) && v < (1u64 << i)
                }
            })
    };
    for p in [p50, p99] {
        assert!(inside_occupied(p), "inside an occupied bucket, got {p}");
    }
}

/// A bypassed request's receipt proves it never touched the scheduler:
/// the queue and linger stages are exactly zero (enqueue, drain, and
/// window close collapse to the submit instant), it served in one
/// attempt, and the flight recorder holds a `Bypass` event for it. The
/// batching outcome histogram attributes it to the `bypass` outcome, and
/// `bypassed_requests` joins the served decomposition.
#[test]
fn bypass_receipt_reports_zero_queue_and_linger() {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        batch_linger_us: 0,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 11);
    let model = runtime.load_model(factors).unwrap();

    // Warm the plan through the scheduler, then retire its traffic from
    // the recorder so the drain below covers only the bypassed serve.
    time.set_us(1_000);
    let warm = runtime
        .submit(&model, seq_matrix(2, model.input_cols(), 12))
        .unwrap();
    pump_until_served(&runtime, &time, 1);
    warm.wait().unwrap();
    runtime.drain_events();

    // Idle runtime + warm plan: this submit takes the inline lane.
    let t = runtime
        .submit(&model, seq_matrix(2, model.input_cols(), 13))
        .unwrap();
    let (_, receipt) = t.wait_with_receipt().unwrap();
    assert_eq!(receipt.timings.queue_us, 0, "receipt: {receipt}");
    assert_eq!(receipt.timings.linger_us, 0, "receipt: {receipt}");
    assert_eq!(receipt.attempts, 1, "receipt: {receipt}");

    let stats = runtime.stats();
    assert_eq!(stats.bypassed_requests, 1, "stats: {stats}");
    assert_eq!(stats.served, 2, "stats: {stats}");
    assert_eq!(
        stats.served,
        stats.batched_requests + stats.solo_requests + stats.bypassed_requests,
        "decomposition invariant: {stats}"
    );

    // The flight recorder carries the lane decision: a Bypass event
    // (with the executed row count) and no Admit for this serve.
    let events = runtime.drain_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::Bypass { rows: 2, .. })),
        "bypass event on the record: {events:?}"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::Admit { .. })),
        "a bypassed request is never admitted to a window: {events:?}"
    );

    // The outcome histogram attributes it to the bypass lane.
    let snap = runtime.metrics_snapshot();
    let outcome = |want: Outcome| {
        snap.outcomes
            .iter()
            .find(|(o, _)| *o == want)
            .map(|(_, h)| h.count)
            .unwrap()
    };
    assert_eq!(outcome(Outcome::Bypass), 1);
    assert_eq!(outcome(Outcome::Ok), 1, "the warming serve");
}

/// The `inflight_requests` gauge (global and per lane) must reconcile
/// to zero after every traffic pattern — including tickets **dropped
/// unclaimed** after an error reply, the path where a double decrement
/// (once at reply, once at ticket drop) would underflow the gauge. A
/// slot releases its admission exactly once: `wait`/`take_blocking` if
/// the ticket is claimed, the slot's `Drop` otherwise.
#[test]
fn inflight_gauge_reconciles_to_zero_after_abandoned_tickets() {
    let clock = Clock::manual();
    let time = clock.manual_handle().unwrap();
    let runtime = Runtime::new(RuntimeConfig {
        max_batch_rows: 32,
        batch_max_m: 8,
        batch_linger_us: 0,
        adaptive_linger: false,
        clock,
        ..RuntimeConfig::default()
    });
    let factors = model_factors(&[(4, 4), (4, 4)], 23);
    let model = runtime.load_model(factors).unwrap();
    time.set_us(10_000);

    // Waited Ok replies, abandoned Ok replies, and — the underflow
    // hazard — abandoned *error* replies (expired deadlines shed with
    // DeadlineExceeded, ticket dropped without waiting).
    let mut waited = Vec::new();
    let mut abandoned = Vec::new();
    for i in 0..4 {
        waited.push(
            runtime
                .submit(&model, seq_matrix(2, model.input_cols(), 40 + i))
                .unwrap(),
        );
        abandoned.push(
            runtime
                .submit(&model, seq_matrix(2, model.input_cols(), 50 + i))
                .unwrap(),
        );
        abandoned.push(
            runtime
                .submit_with(
                    &model,
                    seq_matrix(2, model.input_cols(), 60 + i),
                    SubmitOptions::default().with_deadline_us(500),
                )
                .unwrap(),
        );
    }
    pump_until_served(&runtime, &time, 12);
    let mid = runtime.stats();
    assert!(
        mid.inflight_requests <= 12,
        "gauge can never exceed admissions: {mid:?}"
    );
    for t in waited {
        t.wait().expect("timely requests serve");
    }
    // Dropping unclaimed tickets releases their admission through the
    // slot's Drop — exactly once each, error replies included.
    drop(abandoned);

    let stats = runtime.stats();
    assert_eq!(stats.served, 12, "stats: {stats:?}");
    assert_eq!(stats.error_replies, 4, "the shed requests: {stats:?}");
    assert_eq!(
        stats.inflight_requests, 0,
        "global gauge must return to zero: {stats:?}"
    );
    for (i, lane) in stats.lanes().iter().enumerate() {
        assert_eq!(
            lane.inflight, 0,
            "lane {i} gauge must return to zero: {lane:?}"
        );
        assert_eq!(
            lane.batched_requests
                + lane.solo_requests
                + lane.bypassed_requests
                + lane.error_replies,
            lane.served,
            "lane {i} decomposition: {lane:?}"
        );
    }
    runtime.shutdown();
}
