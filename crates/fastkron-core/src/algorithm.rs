//! Algorithm 1 of the paper: the FastKron Kron-Matmul algorithm, executed
//! functionally (and in parallel) on the CPU.
//!
//! Each iteration performs a *sliced multiply*: row `i` of the input is cut
//! into slices of length `P`; slice `s` times column `q` of the factor
//! lands at output column `q·S + s` (`S` = number of slices). Consecutive
//! output elements therefore come from consecutive slices against the
//! *same* factor column — the property that removes the shuffle
//! algorithm's transpose entirely.

use kron_core::{Element, KronError, Matrix, Result};
use rayon::prelude::*;

/// Minimum per-task element count before we bother parallelizing an
/// iteration.
const PAR_MIN_ELEMENTS: usize = 1 << 12;

/// One sliced-multiply iteration: `Y[i][q·S + s] = Σ_p X[i][s·P + p] · F[p][q]`.
///
/// Lines 7–15 of Algorithm 1 (for one factor), parallelized over
/// `(row, column-of-F)` output chunks — the CPU analog of the kernel's
/// thread-block grid.
///
/// # Errors
/// [`KronError::ShapeMismatch`] when `X.cols()` is not a multiple of
/// `F.rows()`.
pub fn sliced_multiply<T: Element>(x: &Matrix<T>, f: &Matrix<T>) -> Result<Matrix<T>> {
    let (p, q) = (f.rows(), f.cols());
    if p == 0 || !x.cols().is_multiple_of(p) {
        return Err(KronError::ShapeMismatch {
            expected: format!("X cols divisible by P = {p}"),
            found: format!("{} cols", x.cols()),
        });
    }
    let slices = x.cols() / p;
    let m = x.rows();
    let mut y = Matrix::zeros(m, slices * q);

    // Output chunk (i, qi) is the contiguous run y[i][qi·S .. (qi+1)·S],
    // computed from row i of X and column qi of F.
    let x_data = x.as_slice();
    let k = x.cols();
    let compute_chunk = |(chunk_idx, out): (usize, &mut [T])| {
        let (i, qi) = (chunk_idx / q, chunk_idx % q);
        let row = &x_data[i * k..(i + 1) * k];
        // Gather F column qi once; F is tiny and reused S times.
        for (s, out_v) in out.iter_mut().enumerate() {
            let slice = &row[s * p..(s + 1) * p];
            let mut acc = T::ZERO;
            for (pi, xv) in slice.iter().enumerate() {
                acc = xv.mul_add(f[(pi, qi)], acc);
            }
            *out_v = acc;
        }
    };

    if m * slices * q >= PAR_MIN_ELEMENTS && m * q > 1 {
        y.as_mut_slice()
            .par_chunks_mut(slices)
            .enumerate()
            .for_each(compute_chunk);
    } else {
        y.as_mut_slice()
            .chunks_mut(slices)
            .enumerate()
            .for_each(compute_chunk);
    }
    Ok(y)
}

/// Full Kron-Matmul by Algorithm 1: sliced multiplies from the last factor
/// to the first.
///
/// Runs on the fused execution path ([`crate::exec`]): ping-pong workspace
/// buffers instead of a fresh matrix per step, and the epilogue scatter in
/// place of any transpose. Callers executing the same problem repeatedly
/// should hold a [`crate::exec::Workspace`] directly and skip the
/// per-call buffer allocation.
///
/// # Errors
/// Shape errors as in [`sliced_multiply`]; [`KronError::NoFactors`] for an
/// empty factor list.
pub fn kron_matmul_fastkron<T: Element>(
    x: &Matrix<T>,
    factors: &[&Matrix<T>],
) -> Result<Matrix<T>> {
    crate::exec::kron_matmul_fused(x, factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::naive::kron_matmul_naive;
    use kron_core::shuffle::kron_matmul_shuffle;
    use kron_core::{assert_matrices_close, FactorShape, KronProblem};

    fn seq_matrix(rows: usize, cols: usize, start: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            ((start + 3 * r * cols + c) % 13) as f64 - 6.0
        })
    }

    #[test]
    fn figure2_example_by_hand() {
        // Figure 2 of the paper: X 2×4 with F² 2×2; first iteration result
        // Y²[i][q·2+s] = Σ x[i][s·2+p]·f[p][q].
        let x = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        let f = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        let y = sliced_multiply(&x, &f).unwrap();
        // Col 0 of F with slices (1,2) and (3,4): 1·10+2·30 = 70, 3·10+4·30 = 150.
        // Col 1: 1·20+2·40 = 100, 3·20+4·40 = 220.
        assert_eq!(y.row(0), &[70.0, 150.0, 100.0, 220.0]);
        assert_eq!(
            y.row(1),
            &[
                5.0 * 10.0 + 6.0 * 30.0,
                7.0 * 10.0 + 8.0 * 30.0,
                5.0 * 20.0 + 6.0 * 40.0,
                7.0 * 20.0 + 8.0 * 40.0
            ]
        );
    }

    #[test]
    fn iteration_equals_ftmmt_iteration() {
        // FastKron's sliced multiply and the FTMMT contraction produce the
        // same per-iteration map (the systems differ in *how*, not *what*).
        let x = seq_matrix(5, 24, 2);
        let f = seq_matrix(4, 3, 7);
        let a = sliced_multiply(&x, &f).unwrap();
        let b = kron_core::ftmmt::ftmmt_iteration(&x, &f).unwrap();
        assert_matrices_close(&a, &b, "sliced vs ftmmt iteration");
    }

    #[test]
    fn full_matches_naive_and_shuffle() {
        let x = seq_matrix(4, 36, 1);
        let a = seq_matrix(6, 2, 3);
        let b = seq_matrix(6, 3, 8);
        let got = kron_matmul_fastkron(&x, &[&a, &b]).unwrap();
        assert_matrices_close(
            &got,
            &kron_matmul_naive(&x, &[&a, &b]).unwrap(),
            "fastkron vs naive",
        );
        assert_matrices_close(
            &got,
            &kron_matmul_shuffle(&x, &[&a, &b]).unwrap(),
            "fastkron vs shuffle",
        );
    }

    #[test]
    fn uniform_power_sizes() {
        for &(m, p, n) in &[(1usize, 2usize, 6usize), (3, 4, 3), (16, 8, 2)] {
            let problem = KronProblem::uniform(m, p, n).unwrap();
            let x = seq_matrix(m, problem.input_cols(), 5);
            let fs: Vec<Matrix<f64>> = (0..n).map(|i| seq_matrix(p, p, i)).collect();
            let refs: Vec<&Matrix<f64>> = fs.iter().collect();
            let got = kron_matmul_fastkron(&x, &refs).unwrap();
            let oracle = kron_matmul_naive(&x, &refs).unwrap();
            assert_matrices_close(&got, &oracle, &format!("uniform {m},{p},{n}"));
        }
    }

    #[test]
    fn mixed_rectangular_factors() {
        // Table 4 row 6-style: 5×50-ish expanding factor mixes.
        let shapes = [
            FactorShape::new(5, 2),
            FactorShape::new(2, 5),
            FactorShape::new(3, 3),
        ];
        let k: usize = shapes.iter().map(|s| s.p).product();
        let x = seq_matrix(7, k, 0);
        let fs: Vec<Matrix<f64>> = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| seq_matrix(s.p, s.q, i * 2))
            .collect();
        let refs: Vec<&Matrix<f64>> = fs.iter().collect();
        let got = kron_matmul_fastkron(&x, &refs).unwrap();
        let oracle = kron_matmul_naive(&x, &refs).unwrap();
        assert_matrices_close(&got, &oracle, "mixed rectangular");
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Exceed PAR_MIN_ELEMENTS to exercise the rayon path.
        let x = seq_matrix(8, 4096, 3);
        let f = seq_matrix(8, 8, 1);
        let big = sliced_multiply(&x, &f).unwrap();
        // Compute a few spot values serially.
        for &(i, s, q) in &[(0usize, 0usize, 0usize), (7, 511, 7), (3, 100, 5)] {
            let mut acc = 0.0;
            for p in 0..8 {
                acc += x[(i, s * 8 + p)] * f[(p, q)];
            }
            let got = big[(i, q * 512 + s)];
            assert!((got - acc).abs() < 1e-9, "({i},{s},{q}): {got} vs {acc}");
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Matrix::<f64>::zeros(2, 9);
        let f = Matrix::<f64>::identity(2);
        assert!(sliced_multiply(&x, &f).is_err());
        assert!(kron_matmul_fastkron(&x, &[&f, &f]).is_err());
        assert!(kron_matmul_fastkron::<f64>(&x, &[]).is_err());
    }
}
