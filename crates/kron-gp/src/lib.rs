//! # kron-gp
//!
//! The paper's §6.4 case study: training Gaussian Processes whose kernel
//! matrix is interpolated from a Kronecker product of small per-dimension
//! kernels (Structured Kernel Interpolation — SKI/KISS-GP — and its
//! variants SKIP and LOVE).
//!
//! The SKI kernel is `K_SKI = W (K₁ ⊗ … ⊗ K_N) Wᵀ + σ²I`, where each `Kᵢ`
//! is an RBF kernel over a regular 1-D grid of `P` inducing points and `W`
//! is a sparse interpolation matrix. Training computes `K_SKI⁻¹ y` with
//! batched conjugate gradients (the paper uses 16 probe vectors — which is
//! exactly why `M = 16` appears throughout its Table 3), and every CG
//! iteration's dominant cost is one Kron-Matmul of shape
//! `16 × Pᴺ` — the operation FastKron accelerates.
//!
//! Modules: [`grid`] (inducing grids and RBF factors), [`interp`] (sparse
//! `W`), [`cg`] (batched CG), [`datasets`] (synthetic UCI-scale data),
//! [`model`] (the SKI GP itself), and [`train`] (the Table 5 timing
//! study: vanilla-GPyTorch vs FastKron-integrated backends on 1 or 16
//! simulated GPUs).

#![deny(missing_docs)]

pub mod cg;
pub mod datasets;
pub mod grid;
pub mod interp;
pub mod model;
pub mod train;

pub use datasets::{Dataset, UciDataset};
pub use grid::InducingGrid;
pub use interp::SparseInterp;
pub use model::SkiGp;
pub use train::{GpVariant, KronBackend, TrainTimer};
