//! The GPyTorch / PyKronecker baseline: the shuffle algorithm on GPU
//! library calls.
//!
//! Per iteration: zero-cost reshape, a cuBLAS GEMM of the tall-skinny
//! `(M·K/P × P) · (P × Q)` shape, then a 3-D inner transpose realized as a
//! strided copy kernel. Both kernels are opaque vendor calls on real
//! hardware, so they are timed with the calibrated analytic models of
//! [`gpu_sim::models`]; §6.2.2 of the paper characterizes them exactly at
//! this granularity (Table 1's matmul/transpose split).

use gpu_sim::device::DeviceSpec;
use gpu_sim::models::{CublasModel, TransposeModel};
use gpu_sim::ExecReport;
use kron_core::{Element, KronProblem, Matrix, Result};

use crate::engine::Engine;

/// GPyTorch-style shuffle-algorithm engine.
pub struct ShuffleEngine {
    device: DeviceSpec,
    cublas: CublasModel,
    transpose: TransposeModel,
}

impl ShuffleEngine {
    /// Builds the engine for `device`.
    pub fn new(device: &DeviceSpec) -> Self {
        ShuffleEngine {
            device: device.clone(),
            cublas: CublasModel::new(device),
            transpose: TransposeModel::new(device),
        }
    }

    /// Simulated seconds spent in cuBLAS only (the Table 1 "Matmul"
    /// column) for `problem`.
    pub fn matmul_seconds(&self, problem: &KronProblem, dtype: kron_core::DType) -> f64 {
        problem
            .iterations()
            .map(|it| {
                let rows = problem.m * it.slices;
                self.cublas.gemm_time(rows, it.factor.p, it.factor.q, dtype)
            })
            .sum()
    }

    /// Simulated seconds spent transposing (the Table 1 "Trans." column).
    pub fn transpose_seconds(&self, problem: &KronProblem, dtype: kron_core::DType) -> f64 {
        problem
            .iterations()
            .map(|it| {
                self.transpose
                    .transpose_time(problem.m, it.slices, it.factor.q, dtype)
            })
            .sum()
    }
}

impl<T: Element> Engine<T> for ShuffleEngine {
    fn name(&self) -> &'static str {
        "GPyTorch"
    }

    fn execute(&self, x: &Matrix<T>, factors: &[&Matrix<T>]) -> Result<Matrix<T>> {
        kron_core::shuffle::kron_matmul_shuffle(x, factors)
    }

    fn simulate(&self, problem: &KronProblem) -> Result<ExecReport> {
        let dtype = T::DTYPE;
        let mut report = ExecReport::new("GPyTorch");
        for it in problem.iterations() {
            let rows = problem.m * it.slices;
            let (p, q) = (it.factor.p, it.factor.q);
            let gemm_s = self.cublas.gemm_time(rows, p, q, dtype);
            let trans_s = self
                .transpose
                .transpose_time(problem.m, it.slices, q, dtype);
            report.add_step("matmul", gemm_s);
            report.add_step("transpose", trans_s);
            report.launches += 2;
            // Book-keep DRAM traffic so reports can compare memory volume:
            // GEMM moves its operands once, the transpose re-moves the
            // whole intermediate twice.
            let gemm_bytes = self.cublas.gemm_bytes(rows, p, q, dtype);
            let trans_bytes = self
                .transpose
                .transpose_bytes(problem.m, it.slices, q, dtype);
            report.stats.gmem_load_sectors +=
                (gemm_bytes / 2 + trans_bytes / 2) / self.device.dram_sector_bytes as u64;
            report.stats.gmem_store_sectors +=
                (gemm_bytes / 2 + trans_bytes / 2) / self.device.dram_sector_bytes as u64;
            report.stats.gmem_useful_bytes += gemm_bytes + trans_bytes;
            report.stats.flops += 2 * rows as u64 * p as u64 * q as u64;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::V100;
    use kron_core::naive::kron_matmul_naive;
    use kron_core::{assert_matrices_close, DType};

    #[test]
    fn execute_matches_naive() {
        let x = Matrix::<f64>::from_fn(3, 16, |r, c| ((r * 16 + c) % 7) as f64 - 3.0);
        let f = Matrix::<f64>::from_fn(4, 4, |r, c| ((r * 4 + c) % 5) as f64 - 2.0);
        let engine = ShuffleEngine::new(&V100);
        let got = Engine::<f64>::execute(&engine, &x, &[&f, &f]).unwrap();
        let oracle = kron_matmul_naive(&x, &[&f, &f]).unwrap();
        assert_matrices_close(&got, &oracle, "shuffle engine");
    }

    #[test]
    fn table1_transpose_dominates_small_p() {
        // Table 1, (P, N) = (8, 6), M = 1024: transpose 45 ms vs matmul
        // 26 ms — the transpose must be the majority of the total.
        let problem = KronProblem::uniform(1024, 8, 6).unwrap();
        let engine = ShuffleEngine::new(&V100);
        let report = Engine::<f32>::simulate(&engine, &problem).unwrap();
        let trans = report.step_seconds("transpose");
        let matmul = report.step_seconds("matmul");
        let frac = trans / report.seconds;
        assert!(
            (0.55..=0.85).contains(&frac),
            "transpose fraction {frac} (trans {trans}, matmul {matmul})"
        );
        // Absolute scale: paper total is 71 ms; accept a generous band
        // around it since ours is a model.
        assert!(
            (0.035..=0.14).contains(&report.seconds),
            "total {}",
            report.seconds
        );
    }

    #[test]
    fn table1_matmul_transpose_split_shapes() {
        // Sanity across the Table 1 grid: transpose share shrinks as P
        // grows (cuBLAS gets efficient, transpose stays memory-bound).
        let engine = ShuffleEngine::new(&V100);
        let frac = |p: usize, n: usize| {
            let problem = KronProblem::uniform(1024, p, n).unwrap();
            let r = Engine::<f32>::simulate(&engine, &problem).unwrap();
            r.step_seconds("transpose") / r.seconds
        };
        let f8 = frac(8, 4);
        let f64_ = frac(64, 2);
        assert!(f8 > f64_, "share at P=8 {f8} vs P=64 {f64_}");
    }

    #[test]
    fn split_helpers_agree_with_report() {
        let problem = KronProblem::uniform(64, 16, 3).unwrap();
        let engine = ShuffleEngine::new(&V100);
        let report = Engine::<f32>::simulate(&engine, &problem).unwrap();
        let m = engine.matmul_seconds(&problem, DType::F32);
        let t = engine.transpose_seconds(&problem, DType::F32);
        assert!((report.step_seconds("matmul") - m).abs() < 1e-12);
        assert!((report.step_seconds("transpose") - t).abs() < 1e-12);
        assert!((report.seconds - (m + t)).abs() < 1e-12);
    }
}
